//! End-to-end CLI flows driven in-process: generate → train → classify →
//! replay → inspect, in both capture formats.

use dynaminer_cli::commands;

fn tmp(name: &str) -> String {
    // Per-process directory so stale artifacts from older builds (e.g. a
    // previous model format) never leak into a run.
    let dir = std::env::temp_dir().join(format!("dynaminer-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn trained_model_path() -> String {
    let model = tmp("model.json");
    if !std::path::Path::new(&model).exists() {
        commands::train(&args(&["--scale", "0.05", "--seed", "7", "--out", &model])).unwrap();
    }
    model
}

#[test]
fn generate_train_classify_replay_roundtrip() {
    let infection = tmp("angler.pcap");
    let benign = tmp("search.pcap");
    commands::generate(&args(&["--family", "angler", "--seed", "3", "--out", &infection]))
        .unwrap();
    commands::generate(&args(&["--benign", "search", "--seed", "4", "--out", &benign]))
        .unwrap();
    let model = trained_model_path();
    commands::classify(&args(&["--model", &model, &infection, &benign])).unwrap();
    commands::replay(&args(&["--model", &model, "--threshold", "3", &infection])).unwrap();
    commands::dot(&args(&[&infection])).unwrap();
    commands::features(&args(&[&benign])).unwrap();
    commands::inspect(&args(&["--model", &model, "--top", "5"])).unwrap();
}

#[test]
fn classify_accepts_pcapng_captures() {
    // Convert a generated classic capture to pcapng and classify it.
    let classic = tmp("rig.pcap");
    commands::generate(&args(&["--family", "rig", "--seed", "9", "--out", &classic])).unwrap();
    let bytes = std::fs::read(&classic).unwrap();
    let packets = nettrace::capture::read_packets(&bytes).unwrap();
    let ng = tmp("rig.pcapng");
    std::fs::write(&ng, nettrace::pcapng::write_packets(&packets)).unwrap();
    let model = trained_model_path();
    commands::classify(&args(&["--model", &model, &ng])).unwrap();
}

#[test]
fn metrics_out_writes_json_snapshot_and_prometheus_text() {
    let infection = tmp("nuclear.pcap");
    commands::generate(&args(&["--family", "nuclear", "--seed", "13", "--out", &infection]))
        .unwrap();
    let model = trained_model_path();
    let metrics = tmp("replay-metrics.json");
    commands::replay(&args(&["--model", &model, "--metrics-out", &metrics, &infection]))
        .unwrap();
    // The JSON side is a parseable telemetry snapshot with both ingest
    // and detector counters populated.
    let json = std::fs::read_to_string(&metrics).unwrap();
    let snap: telemetry::Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap.counter("ingest_captures_total"), 1);
    assert!(snap.counter("ingest_transactions_recovered_total") > 0);
    assert!(snap.counter("detector_transactions_total") > 0);
    assert!(snap.histogram_count("classifier_scoring_ns") > 0);
    // The Prometheus side carries the exposition preamble and
    // cumulative histogram series.
    let prom = std::fs::read_to_string(tmp("replay-metrics.prom")).unwrap();
    assert!(prom.contains("# TYPE detector_transactions_total counter"));
    assert!(prom.contains("# TYPE classifier_scoring_ns histogram"));
    assert!(prom.contains("_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("classifier_scoring_ns_count"));

    // classify --metrics-out goes through the batched path.
    let metrics = tmp("classify-metrics.json");
    commands::classify(&args(&["--model", &model, "--metrics-out", &metrics, &infection]))
        .unwrap();
    let snap: telemetry::Snapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(snap.counter("ingest_captures_total"), 1);
    assert_eq!(snap.histogram_count("classifier_feature_extraction_ns"), 1);
}

/// The full model round trip: `train --out` produces a file that
/// `classify --model` and `replay --model` accept, and a model whose
/// `format_version` is from the future is rejected up front with the
/// version mismatch message instead of a parse error deep in scoring.
#[test]
fn model_format_version_round_trip_and_mismatch_rejection() {
    let capture = tmp("goon.pcap");
    commands::generate(&args(&["--family", "goon", "--seed", "21", "--out", &capture])).unwrap();
    let model = tmp("roundtrip-model.json");
    commands::train(&args(&["--scale", "0.05", "--seed", "17", "--out", &model])).unwrap();
    commands::classify(&args(&["--model", &model, &capture])).unwrap();
    commands::replay(&args(&["--model", &model, &capture])).unwrap();

    // Same bytes, format_version bumped: every consumer must refuse it.
    let text = std::fs::read_to_string(&model).unwrap();
    let tampered = text.replacen("\"format_version\":1", "\"format_version\":99", 1);
    assert_ne!(tampered, text, "the saved model carries its format version");
    let bumped = tmp("model-v99.json");
    std::fs::write(&bumped, tampered).unwrap();
    for result in [
        commands::classify(&args(&["--model", &bumped, &capture])),
        commands::replay(&args(&["--model", &bumped, &capture])),
        commands::inspect(&args(&["--model", &bumped])),
    ] {
        let err = result.unwrap_err();
        assert!(
            err.contains("uses model format 99 but this build expects 1"),
            "unexpected error: {err}"
        );
    }
}

/// `replay --shards N` drives the streamd engine: the run succeeds, the
/// engine's telemetry lands in --metrics-out, and the zero-loss drain
/// invariant (enqueued == processed, nothing dropped) holds.
#[test]
fn replay_sharded_reports_engine_metrics_with_zero_loss() {
    let capture = tmp("magnitude.pcap");
    commands::generate(&args(&["--family", "magnitude", "--seed", "19", "--out", &capture]))
        .unwrap();
    let model = trained_model_path();
    let metrics = tmp("sharded-metrics.json");
    commands::replay(&args(&[
        "--model", &model, "--shards", "4", "--metrics-out", &metrics, &capture,
    ]))
    .unwrap();
    let snap: telemetry::Snapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(snap.gauges["streamd_shards"], 4);
    assert!(snap.counter("streamd_enqueued_total") > 0);
    assert_eq!(
        snap.counter("streamd_enqueued_total"),
        snap.counter("streamd_processed_total"),
        "graceful drain loses nothing"
    );
    assert_eq!(snap.counter("streamd_dropped_total"), 0);
    // Ingest + per-shard detector metrics were folded into the snapshot.
    assert_eq!(snap.counter("ingest_captures_total"), 1);
    assert!(snap.counter("detector_transactions_total") > 0);
    // Strict sharded replay works too (no ingest report attached).
    commands::replay(&args(&["--model", &model, "--shards", "2", "--strict", &capture]))
        .unwrap();
}

/// The engine snapshot round trip: `replay --snapshot-out` writes a
/// checkpoint file that `--resume` accepts (including into a different
/// shard count), and a snapshot whose format version is from the
/// future is rejected up front with the version-mismatch message —
/// mirroring the model-format gate.
#[test]
fn snapshot_format_version_round_trip_and_mismatch_rejection() {
    let capture = tmp("neutrino.pcap");
    commands::generate(&args(&["--family", "neutrino", "--seed", "29", "--out", &capture]))
        .unwrap();
    let model = trained_model_path();
    let snap = tmp("engine.snap");
    commands::replay(&args(&[
        "--model", &model, "--snapshot-out", &snap, "--checkpoint-every", "8", &capture,
    ]))
    .unwrap();

    // Resume the finished run into a different shard count: the
    // watermark already covers the whole stream, so the replay feeds
    // nothing new but still restores, re-partitions 1→4, and writes a
    // fresh checkpoint.
    let resumed = tmp("engine-resumed.snap");
    commands::replay(&args(&[
        "--model", &model, "--resume", &snap, "--shards", "4", "--snapshot-out", &resumed,
        &capture,
    ]))
    .unwrap();
    assert!(std::fs::metadata(&resumed).unwrap().len() > 0);

    // Same bytes, format version bumped (u32 LE at offset 8): refused
    // before any payload parsing.
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let bumped = tmp("engine-v99.snap");
    std::fs::write(&bumped, &bytes).unwrap();
    let err = commands::replay(&args(&["--model", &model, "--resume", &bumped, &capture]))
        .unwrap_err();
    assert!(
        err.contains("uses snapshot format 99 but this build expects 1"),
        "unexpected error: {err}"
    );
}

/// A hot-reload mid-replay (`--reload-model --reload-at`) goes through
/// the model-format gate too: a tampered reload model is refused.
#[test]
fn reload_model_flag_passes_the_model_format_gate() {
    let capture = tmp("sweetorange.pcap");
    commands::generate(&args(&[
        "--family", "sweetorange", "--seed", "31", "--out", &capture,
    ]))
    .unwrap();
    let model = trained_model_path();
    let snap = tmp("reload.snap");
    commands::replay(&args(&[
        "--model", &model, "--snapshot-out", &snap, "--reload-model", &model, "--reload-at",
        "10", &capture,
    ]))
    .unwrap();

    let text = std::fs::read_to_string(&model).unwrap();
    let tampered = text.replacen("\"format_version\":1", "\"format_version\":99", 1);
    let bumped = tmp("reload-model-v99.json");
    std::fs::write(&bumped, tampered).unwrap();
    let err = commands::replay(&args(&[
        "--model", &model, "--snapshot-out", &snap, "--reload-model", &bumped, &capture,
    ]))
    .unwrap_err();
    assert!(
        err.contains("uses model format 99 but this build expects 1"),
        "unexpected error: {err}"
    );
}

#[test]
fn helpful_errors_for_bad_input() {
    assert!(commands::classify(&args(&["--model", "/nonexistent.json", "x.pcap"]))
        .unwrap_err()
        .contains("cannot read"));
    assert!(commands::generate(&args(&["--family", "bogus", "--out", &tmp("x.pcap")]))
        .unwrap_err()
        .contains("unknown family"));
    assert!(commands::generate(&args(&[
        "--family", "rig", "--benign", "search", "--out", &tmp("x.pcap")
    ]))
    .unwrap_err()
    .contains("mutually exclusive"));
    let model = trained_model_path();
    assert!(commands::replay(&args(&["--model", &model])).unwrap_err().contains("exactly one"));
    // A non-capture file errors cleanly in strict mode; the lenient
    // default degrades gracefully (zero transactions, counted loss).
    let junk = tmp("junk.bin");
    std::fs::write(&junk, b"not a capture at all").unwrap();
    assert!(commands::classify(&args(&["--model", &model, "--strict", &junk])).is_err());
    assert!(commands::classify(&args(&["--model", &model, &junk])).is_ok());
}

#[test]
fn strict_and_lenient_agree_on_clean_captures() {
    let clean = tmp("fiesta.pcap");
    commands::generate(&args(&["--family", "fiesta", "--seed", "11", "--out", &clean]))
        .unwrap();
    let model = trained_model_path();
    commands::classify(&args(&["--model", &model, "--strict", &clean])).unwrap();
    commands::classify(&args(&["--model", &model, &clean])).unwrap();
    commands::replay(&args(&["--model", &model, "--strict", &clean])).unwrap();
    commands::replay(&args(&["--model", &model, &clean])).unwrap();
    // A corrupted capture fail-stops strictly but replays leniently.
    let bytes = std::fs::read(&clean).unwrap();
    let hurt = tmp("fiesta-truncated.pcap");
    std::fs::write(&hurt, &bytes[..bytes.len() - 3]).unwrap();
    commands::replay(&args(&["--model", &model, &hurt])).unwrap();
}
