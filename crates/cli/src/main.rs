//! `dynaminer` — command-line front end for the DynaMiner reproduction.
//!
//! ```text
//! dynaminer train    [--scale S] [--seed N] --out model.json
//! dynaminer classify --model model.json <capture.pcap>...
//! dynaminer replay   [--model model.json] [--threshold L] <capture.pcap>
//! dynaminer generate [--family <name> | --benign <scenario>] [--seed N] --out <file.pcap>
//! dynaminer dot      <capture.pcap>
//! dynaminer features <capture.pcap>
//! ```
//!
//! Capture files are classic libpcap; `generate` produces them, and any
//! HTTP-over-IPv4 capture with the same framing is accepted.

use std::process::ExitCode;

use dynaminer_cli::commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "train" => commands::train(rest),
        "classify" => commands::classify(rest),
        "replay" => commands::replay(rest),
        "generate" => commands::generate(rest),
        "drift" => commands::drift(rest),
        "dot" => commands::dot(rest),
        "inspect" => commands::inspect(rest),
        "features" => commands::features(rest),
        "wire" => dynaminer_cli::wire::wire(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
