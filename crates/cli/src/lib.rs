//! Library surface of the `dynaminer` CLI (the binary in `main.rs` is a
//! thin dispatcher). Exposed so integration tests can drive subcommands
//! in-process.

pub mod commands;
pub mod wire;
