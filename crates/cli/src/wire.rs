//! `dynaminer wire` — the on-the-wire ingress subcommands.
//!
//! `wire proxy` and `wire capture` join a live
//! [`TrafficSource`] to the stream
//! engine with the same durable flag set as `replay`
//! (`--snapshot-out`, `--resume`, `--checkpoint-every`,
//! `--reload-model`); `SIGTERM`/`SIGINT` triggers the zero-loss
//! graceful drain. `wire origin`, `wire drive`, and `wire pcap` are
//! the deterministic loopback parity harness: for the same
//! `--seed`/`--infections`/`--benign` they serve, drive, and render
//! the *same* episode set, so a proxy run and an offline `replay` of
//! the generated capture can be compared field for field.

use std::fs;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::time::Duration;

use dynaminer::detector::{ClueConfig, DetectorConfig};
use dynaminer::forensic::ForensicReport;
use nettrace::source::TrafficSource;
use nettrace::wiretap::TapConfig;
use streamd::BackpressurePolicy;
use synthtraffic::wire::{
    drive_episodes, episodes_pcap, merged_wire_transactions, wire_episode_set, OriginServer,
};
use synthtraffic::Episode;
use wirefront::{run, CaptureConfig, CaptureSource, ProxyConfig, ProxySource, RunOptions};

use crate::commands::{self, Options};

/// Dispatches `dynaminer wire <subcommand>`.
///
/// # Errors
///
/// Unknown subcommand, bad flags, or any subcommand failure.
pub fn wire(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(format!("wire expects a subcommand\n{}", commands::USAGE));
    };
    match sub.as_str() {
        "proxy" => proxy(rest),
        "capture" => capture(rest),
        "origin" => origin(rest),
        "drive" => drive(rest),
        "pcap" => pcap(rest),
        other => Err(format!("unknown wire subcommand {other:?}\n{}", commands::USAGE)),
    }
}

/// The deterministic episode set shared by `origin`, `drive`, and
/// `pcap`: same flags, same episodes, in every process.
fn episode_set(opts: &Options) -> Result<Vec<Episode>, String> {
    let seed = opts.u64_flag("seed", 7)?;
    let infections = opts.u64_flag("infections", 2)? as usize;
    let benign = opts.u64_flag("benign", 2)? as usize;
    Ok(wire_episode_set(seed, infections, benign))
}

/// Publishes the bound address for harness coordination: written to
/// `--ready-file` atomically (tmp + rename), so a watcher never reads
/// a partial address.
fn announce_ready(opts: &Options, addr: SocketAddr) -> Result<(), String> {
    let Some(path) = opts.flags.get("ready-file") else {
        return Ok(());
    };
    let tmp = format!("{path}.tmp");
    fs::write(&tmp, format!("{addr}\n")).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))
}

fn parse_addr(opts: &Options, flag: &str) -> Result<SocketAddr, String> {
    let text = opts.required(flag)?;
    text.parse().map_err(|_| format!("--{flag} expects HOST:PORT, got {text:?}"))
}

fn tap_config(opts: &Options) -> Result<TapConfig, String> {
    let mut tap = TapConfig::default();
    let capacity = opts.u64_flag("tap-capacity", 0)?;
    if capacity > 0 {
        tap.capacity = capacity as usize;
    }
    tap.honor_replay_ts = opts.bool_flag("honor-replay-ts");
    Ok(tap)
}

/// `wire proxy` — inline forward proxy feeding the engine.
fn proxy(args: &[String]) -> Result<(), String> {
    let opts = commands::parse(args)?;
    let listen = parse_addr(&opts, "listen")?;
    let origin_addr = parse_addr(&opts, "origin")?;
    let mut config = ProxyConfig::new(origin_addr);
    config.proxy_protocol = opts.bool_flag("proxy-protocol");
    config.tap = tap_config(&opts)?;
    if opts.bool_flag("drop-newest") {
        config.policy = BackpressurePolicy::DropNewest;
    }
    config.max_connections = opts.u64_flag("max-connections", 1024)? as usize;
    let mut source = ProxySource::bind(listen, config)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    announce_ready(&opts, source.local_addr())?;
    eprintln!("wire proxy: {} -> {origin_addr}", source.local_addr());
    run_source(&opts, &mut source)
}

#[cfg(target_os = "linux")]
fn live_source(iface: &str, config: CaptureConfig) -> Result<CaptureSource, String> {
    CaptureSource::live(iface, config)
        .map_err(|e| format!("cannot capture on {iface} (CAP_NET_RAW required): {e}"))
}

#[cfg(not(target_os = "linux"))]
fn live_source(iface: &str, _config: CaptureConfig) -> Result<CaptureSource, String> {
    Err(format!("--iface {iface}: live capture requires Linux AF_PACKET support"))
}

/// `wire capture` — packet source (pcap tail or AF_PACKET) feeding
/// the engine.
fn capture(args: &[String]) -> Result<(), String> {
    let opts = commands::parse(args)?;
    let mut config = CaptureConfig { tap: tap_config(&opts)?, ..CaptureConfig::default() };
    if let Some(ports) = opts.flags.get("ports") {
        config.ports = ports
            .split(',')
            .map(|p| {
                p.trim()
                    .parse()
                    .map_err(|_| format!("--ports expects comma-separated ports, got {p:?}"))
            })
            .collect::<Result<_, _>>()?;
    }
    let mut source = match (opts.flags.get("pcap"), opts.flags.get("iface")) {
        (Some(path), None) => {
            CaptureSource::pcap_file(Path::new(path), opts.bool_flag("follow"), config)
                .map_err(|e| format!("cannot open {path}: {e}"))?
        }
        (None, Some(iface)) => live_source(iface, config)?,
        _ => return Err("wire capture needs exactly one of --pcap or --iface".into()),
    };
    run_source(&opts, &mut source)
}

/// `wire origin` — the loopback replay origin, serving the episode
/// set until terminated.
fn origin(args: &[String]) -> Result<(), String> {
    let opts = commands::parse(args)?;
    let episodes = episode_set(&opts)?;
    let transactions = merged_wire_transactions(&episodes);
    let server = OriginServer::start(&transactions).map_err(|e| format!("cannot bind: {e}"))?;
    announce_ready(&opts, server.addr())?;
    eprintln!("wire origin: serving {} transactions on {}", transactions.len(), server.addr());
    let stop = wirefront::sys::install_termination_handler();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.stop();
    Ok(())
}

/// `wire drive` — replays the episode set through a proxy, as real
/// sequential client connections.
fn drive(args: &[String]) -> Result<(), String> {
    let opts = commands::parse(args)?;
    let proxy_addr = parse_addr(&opts, "proxy")?;
    let episodes = episode_set(&opts)?;
    let transactions = merged_wire_transactions(&episodes);
    let driven = drive_episodes(proxy_addr, &transactions, opts.bool_flag("proxy-protocol"))
        .map_err(|e| format!("drive through {proxy_addr} failed: {e}"))?;
    println!("driven {driven} transactions through {proxy_addr}");
    Ok(())
}

/// `wire pcap` — renders the same episode set as an offline capture
/// file (the parity reference for `replay`).
fn pcap(args: &[String]) -> Result<(), String> {
    let opts = commands::parse(args)?;
    let out = opts.required("out")?;
    let episodes = episode_set(&opts)?;
    let bytes = episodes_pcap(&episodes).map_err(|e| e.to_string())?;
    fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("{out}: {} bytes, {} episodes", bytes.len(), episodes.len());
    Ok(())
}

/// The drain accounting and report a wire run emits with
/// `--report-out` (and `--format json`).
#[derive(serde::Serialize)]
struct WireReport {
    enqueued: u64,
    processed: u64,
    dropped: u64,
    backpressure_waits: u64,
    connections: u64,
    bytes_in: u64,
    transactions: u64,
    tap_overflows: u64,
    source_drops: u64,
    checkpoints: u64,
    report: ForensicReport,
}

/// Shared engine loop for `wire proxy` and `wire capture`: model,
/// durable state, signal handling, run, and reporting.
fn run_source(opts: &Options, source: &mut dyn TrafficSource) -> Result<(), String> {
    let threads = opts.threads_flag()?;
    let registry = telemetry::Registry::new();
    let metrics_out = opts.flags.get("metrics-out");
    let classifier = match opts.flags.get("model") {
        Some(path) => commands::load_model(path)?,
        None => {
            eprintln!("no --model given; training a default model first…");
            commands::train_classifier(0.25, 42, threads, metrics_out.map(|_| &registry))
        }
    };
    let threshold = opts.u64_flag("threshold", 2)? as usize;
    let detector_config = DetectorConfig {
        clue: ClueConfig { redirect_threshold: threshold, ..ClueConfig::default() },
        scoring_threads: threads,
        ..DetectorConfig::default()
    };
    let shards = opts.u64_flag("shards", 1)? as usize;
    let stream_config =
        streamd::StreamConfig { shards: shards.max(1), ..streamd::StreamConfig::default() };
    let mut engine = match opts.flags.get("resume") {
        Some(p) => {
            let snapshot = streamd::read_snapshot(Path::new(p))?;
            streamd::StreamEngine::restore(
                classifier,
                detector_config,
                stream_config,
                &registry,
                snapshot,
            )
        }
        None => streamd::StreamEngine::with_telemetry(
            classifier,
            detector_config,
            stream_config,
            &registry,
        ),
    };
    let reload = match opts.flags.get("reload-model") {
        Some(p) => Some((commands::load_model(p)?, opts.u64_flag("reload-at", 0)?)),
        None => None,
    };
    let snapshot_out = opts.flags.get("snapshot-out");
    let mut sink = snapshot_out.map(|p| {
        let path = std::path::PathBuf::from(p);
        move |snap: &streamd::EngineSnapshot| streamd::write_snapshot_atomic(&path, snap)
    });
    let idle_exit_ms = opts.u64_flag("idle-exit-ms", 0)?;
    let stop = wirefront::sys::install_termination_handler();
    let run_opts = RunOptions {
        checkpoint_every: opts.u64_flag("checkpoint-every", 0)?,
        snapshot_sink: sink.as_mut().map(|f| {
            f as &mut dyn FnMut(&streamd::EngineSnapshot) -> Result<(), String>
        }),
        reload,
        idle_timeout: (idle_exit_ms > 0).then(|| Duration::from_millis(idle_exit_ms)),
        poll_wait_ms: 50,
        scoring_threads: threads,
        registry: Some(&registry),
    };
    let summary = run(source, &mut engine, stop, run_opts)?;

    if let Some(path) = metrics_out {
        commands::write_metrics(&registry, path)?;
    }
    let wire_report = WireReport {
        enqueued: summary.enqueued,
        processed: summary.processed,
        dropped: summary.dropped,
        backpressure_waits: summary.backpressure_waits,
        connections: summary.stats.connections,
        bytes_in: summary.stats.bytes_in,
        transactions: summary.stats.transactions,
        tap_overflows: summary.stats.tap_overflows,
        source_drops: summary.stats.source_drops,
        checkpoints: summary.checkpoints,
        report: summary.report,
    };
    if let Some(path) = opts.flags.get("report-out") {
        let json = serde_json::to_string_pretty(&wire_report).map_err(|e| e.to_string())?;
        fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    if opts.flags.get("format").map(String::as_str) == Some("json") {
        let json = serde_json::to_string_pretty(&wire_report).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!(
        "wire: {} transactions, {} conversations, {} alert(s)",
        wire_report.report.transactions,
        wire_report.report.conversations.len(),
        wire_report.report.alerts,
    );
    println!(
        "  drain: enqueued={} processed={} dropped={} backpressure_waits={}",
        summary.enqueued, summary.processed, summary.dropped, summary.backpressure_waits,
    );
    println!(
        "  source: connections={} bytes_in={} transactions={} tap_overflows={} source_drops={}",
        summary.stats.connections,
        summary.stats.bytes_in,
        summary.stats.transactions,
        summary.stats.tap_overflows,
        summary.stats.source_drops,
    );
    if let Some(ingest) = &wire_report.report.ingest {
        println!("  ingest: {ingest}");
    }
    Ok(())
}
