//! Subcommand implementations and minimal flag parsing.

use std::collections::BTreeMap;
use std::fs;

use dynaminer::classifier::{build_dataset_parallel, Classifier, FeatureSelection};
use dynaminer::detector::{ClueConfig, DetectorConfig};
use dynaminer::wcg::Wcg;
use dynaminer::{features, forensic};
use nettrace::{HttpTransaction, TransactionExtractor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::pcapgen;
use synthtraffic::{BenignScenario, EkFamily};

/// Top-level usage text.
pub const USAGE: &str = "\
dynaminer — payload-agnostic web-conversation-graph malware detection

USAGE:
  dynaminer train    [--scale S] [--seed N] [--threads N] [--metrics-out FILE] --out model.json
  dynaminer classify --model model.json [--threads N] [--strict] [--metrics-out FILE] <capture.pcap>...
  dynaminer replay   [--model model.json] [--threshold L] [--threads N] [--shards N] [--format text|json] [--strict] [--metrics-out FILE]
                     [--snapshot-out FILE] [--resume FILE] [--checkpoint-every N] [--pace-ms MS] [--reload-model FILE] [--reload-at N] <capture.pcap>
  dynaminer generate [--family <name> | --benign <scenario>] [--seed N] --out <file.pcap>
  dynaminer drift    [--epochs N] [--scale S] [--seed N] [--shards N] [--retrain] [--promote-margin M]
                     [--out FILE] [--ledger-out FILE] [--metrics-out FILE]
  dynaminer dot      <capture.pcap>
  dynaminer features <capture.pcap>
  dynaminer inspect  --model model.json [--top N]
  dynaminer wire proxy   --listen ADDR --origin ADDR [--proxy-protocol] [--honor-replay-ts] [--drop-newest]
                         [--model model.json] [--threshold L] [--threads N] [--shards N] [--tap-capacity BYTES]
                         [--max-connections N] [--snapshot-out FILE] [--resume FILE] [--checkpoint-every N]
                         [--reload-model FILE] [--reload-at N] [--metrics-out FILE] [--report-out FILE]
                         [--ready-file FILE] [--idle-exit-ms MS] [--format text|json]
  dynaminer wire capture (--pcap FILE [--follow] | --iface IFACE) [--ports 80,8080] [--honor-replay-ts]
                         [engine flags as for wire proxy]
  dynaminer wire origin  [--seed N] [--infections N] [--benign N] [--ready-file FILE]
  dynaminer wire drive   --proxy ADDR [--proxy-protocol] [--seed N] [--infections N] [--benign N]
  dynaminer wire pcap    --out FILE [--seed N] [--infections N] [--benign N]

Captures are read leniently by default: damaged records and malformed
streams are skipped and accounted in ingest-health counters. --strict
fails on the first unparseable byte instead.

--threads N sets the worker-thread count for feature extraction,
training, and batch scoring (default: available parallelism; results
are bit-identical at any value).

--metrics-out FILE writes pipeline telemetry after the run: a JSON
snapshot at FILE and Prometheus text exposition at FILE with the
extension swapped to .prom.

--shards N (replay) runs the capture through the sharded stream engine:
N per-shard detectors partitioned by client address. With default state
caps the report is bit-identical to the single-threaded replay at any
shard count.

--snapshot-out FILE (replay) checkpoints the engine's durable state to
FILE (atomic tmp+rename) every --checkpoint-every transactions (default
2048) and at end of stream. --resume FILE restores a checkpoint first —
transactions the checkpoint already covers are skipped, and the restore
may use a different --shards count than the run that wrote it; the
resumed report is byte-identical to an uninterrupted run. --pace-ms
sleeps between checkpoints (crash-drill pacing). --reload-model FILE
[--reload-at N] atomically hot-swaps in a second model once N
transactions have been fed (default 0: before the first).

wire runs the on-the-wire ingress: `wire proxy` is an inline HTTP
forward proxy (optionally PROXY-protocol v1/v2 aware) and `wire
capture` a packet source (pcap tail or AF_PACKET interface), both
feeding the live stream engine with the durable flag set of replay.
SIGTERM/SIGINT triggers a graceful zero-loss drain. `wire origin`,
`wire drive`, and `wire pcap` are the loopback parity harness: a
deterministic replay origin, an episode driver, and the equivalent
offline capture for the same --seed/--infections/--benign.

drift runs a seeded adversarial-drift campaign: per-family evasion
parameters walk over simulated time while each epoch replays through a
persistent stream engine, printing per-epoch recall/FPR/latency next to
a simulated VirusTotal. --retrain enables the shadow champion/challenger
loop (atomic model promotion between epochs; --promote-margin sets the
minimum recall gain, default 0.02). --out writes the decay curve as
JSON, --ledger-out the promotion ledger.

Families:  angler rig nuclear magnitude sweetorange flashpack neutrino goon fiesta other
Scenarios: search social webmail video alexa-browse software-update unofficial-download torrent-session";

/// Parsed `--flag value` options plus positional arguments.
pub(crate) struct Options {
    pub(crate) flags: BTreeMap<String, String>,
    pub(crate) positional: Vec<String>,
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 6] =
    ["strict", "retrain", "proxy-protocol", "honor-replay-ts", "drop-newest", "follow"];

pub(crate) fn parse(args: &[String]) -> Result<Options, String> {
    let mut flags = BTreeMap::new();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{name} requires a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Options { flags, positional })
}

impl Options {
    pub(crate) fn f64_flag(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }

    pub(crate) fn u64_flag(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got {v:?}")),
        }
    }

    pub(crate) fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    pub(crate) fn bool_flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Worker threads from `--threads` (default: available parallelism;
    /// `0` also means "auto").
    pub(crate) fn threads_flag(&self) -> Result<usize, String> {
        Ok(mlearn::parallel::resolve_threads(self.u64_flag("threads", 0)? as usize))
    }
}

/// Writes the registry as a JSON snapshot at `path` plus Prometheus
/// text exposition at `path` with the extension swapped to `.prom`
/// (`metrics.json` → `metrics.prom`; extensionless paths just gain
/// `.prom`).
pub(crate) fn write_metrics(registry: &telemetry::Registry, path: &str) -> Result<(), String> {
    let snapshot = registry.snapshot();
    let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
    fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
    let prom_path = match path.rsplit_once('.') {
        Some((stem, ext)) if !ext.contains('/') => format!("{stem}.prom"),
        _ => format!("{path}.prom"),
    };
    fs::write(&prom_path, registry.render_prometheus())
        .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
    eprintln!("metrics written to {path} and {prom_path}");
    Ok(())
}

fn load_transactions(path: &str) -> Result<Vec<HttpTransaction>, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Accepts classic pcap or pcapng, detected by magic.
    let packets =
        nettrace::capture::read_packets(&bytes).map_err(|e| format!("{path}: {e}"))?;
    TransactionExtractor::extract(&packets).map_err(|e| format!("{path}: {e}"))
}

/// Lenient counterpart of [`load_transactions`]: salvages whatever the
/// capture still holds, accounting losses in the returned report. Only
/// an unreadable file is an error.
fn load_transactions_lenient(
    path: &str,
) -> Result<(Vec<HttpTransaction>, nettrace::IngestReport), String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut report = nettrace::IngestReport::new();
    let txs = nettrace::SpanPipeline::extract_capture_lenient(&bytes, &mut report);
    Ok((txs, report))
}

/// On-disk model format: the classifier plus provenance metadata.
#[derive(serde::Serialize, serde::Deserialize)]
struct SavedModel {
    format_version: u32,
    trained_on: String,
    scale: f64,
    seed: u64,
    classifier: Classifier,
}

const MODEL_FORMAT_VERSION: u32 = 1;

pub(crate) fn load_model(path: &str) -> Result<Classifier, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let saved: SavedModel = serde_json::from_str(&text)
        .map_err(|e| format!("{path} is not a valid model: {e}"))?;
    if saved.format_version != MODEL_FORMAT_VERSION {
        return Err(format!(
            "{path} uses model format {} but this build expects {MODEL_FORMAT_VERSION}",
            saved.format_version
        ));
    }
    Ok(saved.classifier)
}

pub(crate) fn train_classifier(
    scale: f64,
    seed: u64,
    threads: usize,
    registry: Option<&telemetry::Registry>,
) -> Classifier {
    let corpus = synthtraffic::ground_truth(seed, scale);
    let items: Vec<(&[HttpTransaction], bool)> =
        corpus.iter().map(|e| (e.transactions.as_slice(), e.is_infection())).collect();
    if let Some(registry) = registry {
        registry
            .counter("train_episodes_total", "Ground-truth episodes featurized for training")
            .add(items.len() as u64);
    }
    let build_started = std::time::Instant::now();
    let data = build_dataset_parallel(&items, threads);
    if let Some(registry) = registry {
        registry
            .latency_histogram("train_dataset_build_ns", "Corpus featurization wall-clock time")
            .observe_since(build_started);
    }
    let tree_fit_ns = registry
        .map(|r| r.latency_histogram("mlearn_tree_fit_ns", "Per-tree random-forest fit time"));
    Classifier::fit_threaded_timed(
        &data,
        FeatureSelection::All,
        &mlearn::forest::ForestConfig::default(),
        seed,
        threads,
        tree_fit_ns.as_ref(),
    )
}

/// `dynaminer train` — train on the calibrated synthetic ground truth and
/// save the model as JSON.
pub fn train(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let scale = opts.f64_flag("scale", 0.25)?;
    let seed = opts.u64_flag("seed", 42)?;
    let threads = opts.threads_flag()?;
    let out = opts.required("out")?;
    eprintln!("training on ground-truth corpus (scale {scale}, seed {seed}, {threads} threads)…");
    let registry = telemetry::Registry::new();
    let metrics_out = opts.flags.get("metrics-out");
    let classifier = train_classifier(scale, seed, threads, metrics_out.map(|_| &registry));
    let saved = SavedModel {
        format_version: MODEL_FORMAT_VERSION,
        trained_on: "synthtraffic ground truth (Table I calibration)".to_string(),
        scale,
        seed,
        classifier,
    };
    let json = serde_json::to_string(&saved).map_err(|e| e.to_string())?;
    fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("model written to {out}");
    if let Some(path) = metrics_out {
        write_metrics(&registry, path)?;
    }
    Ok(())
}

/// `dynaminer classify` — score each capture's WCG with a trained model.
/// Captures are featurized and scored as one batch across the worker
/// pool, so classifying a directory of captures scales with `--threads`.
pub fn classify(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let classifier = load_model(opts.required("model")?)?;
    let threads = opts.threads_flag()?;
    if opts.positional.is_empty() {
        return Err("no capture files given".into());
    }
    let registry = telemetry::Registry::new();
    let metrics_out = opts.flags.get("metrics-out");
    let ingest_metrics = nettrace::metrics::IngestMetrics::new(&registry);
    let extraction_ns = registry.latency_histogram(
        "classifier_feature_extraction_ns",
        "WCG construction + 37-feature extraction latency per capture",
    );
    let scoring_ns = registry.latency_histogram(
        "classifier_scoring_ns",
        "Random-forest scoring latency per classification or batch",
    );
    let verdicts =
        registry.counter("classify_infection_verdicts_total", "Captures judged infectious");
    // Load + featurize every capture first, then score all of them in one
    // batched forest pass.
    struct Loaded {
        txs: usize,
        hosts: usize,
        fv: Option<features::FeatureVector>,
        ingest: Option<nettrace::IngestReport>,
    }
    let mut loaded = Vec::new();
    for path in &opts.positional {
        let (txs, ingest) = if opts.bool_flag("strict") {
            (load_transactions(path)?, None)
        } else {
            let (txs, report) = load_transactions_lenient(path)?;
            ingest_metrics.record(&report);
            (txs, Some(report))
        };
        // A lenient read that salvaged nothing has no conversation to
        // judge; a verdict over zero evidence would be noise.
        if txs.is_empty() && ingest.is_some() {
            loaded.push(Loaded { txs: 0, hosts: 0, fv: None, ingest });
        } else {
            let started = std::time::Instant::now();
            let wcg = Wcg::from_transactions(&txs);
            let fv = features::extract(&wcg);
            extraction_ns.observe_since(started);
            loaded.push(Loaded {
                txs: txs.len(),
                hosts: wcg.remote_host_count(),
                fv: Some(fv),
                ingest,
            });
        }
    }
    let fvs: Vec<features::FeatureVector> =
        loaded.iter().filter_map(|l| l.fv.clone()).collect();
    let started = std::time::Instant::now();
    let scored = classifier.score_features_batch(&fvs, threads);
    scoring_ns.observe_since(started);
    let mut scores = scored.into_iter();
    for (path, item) in opts.positional.iter().zip(&loaded) {
        if item.fv.is_none() {
            println!("{path}: 0 transactions recovered, no verdict");
        } else {
            let score = scores.next().expect("one score per featurized capture");
            if score >= 0.5 {
                verdicts.inc();
            }
            println!(
                "{path}: {} transactions, {} hosts, P(infection) = {score:.3} → {}",
                item.txs,
                item.hosts,
                if score >= 0.5 { "INFECTION" } else { "benign" },
            );
        }
        if let Some(report) = &item.ingest {
            println!("  ingest: {report}");
        }
    }
    if let Some(path) = metrics_out {
        write_metrics(&registry, path)?;
    }
    Ok(())
}

/// `dynaminer replay` — forensic replay of a capture through the full
/// detector (session clustering, clue gate, WCG classification).
pub fn replay(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let threads = opts.threads_flag()?;
    let registry = telemetry::Registry::new();
    let metrics_out = opts.flags.get("metrics-out");
    let classifier = match opts.flags.get("model") {
        Some(path) => load_model(path)?,
        None => {
            eprintln!("no --model given; training a default model first…");
            train_classifier(0.25, 42, threads, metrics_out.map(|_| &registry))
        }
    };
    let threshold = opts.u64_flag("threshold", 2)? as usize;
    let [path] = opts.positional.as_slice() else {
        return Err("replay expects exactly one capture file".into());
    };
    let config = DetectorConfig {
        clue: ClueConfig { redirect_threshold: threshold, ..ClueConfig::default() },
        scoring_threads: threads,
        ..DetectorConfig::default()
    };
    let telemetry_on = metrics_out.is_some();
    let shards = opts.u64_flag("shards", 1)? as usize;
    let snapshot_out = opts.flags.get("snapshot-out");
    let durable = snapshot_out.is_some() || opts.flags.contains_key("resume");
    let report = if durable {
        // Durable replay through the streamd engine (any shard count):
        // periodic snapshots, optional resume, optional model
        // hot-reload. Interrupted-and-resumed output is byte-identical
        // to an uninterrupted run.
        let (txs, ingest) = if opts.bool_flag("strict") {
            (load_transactions(path)?, None)
        } else {
            let (txs, report) = load_transactions_lenient(path)?;
            (txs, Some(report))
        };
        let resume = match opts.flags.get("resume") {
            Some(p) => Some(streamd::read_snapshot(std::path::Path::new(p))?),
            None => None,
        };
        let reload = match opts.flags.get("reload-model") {
            // Reload models go through load_model, so they pass the
            // same format-version gate as the initial --model.
            Some(p) => Some((load_model(p)?, opts.u64_flag("reload-at", 0)?)),
            None => None,
        };
        let pace_ms = opts.u64_flag("pace-ms", 0)?;
        let mut sink = snapshot_out.map(|p| {
            let path = std::path::PathBuf::from(p);
            move |snap: &streamd::EngineSnapshot| streamd::write_snapshot_atomic(&path, snap)
        });
        if telemetry_on {
            if let Some(ingest) = &ingest {
                nettrace::metrics::IngestMetrics::new(&registry).record(ingest);
            }
        }
        let durable_opts = streamd::DurableReplayOptions {
            resume,
            checkpoint_every: opts.u64_flag("checkpoint-every", 2048)?,
            snapshot_sink: sink.as_mut().map(|f| {
                f as &mut dyn FnMut(&streamd::EngineSnapshot) -> Result<(), String>
            }),
            pace: (pace_ms > 0).then(|| std::time::Duration::from_millis(pace_ms)),
            reload,
        };
        let stream_config =
            streamd::StreamConfig { shards: shards.max(1), ..streamd::StreamConfig::default() };
        let mut report = streamd::analyze_transactions_durable(
            &txs,
            classifier,
            config,
            stream_config,
            telemetry_on.then_some(&registry),
            durable_opts,
        )?;
        report.ingest = ingest;
        report
    } else if shards > 1 {
        // Sharded replay through the streamd engine: same ingest
        // behaviour as the single-threaded path, then the stream is
        // hash-partitioned by client across `shards` workers.
        let (txs, ingest) = if opts.bool_flag("strict") {
            (load_transactions(path)?, None)
        } else {
            let (txs, report) = load_transactions_lenient(path)?;
            (txs, Some(report))
        };
        let stream_config = streamd::StreamConfig { shards, ..streamd::StreamConfig::default() };
        let mut report = if telemetry_on {
            if let Some(ingest) = &ingest {
                nettrace::metrics::IngestMetrics::new(&registry).record(ingest);
            }
            streamd::analyze_transactions_sharded_telemetry(
                &txs, classifier, config, stream_config, &registry,
            )
        } else {
            streamd::analyze_transactions_sharded(&txs, classifier, config, stream_config)
        };
        report.ingest = ingest;
        report
    } else {
        match (opts.bool_flag("strict"), telemetry_on) {
            (true, false) => {
                let txs = load_transactions(path)?;
                forensic::analyze_transactions(&txs, classifier, config)
            }
            (true, true) => {
                let txs = load_transactions(path)?;
                forensic::analyze_transactions_telemetry(&txs, classifier, config, &registry)
            }
            (false, false) => {
                let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                forensic::analyze_pcap_lenient(&bytes, classifier, config)
            }
            (false, true) => {
                let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                forensic::analyze_pcap_lenient_telemetry(&bytes, classifier, config, &registry)
            }
        }
    };
    if let Some(path) = metrics_out {
        write_metrics(&registry, path)?;
    }
    if opts.flags.get("format").map(String::as_str) == Some("json") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!(
        "{path}: {} transactions, {} conversations, {} alert(s)",
        report.transactions,
        report.conversations.len(),
        report.alerts
    );
    if let Some(ingest) = &report.ingest {
        println!("  ingest: {ingest}");
    }
    if let Some(stats) = &report.stats {
        println!(
            "  stats: {} clue(s), {} WCG rebuild(s), {} re-classification(s), {} eviction(s)",
            stats.counter("detector_clues_total"),
            stats.counter("detector_wcg_rebuilds_total"),
            stats.counter("detector_reclassifications_total"),
            stats.counter("session_retention_evictions_total")
                + stats.counter("session_cap_evictions_total"),
        );
    }
    for verdict in &report.conversations {
        println!(
            "  conversation {}: {} txs, {} hosts, score {:.3}{}",
            verdict.id,
            verdict.transactions,
            verdict.hosts,
            verdict.score,
            if verdict.alerted { "  ← ALERT" } else { "" },
        );
    }
    for d in &report.downloads {
        println!("  download {} {} {}B digest={:016x}", d.host, d.class, d.size, d.digest);
    }
    Ok(())
}

/// `dynaminer generate` — write a synthetic episode as a pcap file.
pub fn generate(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let seed = opts.u64_flag("seed", 1)?;
    let out = opts.required("out")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let episode = match (opts.flags.get("family"), opts.flags.get("benign")) {
        (Some(f), None) => {
            let family = parse_family(f)?;
            generate_infection(&mut rng, family, 1.45e9)
        }
        (None, Some(s)) => {
            let scenario = parse_scenario(s)?;
            generate_benign(&mut rng, scenario, 1.45e9)
        }
        (None, None) => generate_infection(&mut rng, EkFamily::Angler, 1.45e9),
        (Some(_), Some(_)) => {
            return Err("--family and --benign are mutually exclusive".into())
        }
    };
    let pcap = pcapgen::episode_pcap(&episode).map_err(|e| e.to_string())?;
    fs::write(out, pcap).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "{out}: {} transactions, {} hosts, label {:?}",
        episode.transactions.len(),
        episode.unique_hosts(),
        episode.label
    );
    Ok(())
}

/// `dynaminer drift` — run an adversarial drift campaign and print the
/// detector's decay curve (optionally with shadow retraining).
pub fn drift(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let epochs = opts.u64_flag("epochs", 6)? as usize;
    let scale = opts.f64_flag("scale", 0.05)?;
    let seed = opts.u64_flag("seed", 42)?;
    let shards = opts.u64_flag("shards", 1)? as usize;
    if epochs == 0 {
        return Err("--epochs must be at least 1".into());
    }
    if !scale.is_finite() || scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let retrain = opts.bool_flag("retrain").then(|| driftlab::RetrainConfig {
        policy: driftlab::PromotionPolicy {
            min_recall_gain: opts
                .f64_flag("promote-margin", 0.02)
                .unwrap_or(0.02),
            ..driftlab::PromotionPolicy::default()
        },
        ..driftlab::RetrainConfig::default()
    });
    let config = driftlab::DriftLabConfig {
        schedule: driftlab::DriftScheduleConfig {
            seed,
            scale,
            epochs,
            ..driftlab::DriftScheduleConfig::default()
        },
        shards,
        train_scale: scale,
        retrain,
        ..driftlab::DriftLabConfig::default()
    };

    eprintln!(
        "drift campaign: {epochs} epochs, scale {scale}, seed {seed}, {shards} shard(s), retrain {}…",
        if config.retrain.is_some() { "on" } else { "off" }
    );
    let registry = telemetry::Registry::new();
    let metrics_out = opts.flags.get("metrics-out");
    let out = driftlab::run_drift_lab(&config, Some(&registry));

    println!(
        "{:<6} {:>8} {:>8} {:>10} {:>9} {:>9} {:>7}",
        "epoch", "recall", "fpr", "latency-s", "vt-live", "vt-end", "model"
    );
    for e in &out.curve.entries {
        println!(
            "{:<6} {:>8.3} {:>8.3} {:>10} {:>9.3} {:>9.3} {:>7}",
            e.epoch,
            e.recall,
            e.fpr,
            e.mean_alert_latency.map_or_else(|| "-".into(), |l| format!("{l:.1}")),
            e.vt_recall_live,
            e.vt_recall_epoch_end,
            e.model_version,
        );
    }
    for entry in &out.ledger {
        println!(
            "epoch {}: challenger margin {:+.3} (fpr {:+.3}) -> {}",
            entry.epoch,
            entry.recall_margin,
            entry.fpr_regression,
            if entry.promoted {
                format!("promoted to v{}", entry.model_version_after)
            } else {
                "held".into()
            },
        );
    }

    if let Some(path) = opts.flags.get("out") {
        let json = serde_json::to_string_pretty(&out.curve).map_err(|e| e.to_string())?;
        fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("decay curve written to {path}");
    }
    if let Some(path) = opts.flags.get("ledger-out") {
        let json = serde_json::to_string_pretty(&out.ledger).map_err(|e| e.to_string())?;
        fs::write(path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("promotion ledger written to {path}");
    }
    if let Some(path) = metrics_out {
        write_metrics(&registry, path)?;
    }
    Ok(())
}

/// `dynaminer dot` — print the capture's WCG in Graphviz DOT format.
pub fn dot(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err("dot expects exactly one capture file".into());
    };
    let txs = load_transactions(path)?;
    println!("{}", Wcg::from_transactions(&txs).to_dot("wcg"));
    Ok(())
}

/// `dynaminer features` — print the capture's 37 feature values.
pub fn features(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let [path] = opts.positional.as_slice() else {
        return Err("features expects exactly one capture file".into());
    };
    let txs = load_transactions(path)?;
    let fv = features::extract(&Wcg::from_transactions(&txs));
    for (name, value) in features::NAMES.iter().zip(fv.values()) {
        println!("{name:<30} {value:.6}");
    }
    Ok(())
}

/// `dynaminer inspect` — print a trained model's feature importances.
pub fn inspect(args: &[String]) -> Result<(), String> {
    let opts = parse(args)?;
    let classifier = load_model(opts.required("model")?)?;
    let top = opts.u64_flag("top", 20)? as usize;
    println!("feature importances (mean decrease in impurity):");
    for (name, importance) in classifier.feature_importances().into_iter().take(top) {
        let bar_len = (importance * 200.0).round() as usize;
        println!("  {name:<30} {importance:>7.4} {}", "#".repeat(bar_len.min(60)));
    }
    Ok(())
}

fn parse_family(name: &str) -> Result<EkFamily, String> {
    let lowered = name.to_ascii_lowercase();
    EkFamily::ALL
        .into_iter()
        .find(|f| f.name().to_ascii_lowercase().replace(' ', "") == lowered.replace('-', ""))
        .or(match lowered.as_str() {
            "other" => Some(EkFamily::OtherKits),
            _ => None,
        })
        .ok_or_else(|| format!("unknown family {name:?}; see `dynaminer help`"))
}

fn parse_scenario(name: &str) -> Result<BenignScenario, String> {
    BenignScenario::WEIGHTED
        .iter()
        .map(|&(s, _)| s)
        .find(|s| s.label() == name.to_ascii_lowercase())
        .ok_or_else(|| format!("unknown scenario {name:?}; see `dynaminer help`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_flags_and_positionals() {
        let args: Vec<String> =
            ["--seed", "7", "a.pcap", "--out", "x", "b.pcap"].iter().map(|s| s.to_string()).collect();
        let opts = parse(&args).unwrap();
        assert_eq!(opts.flags["seed"], "7");
        assert_eq!(opts.flags["out"], "x");
        assert_eq!(opts.positional, ["a.pcap", "b.pcap"]);
    }

    #[test]
    fn parse_rejects_dangling_flag() {
        let args = vec!["--out".to_string()];
        assert!(parse(&args).is_err());
    }

    #[test]
    fn strict_flag_consumes_no_value() {
        let args: Vec<String> =
            ["--strict", "a.pcap"].iter().map(|s| s.to_string()).collect();
        let opts = parse(&args).unwrap();
        assert!(opts.bool_flag("strict"));
        assert!(!opts.bool_flag("lenient"));
        assert_eq!(opts.positional, ["a.pcap"]);
        // Trailing --strict is fine too (no dangling-value error).
        let args = vec!["a.pcap".to_string(), "--strict".to_string()];
        assert!(parse(&args).unwrap().bool_flag("strict"));
    }

    #[test]
    fn family_and_scenario_names_resolve() {
        assert_eq!(parse_family("angler").unwrap(), EkFamily::Angler);
        assert_eq!(parse_family("sweetorange").unwrap(), EkFamily::SweetOrange);
        assert_eq!(parse_family("other").unwrap(), EkFamily::OtherKits);
        assert!(parse_family("nope").is_err());
        assert_eq!(parse_scenario("search").unwrap(), BenignScenario::Search);
        assert_eq!(
            parse_scenario("torrent-session").unwrap(),
            BenignScenario::TorrentSession
        );
        assert!(parse_scenario("bogus").is_err());
    }
}
