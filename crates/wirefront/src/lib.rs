//! Real-wire ingress for DynaMiner: the front end that turns actual
//! network traffic into the digested [`HttpTransaction`] stream the
//! detection engine consumes.
//!
//! Two traffic sources implement the
//! [`TrafficSource`](nettrace::source::TrafficSource) abstraction:
//!
//! * [`capture::CaptureSource`] — passive observation. Reads whole L2
//!   frames either from a live `AF_PACKET` socket (Linux,
//!   `CAP_NET_RAW`) or by tailing a growing pcap file (portable; also
//!   the offline-replay bridge), reassembles each TCP flow in order
//!   with a bounded out-of-order buffer, and feeds both directions
//!   through a [`wiretap`](nettrace::wiretap) connection tap.
//! * [`proxy::ProxySource`] — inline interception. A `poll(2)`-driven
//!   non-blocking HTTP forward proxy that relays bytes between clients
//!   and an origin while a tap observes the relayed stream. Optional
//!   HAProxy PROXY-protocol (v1/v2) handshakes preserve the true
//!   client address through load balancers, so shard partitioning and
//!   per-client detector state key on the real client.
//!
//! Both sources synthesize transactions through the *same*
//! `synthesize_transaction`
//! path the offline pcap pipeline uses — parity by construction: a
//! conversation observed on the wire produces byte-identical
//! transactions (and therefore identical alerts and forensics) to the
//! same conversation extracted from a capture file. The loopback
//! parity suite in `tests/wire_loopback.rs` of the facade crate holds
//! this equivalence under test.
//!
//! [`run::run`] is the ingress loop joining either source to a
//! [`StreamEngine`](streamd::StreamEngine): feed-order sequence
//! numbering, download ledger, periodic snapshots, model hot-reload,
//! and a zero-loss graceful drain on `SIGTERM`/`SIGINT`
//! (`enqueued == processed + dropped` over everything the source ever
//! emitted). [`sys`] is the thin raw-syscall layer (`poll(2)`,
//! signal latch, `AF_PACKET`) that keeps the crate dependency-free.
//!
//! [`HttpTransaction`]: nettrace::transaction::HttpTransaction

pub mod capture;
pub mod metrics;
pub mod proxy;
pub mod run;
pub mod sys;

pub use capture::{CaptureConfig, CaptureSource};
pub use metrics::WireMetrics;
pub use proxy::{ProxyConfig, ProxySource};
pub use run::{run, RunOptions, RunSummary};
