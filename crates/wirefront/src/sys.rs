//! Thin raw-syscall layer: `poll(2)`, a `signal(2)` termination latch,
//! and (Linux only) an `AF_PACKET` capture socket.
//!
//! The build environment has no `libc` crate; every symbol here is
//! declared directly against the platform C library. The declarations
//! are kept to the handful of calls the ingress front end actually
//! needs, with types matching the Linux/glibc ABI (the only tier-1
//! target; the `poll`/`signal` prototypes are identical on the BSDs).

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::sync::atomic::{AtomicBool, Ordering};

/// One entry of a `poll(2)` fd set (`struct pollfd`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel, which is the standard way to hole-punch a set).
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events; also [`POLLERR`] / [`POLLHUP`] / [`POLLNVAL`],
    /// which are reported regardless of `events`.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether any of `mask` came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

/// C signal-handler type (`void (*)(int)`).
type SigHandler = extern "C" fn(c_int);

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn signal(signum: c_int, handler: SigHandler) -> usize;
}

/// Blocks up to `timeout_ms` for readiness on `fds` (`-1` = forever,
/// `0` = non-blocking check). Returns the number of ready entries;
/// `EINTR` is reported as zero ready entries so a latched signal is
/// observed by the caller's next loop iteration instead of surfacing
/// as an error.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR` (e.g. `EINVAL` on an
/// over-long set) is returned as the raw OS error.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

/// Process-wide termination latch, set by the signal handler. A static
/// is the only state an async-signal-safe handler may touch, so the
/// latch cannot live inside a source or engine struct.
static TERMINATED: AtomicBool = AtomicBool::new(false);

extern "C" fn latch_termination(_signum: c_int) {
    TERMINATED.store(true, Ordering::SeqCst);
}

/// Installs `SIGTERM`/`SIGINT` handlers that latch a flag instead of
/// killing the process, and returns the flag. The ingress run loop
/// polls it between work slices and performs a graceful drain — flush
/// taps, push the remaining transactions, join the shard workers —
/// before exiting, so a signal never loses accepted traffic.
pub fn install_termination_handler() -> &'static AtomicBool {
    unsafe {
        signal(SIGTERM, latch_termination);
        signal(SIGINT, latch_termination);
    }
    &TERMINATED
}

/// The current wall clock as fractional seconds since the Unix epoch —
/// the timestamp base for wire-observed traffic (replay harnesses
/// override it per message via the `X-Replay-Ts` mechanism instead).
pub fn wall_clock() -> f64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs_f64(),
        Err(_) => 0.0,
    }
}

/// `AF_PACKET` raw capture socket (Linux only; compile-gated, and at
/// runtime requires `CAP_NET_RAW`). Other platforms use the portable
/// pcap-file tail source instead.
#[cfg(target_os = "linux")]
pub mod packet {
    use super::*;
    use std::os::raw::c_char;

    const AF_PACKET: c_int = 17;
    const SOCK_RAW: c_int = 3;
    /// `ETH_P_ALL` in network byte order, as `socket(2)` expects it.
    const ETH_P_ALL_BE: c_int = 0x0003u16.to_be() as c_int;
    const SOL_PACKET: c_int = 263;
    const PACKET_STATISTICS: c_int = 6;
    const MSG_DONTWAIT: c_int = 0x40;
    const EAGAIN: i32 = 11;

    /// `struct sockaddr_ll` — the bind address of a packet socket.
    #[repr(C)]
    struct SockaddrLl {
        sll_family: u16,
        sll_protocol: u16,
        sll_ifindex: c_int,
        sll_hatype: u16,
        sll_pkttype: u8,
        sll_halen: u8,
        sll_addr: [u8; 8],
    }

    /// `struct tpacket_stats` — kernel-side receive/drop counters.
    #[repr(C)]
    #[derive(Default)]
    struct TpacketStats {
        tp_packets: u32,
        tp_drops: u32,
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn bind(fd: c_int, addr: *const SockaddrLl, len: u32) -> c_int;
        fn recv(fd: c_int, buf: *mut u8, len: usize, flags: c_int) -> isize;
        fn getsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            val: *mut TpacketStats,
            len: *mut u32,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn if_nametoindex(name: *const c_char) -> u32;
    }

    /// A bound, non-blocking `AF_PACKET` socket delivering whole L2
    /// frames from one interface.
    pub struct PacketSocket {
        fd: c_int,
        /// Cumulative kernel drop count observed so far; the kernel
        /// counter resets on every `PACKET_STATISTICS` read, so we
        /// accumulate here.
        drops: u64,
    }

    impl PacketSocket {
        /// Opens and binds a capture socket on `iface`.
        ///
        /// # Errors
        ///
        /// Fails without `CAP_NET_RAW`, on an unknown interface name,
        /// or on any underlying socket error.
        pub fn open(iface: &str) -> io::Result<PacketSocket> {
            let mut name: Vec<u8> = iface.as_bytes().to_vec();
            if name.contains(&0) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "interface name contains NUL",
                ));
            }
            name.push(0);
            let ifindex = unsafe { if_nametoindex(name.as_ptr() as *const c_char) };
            if ifindex == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no such interface: {iface}"),
                ));
            }
            let fd = unsafe { socket(AF_PACKET, SOCK_RAW, ETH_P_ALL_BE) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let addr = SockaddrLl {
                sll_family: AF_PACKET as u16,
                sll_protocol: ETH_P_ALL_BE as u16,
                sll_ifindex: ifindex as c_int,
                sll_hatype: 0,
                sll_pkttype: 0,
                sll_halen: 0,
                sll_addr: [0; 8],
            };
            let rc = unsafe {
                bind(fd, &addr, std::mem::size_of::<SockaddrLl>() as u32)
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                unsafe { close(fd) };
                return Err(err);
            }
            Ok(PacketSocket { fd, drops: 0 })
        }

        /// Receives one frame without blocking. `Ok(None)` means the
        /// ring is currently empty.
        ///
        /// # Errors
        ///
        /// Any `recv(2)` failure other than `EAGAIN`/`EINTR`.
        pub fn recv_frame(&self, buf: &mut [u8]) -> io::Result<Option<usize>> {
            let n = unsafe { recv(self.fd, buf.as_mut_ptr(), buf.len(), MSG_DONTWAIT) };
            if n < 0 {
                let err = io::Error::last_os_error();
                return match err.raw_os_error() {
                    Some(EAGAIN) => Ok(None),
                    _ if err.kind() == io::ErrorKind::Interrupted => Ok(None),
                    _ => Err(err),
                };
            }
            Ok(Some(n as usize))
        }

        /// Total frames the kernel dropped on this socket since open
        /// (ring overflow — the drop-accounting input for
        /// [`SourceStats::source_drops`](nettrace::source::SourceStats)).
        pub fn kernel_drops(&mut self) -> u64 {
            let mut stats = TpacketStats::default();
            let mut len = std::mem::size_of::<TpacketStats>() as u32;
            let rc = unsafe {
                getsockopt(self.fd, SOL_PACKET, PACKET_STATISTICS, &mut stats, &mut len)
            };
            if rc == 0 {
                self.drops += u64::from(stats.tp_drops);
            }
            self.drops
        }
    }

    impl Drop for PacketSocket {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readable_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        // Nothing pending yet: an immediate poll sees no readiness.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        let _client = TcpStream::connect(addr).unwrap();
        let ready = poll_fds(&mut fds, 2000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn poll_flags_negative_fd_as_ignored() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn termination_handler_installs_and_latch_reads_false() {
        let flag = install_termination_handler();
        // Installing must not spuriously latch.
        assert!(!flag.load(Ordering::SeqCst));
    }

    #[test]
    fn wall_clock_is_past_2020() {
        assert!(wall_clock() > 1.577e9);
    }
}
