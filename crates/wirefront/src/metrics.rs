//! Wire-ingress telemetry: one metric family per
//! [`SourceStats`] counter, plus a
//! per-reason family for PROXY-protocol handshake rejects.
//!
//! Counters are monotone and the source stats are cumulative, so the
//! recorder publishes *deltas* — it remembers the last stats it saw
//! and adds only the difference. The run loop can therefore call
//! [`WireMetrics::record`] every checkpoint without double-counting.

use std::collections::BTreeMap;

use nettrace::source::SourceStats;
use telemetry::{Counter, Registry};

/// Handles for the wire-ingress metric families.
pub struct WireMetrics {
    connections: Counter,
    bytes_in: Counter,
    transactions: Counter,
    tap_overflows: Counter,
    source_drops: Counter,
    /// `(reason slug, handle)` for each PROXY-protocol reject reason,
    /// in [`nettrace::proxyproto::ProxyProtoError::reasons`] order.
    proxyproto_rejects: Vec<(&'static str, Counter)>,
    last: SourceStats,
    last_rejects: BTreeMap<&'static str, u64>,
}

impl WireMetrics {
    /// Registers the wire metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        let proxyproto_rejects = nettrace::proxyproto::ProxyProtoError::reasons()
            .into_iter()
            .map(|reason| {
                let counter = registry.counter(
                    &format!("wire_proxyproto_reject_{reason}_total"),
                    "Connections rejected at the PROXY-protocol handshake, by reason",
                );
                (reason, counter)
            })
            .collect();
        WireMetrics {
            connections: registry
                .counter("wire_connections_total", "Connections (or capture flows) observed"),
            bytes_in: registry
                .counter("wire_bytes_in_total", "Application-layer bytes taken off the wire"),
            transactions: registry
                .counter("wire_transactions_total", "Transactions emitted by the wire source"),
            tap_overflows: registry.counter(
                "wire_tap_overflows_total",
                "Connections whose observation was abandoned on a full tap buffer",
            ),
            source_drops: registry.counter(
                "wire_source_drops_total",
                "Input units lost before HTTP parsing (kernel drops, rejected connections)",
            ),
            proxyproto_rejects,
            last: SourceStats::default(),
            last_rejects: BTreeMap::new(),
        }
    }

    /// Publishes the delta between `stats` and the last recorded stats.
    pub fn record(&mut self, stats: &SourceStats) {
        self.connections.add(stats.connections.saturating_sub(self.last.connections));
        self.bytes_in.add(stats.bytes_in.saturating_sub(self.last.bytes_in));
        self.transactions.add(stats.transactions.saturating_sub(self.last.transactions));
        self.tap_overflows.add(stats.tap_overflows.saturating_sub(self.last.tap_overflows));
        self.source_drops.add(stats.source_drops.saturating_sub(self.last.source_drops));
        self.last = *stats;
    }

    /// Publishes the delta of the per-reason PROXY reject counters
    /// (keys are the slugs from
    /// [`ProxyProtoError::reasons`](nettrace::proxyproto::ProxyProtoError::reasons)).
    pub fn record_rejects(&mut self, rejects: &BTreeMap<&'static str, u64>) {
        for (reason, counter) in &self.proxyproto_rejects {
            let now = rejects.get(reason).copied().unwrap_or(0);
            let then = self.last_rejects.get(reason).copied().unwrap_or(0);
            counter.add(now.saturating_sub(then));
        }
        self.last_rejects = rejects.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_value(registry: &Registry, name: &str) -> u64 {
        registry.snapshot().counters.get(name).copied().unwrap_or(u64::MAX)
    }

    #[test]
    fn record_publishes_deltas_not_totals() {
        let registry = Registry::new();
        let mut metrics = WireMetrics::new(&registry);
        let first = SourceStats {
            bytes_in: 100,
            transactions: 3,
            connections: 2,
            tap_overflows: 1,
            source_drops: 0,
        };
        metrics.record(&first);
        // Recording the same cumulative stats again must not double.
        metrics.record(&first);
        assert_eq!(counter_value(&registry, "wire_bytes_in_total"), 100);
        assert_eq!(counter_value(&registry, "wire_transactions_total"), 3);
        assert_eq!(counter_value(&registry, "wire_connections_total"), 2);
        assert_eq!(counter_value(&registry, "wire_tap_overflows_total"), 1);

        let second = SourceStats { bytes_in: 150, transactions: 5, ..first };
        metrics.record(&second);
        assert_eq!(counter_value(&registry, "wire_bytes_in_total"), 150);
        assert_eq!(counter_value(&registry, "wire_transactions_total"), 5);
    }

    #[test]
    fn reject_counters_exist_per_reason_and_take_deltas() {
        let registry = Registry::new();
        let mut metrics = WireMetrics::new(&registry);
        let mut rejects: BTreeMap<&'static str, u64> = BTreeMap::new();
        rejects.insert("malformed", 2);
        metrics.record_rejects(&rejects);
        metrics.record_rejects(&rejects);
        assert_eq!(counter_value(&registry, "wire_proxyproto_reject_malformed_total"), 2);
        // Every reason slug has a family, even at zero.
        for reason in nettrace::proxyproto::ProxyProtoError::reasons() {
            let name = format!("wire_proxyproto_reject_{reason}_total");
            assert_ne!(counter_value(&registry, &name), u64::MAX, "missing family {name}");
        }
    }
}
