//! The inline HTTP forward proxy: a poll(2)-friendly, non-blocking
//! relay that forwards client connections to an origin while a
//! [`ConnectionTap`] observes both directions and synthesizes
//! [`HttpTransaction`]s for the stream engine.
//!
//! # Address fidelity
//!
//! With `proxy_protocol` enabled the source parses a HAProxy
//! PROXY-protocol v1/v2 preamble on every accepted connection
//! (fail-closed: a bad header drops the connection and bumps a
//! per-reason reject counter) and uses the *relayed* client/server
//! endpoints for the synthesized transactions. Shard partitioning and
//! conversation tracking key on the client address, so traffic that
//! crosses a load balancer keeps its true client identity.
//!
//! # Backpressure
//!
//! Relay buffers are bounded and never drop real traffic — a full
//! relay buffer simply stops socket reads, which is TCP backpressure.
//! The *observation* buffers (the tap) follow the engine's
//! [`BackpressurePolicy`] vocabulary:
//!
//! * [`BackpressurePolicy::Block`] — socket reads are additionally
//!   gated on tap free space, so the peer is slowed down until the
//!   parser catches up and a parseable message is never dropped. The
//!   only way to overflow is a single HTTP message larger than the tap
//!   buffer, which abandons observation of that connection (relay
//!   continues; counted in `tap_overflows`).
//! * [`BackpressurePolicy::DropNewest`] — reads run at line rate and
//!   the tap is allowed to overflow, trading observation completeness
//!   for zero added latency.
//!
//! # Blocking caveat
//!
//! The origin connect (`TcpStream::connect_timeout`) is the one
//! blocking call in the pump path; a slow or blackholed origin can
//! stall a work slice for up to `connect_timeout`. Everything else —
//! accept, reads, writes, PROXY-header parsing — is non-blocking.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

use nettrace::proxyproto::{self, ProxyHeader};
use nettrace::reassembly::Endpoint;
use nettrace::source::{PumpOutcome, SourceStats, TrafficSource};
use nettrace::wiretap::{ConnectionTap, TapConfig, TapDir};
use nettrace::{Error, HttpTransaction, IngestReport};
use streamd::BackpressurePolicy;

use crate::sys::{self, PollFd, POLLIN, POLLOUT};

/// Socket read size per call.
const READ_CHUNK: usize = 16 * 1024;
/// Bound on each per-connection relay (forwarding) buffer. Reads stop
/// when the peer's write side is this far behind — TCP backpressure,
/// never a drop.
const RELAY_BUF_CAP: usize = 64 * 1024;
/// Bytes a PROXY-protocol preamble may occupy before the connection is
/// rejected as oversized (the parser's own caps are tighter; this is
/// the buffering bound).
const HANDSHAKE_CAP: usize = proxyproto::V2_MAX_LEN + 64;
/// Reads per direction per pump slice, bounding one connection's share
/// of a work slice.
const READS_PER_SLICE: usize = 4;

/// Proxy tuning knobs.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Where accepted connections are forwarded.
    pub origin: SocketAddr,
    /// Require and parse a PROXY-protocol v1/v2 preamble on every
    /// connection (fail-closed on anything malformed).
    pub proxy_protocol: bool,
    /// Per-connection observation buffers (and the `X-Replay-Ts`
    /// trust switch — loopback parity harnesses only).
    pub tap: TapConfig,
    /// Observation backpressure (see module docs); relayed traffic is
    /// never dropped under either policy.
    pub policy: BackpressurePolicy,
    /// Accepted connections beyond this are closed immediately and
    /// counted as `source_drops`.
    pub max_connections: usize,
    /// Bound on the (blocking) origin connect.
    pub connect_timeout: Duration,
}

impl ProxyConfig {
    /// Defaults for forwarding to `origin`: no PROXY protocol, 1 MiB
    /// taps, `Block` observation backpressure, 1024 connections.
    pub fn new(origin: SocketAddr) -> Self {
        ProxyConfig {
            origin,
            proxy_protocol: false,
            tap: TapConfig::default(),
            policy: BackpressurePolicy::Block,
            max_connections: 1024,
            connect_timeout: Duration::from_secs(3),
        }
    }
}

/// Connection lifecycle.
enum ConnState {
    /// Accumulating the PROXY-protocol preamble.
    Handshake(Vec<u8>),
    /// Forwarding bytes; the tap observes both directions.
    Relay(Box<Relay>),
}

/// An established relay: origin socket, tap, and per-direction
/// forwarding buffers.
struct Relay {
    origin: TcpStream,
    tap: ConnectionTap,
    to_origin: Vec<u8>,
    to_client: Vec<u8>,
    client_eof: bool,
    origin_eof: bool,
    client_wr_shut: bool,
    origin_wr_shut: bool,
    overflow_counted: bool,
}

struct Conn {
    client: TcpStream,
    peer: SocketAddr,
    state: ConnState,
    dead: bool,
}

/// The inline forward proxy as a [`TrafficSource`].
pub struct ProxySource {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ProxyConfig,
    conns: Vec<Conn>,
    accepting: bool,
    stats: SourceStats,
    report: IngestReport,
    rejects: BTreeMap<&'static str, u64>,
    scratch: Vec<u8>,
}

/// Best-effort IPv4 view of a socket address (IPv6 peers keep their
/// port under the unspecified address; the engine is IPv4-keyed).
fn v4_endpoint(addr: SocketAddr) -> Endpoint {
    match addr {
        SocketAddr::V4(v4) => Endpoint::new(*v4.ip(), v4.port()),
        SocketAddr::V6(v6) => Endpoint::new(Ipv4Addr::UNSPECIFIED, v6.port()),
    }
}

/// True for errors that mean "this peer is gone", which the relay
/// treats as end-of-stream so the tap still flushes.
fn is_disconnect(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

impl ProxySource {
    /// Binds the listening socket and prepares the source. With
    /// `proxy_protocol` on, every connection must start with a valid
    /// v1/v2 preamble.
    ///
    /// # Errors
    ///
    /// Any bind/listen failure.
    pub fn bind(listen: SocketAddr, config: ProxyConfig) -> io::Result<ProxySource> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let rejects =
            proxyproto::ProxyProtoError::reasons().iter().map(|r| (*r, 0u64)).collect();
        Ok(ProxySource {
            listener,
            local_addr,
            config,
            conns: Vec::new(),
            accepting: true,
            stats: SourceStats::default(),
            report: IngestReport::new(),
            rejects,
            scratch: vec![0; READ_CHUNK],
        })
    }

    /// The bound listening address (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently open through the proxy.
    pub fn active_connections(&self) -> usize {
        self.conns.len()
    }

    /// PROXY-protocol rejections so far, by reason slug.
    pub fn proxyproto_rejects(&self) -> &BTreeMap<&'static str, u64> {
        &self.rejects
    }

    /// Accepts pending connections (non-blocking). Returns whether any
    /// arrived.
    fn accept_pending(&mut self, out: &mut Vec<HttpTransaction>) -> nettrace::Result<bool> {
        let mut progress = false;
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    progress = true;
                    if self.conns.len() >= self.config.max_connections {
                        self.stats.source_drops += 1;
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.source_drops += 1;
                        continue;
                    }
                    self.stats.connections += 1;
                    let mut conn = Conn {
                        client: stream,
                        peer,
                        state: ConnState::Handshake(Vec::new()),
                        dead: false,
                    };
                    if !self.config.proxy_protocol {
                        let client_ep = v4_endpoint(peer);
                        let server_ep = v4_endpoint(self.config.origin);
                        open_relay(
                            &self.config,
                            &mut self.stats,
                            &mut self.report,
                            &mut conn,
                            client_ep,
                            server_ep,
                            &[],
                            out,
                        );
                    }
                    if !conn.dead {
                        self.conns.push(conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::Io(e)),
            }
        }
        Ok(progress)
    }

    /// Advances one connection still reading its PROXY preamble.
    fn advance_handshake(&mut self, idx: usize, out: &mut Vec<HttpTransaction>) -> bool {
        let mut progress = false;
        loop {
            let conn = &mut self.conns[idx];
            let ConnState::Handshake(buf) = &mut conn.state else { return progress };
            let mut chunk = [0u8; 512];
            match conn.client.read(&mut chunk) {
                Ok(0) => {
                    // Preamble never completed: fail closed.
                    *self.rejects.entry("malformed").or_insert(0) += 1;
                    self.stats.source_drops += 1;
                    conn.dead = true;
                    return true;
                }
                Ok(n) => {
                    progress = true;
                    buf.extend_from_slice(&chunk[..n]);
                    match proxyproto::parse_proxy_header(buf) {
                        Ok(Some((header, consumed))) => {
                            let leftover = buf[consumed..].to_vec();
                            let client_ep = header
                                .client_v4()
                                .map(|(a, p)| Endpoint::new(a, p))
                                .unwrap_or_else(|| v4_endpoint(conn.peer));
                            let server_ep = match &header {
                                ProxyHeader::Tcp4 { dst, .. } => Endpoint::new(dst.0, dst.1),
                                _ => v4_endpoint(self.config.origin),
                            };
                            open_relay(
                                &self.config,
                                &mut self.stats,
                                &mut self.report,
                                conn,
                                client_ep,
                                server_ep,
                                &leftover,
                                out,
                            );
                            return true;
                        }
                        Ok(None) => {
                            if buf.len() >= HANDSHAKE_CAP {
                                *self.rejects.entry("oversized").or_insert(0) += 1;
                                self.stats.source_drops += 1;
                                conn.dead = true;
                                return true;
                            }
                        }
                        Err(e) => {
                            *self.rejects.entry(e.reason()).or_insert(0) += 1;
                            self.stats.source_drops += 1;
                            conn.dead = true;
                            return true;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stats.source_drops += 1;
                    conn.dead = true;
                    return true;
                }
            }
        }
    }

    /// Advances one established relay. Returns whether bytes moved.
    fn advance_relay(&mut self, idx: usize, out: &mut Vec<HttpTransaction>) -> bool {
        let gate = matches!(self.config.policy, BackpressurePolicy::Block);
        let ts = sys::wall_clock();
        let conn = &mut self.conns[idx];
        let ConnState::Relay(relay) = &mut conn.state else { return false };
        let r = &mut **relay;
        let mut progress = false;

        // Client → origin.
        progress |= pump_direction(
            &mut conn.client,
            &mut r.client_eof,
            &mut r.origin,
            &mut r.origin_wr_shut,
            &mut r.to_origin,
            &mut r.tap,
            TapDir::Request,
            gate,
            &mut self.scratch,
            &mut self.stats,
            &mut self.report,
            out,
            ts,
        );
        // Origin → client.
        progress |= pump_direction(
            &mut r.origin,
            &mut r.origin_eof,
            &mut conn.client,
            &mut r.client_wr_shut,
            &mut r.to_client,
            &mut r.tap,
            TapDir::Response,
            gate,
            &mut self.scratch,
            &mut self.stats,
            &mut self.report,
            out,
            ts,
        );
        if r.tap.overflowed() && !r.overflow_counted {
            r.overflow_counted = true;
            self.stats.tap_overflows += 1;
        }
        if r.client_eof && r.origin_eof && r.to_origin.is_empty() && r.to_client.is_empty() {
            r.tap.close(&mut self.report, out);
            conn.dead = true;
            progress = true;
        }
        progress
    }

    /// Drops dead connections (their taps were already closed or never
    /// opened).
    fn reap(&mut self) {
        self.conns.retain(|c| !c.dead);
    }
}

/// Dials the origin and installs the relay state for one accepted
/// connection. `leftover` is any client bytes that followed the PROXY
/// preamble in the same read. A failed origin connect kills the
/// connection and counts a `source_drop`.
#[allow(clippy::too_many_arguments)]
fn open_relay(
    config: &ProxyConfig,
    stats: &mut SourceStats,
    report: &mut IngestReport,
    conn: &mut Conn,
    client_ep: Endpoint,
    server_ep: Endpoint,
    leftover: &[u8],
    out: &mut Vec<HttpTransaction>,
) {
    let origin = match TcpStream::connect_timeout(&config.origin, config.connect_timeout) {
        Ok(s) => s,
        Err(_) => {
            stats.source_drops += 1;
            conn.dead = true;
            return;
        }
    };
    let _ = origin.set_nonblocking(true);
    let _ = origin.set_nodelay(true);
    let _ = conn.client.set_nodelay(true);
    let mut relay = Box::new(Relay {
        origin,
        tap: ConnectionTap::new(client_ep, server_ep, config.tap),
        to_origin: Vec::new(),
        to_client: Vec::new(),
        client_eof: false,
        origin_eof: false,
        client_wr_shut: false,
        origin_wr_shut: false,
        overflow_counted: false,
    });
    if !leftover.is_empty() {
        stats.bytes_in += leftover.len() as u64;
        relay.tap.offer(TapDir::Request, leftover, sys::wall_clock(), report, out);
        relay.to_origin.extend_from_slice(leftover);
    }
    conn.state = ConnState::Relay(relay);
}

/// Moves bytes one direction: socket reads (tap-gated under `Block`),
/// tap observation, relay-buffer writes, and the half-close once the
/// reader hit EOF and the buffer drained. Returns whether anything
/// moved. Hard I/O failures degrade to EOF so the tap still flushes.
#[allow(clippy::too_many_arguments)]
fn pump_direction(
    from: &mut TcpStream,
    from_eof: &mut bool,
    to: &mut TcpStream,
    to_wr_shut: &mut bool,
    relay_buf: &mut Vec<u8>,
    tap: &mut ConnectionTap,
    dir: TapDir,
    gate_on_tap: bool,
    scratch: &mut [u8],
    stats: &mut SourceStats,
    report: &mut IngestReport,
    out: &mut Vec<HttpTransaction>,
    ts: f64,
) -> bool {
    let mut progress = false;
    for _ in 0..READS_PER_SLICE {
        if *from_eof {
            break;
        }
        let headroom = RELAY_BUF_CAP.saturating_sub(relay_buf.len());
        if headroom == 0 {
            break;
        }
        let mut want = headroom.min(READ_CHUNK);
        if gate_on_tap {
            let free = tap.free_space(dir);
            // free == 0 means a message is stuck mid-parse on a full
            // buffer and can never complete: offer one more burst so
            // the tap abandons observation instead of deadlocking.
            if free > 0 && free != usize::MAX {
                want = want.min(free);
            }
        }
        match from.read(&mut scratch[..want]) {
            Ok(0) => {
                *from_eof = true;
                progress = true;
            }
            Ok(n) => {
                progress = true;
                stats.bytes_in += n as u64;
                tap.offer(dir, &scratch[..n], ts, report, out);
                relay_buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_disconnect(&e) => {
                *from_eof = true;
                progress = true;
            }
            Err(_) => {
                *from_eof = true;
                progress = true;
            }
        }
    }
    // Drain the relay buffer into the peer.
    while !relay_buf.is_empty() {
        match to.write(relay_buf) {
            Ok(0) => break,
            Ok(n) => {
                relay_buf.drain(..n);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Peer is gone: forwarding this direction is over.
                relay_buf.clear();
                *to_wr_shut = true;
                progress = true;
                break;
            }
        }
    }
    if *from_eof && relay_buf.is_empty() && !*to_wr_shut {
        let _ = to.shutdown(Shutdown::Write);
        *to_wr_shut = true;
        progress = true;
    }
    progress
}

impl TrafficSource for ProxySource {
    fn pump(&mut self, out: &mut Vec<HttpTransaction>) -> nettrace::Result<PumpOutcome> {
        if !self.accepting && self.conns.is_empty() {
            return Ok(PumpOutcome::Exhausted);
        }
        let before = out.len();
        let mut progress = self.accept_pending(out)?;
        for idx in 0..self.conns.len() {
            if self.conns[idx].dead {
                continue;
            }
            progress |= match self.conns[idx].state {
                ConnState::Handshake(_) => self.advance_handshake(idx, out),
                ConnState::Relay(_) => self.advance_relay(idx, out),
            };
        }
        self.reap();
        self.stats.transactions += (out.len() - before) as u64;
        if progress {
            Ok(PumpOutcome::Progress)
        } else if !self.accepting && self.conns.is_empty() {
            Ok(PumpOutcome::Exhausted)
        } else {
            Ok(PumpOutcome::Idle)
        }
    }

    fn shutdown(&mut self, out: &mut Vec<HttpTransaction>) {
        if !self.accepting && self.conns.is_empty() {
            return;
        }
        self.accepting = false;
        let before = out.len();
        // One last non-blocking sweep drains whatever the kernel
        // already buffered, then every tap flushes with end-of-stream
        // semantics (status-0 for unanswered requests).
        for idx in 0..self.conns.len() {
            if self.conns[idx].dead {
                continue;
            }
            match self.conns[idx].state {
                ConnState::Handshake(_) => {
                    self.advance_handshake(idx, out);
                }
                ConnState::Relay(_) => {
                    self.advance_relay(idx, out);
                }
            }
        }
        for conn in &mut self.conns {
            if let ConnState::Relay(relay) = &mut conn.state {
                relay.tap.close(&mut self.report, out);
            }
        }
        self.conns.clear();
        self.stats.transactions += (out.len() - before) as u64;
    }

    fn stats(&self) -> SourceStats {
        self.stats
    }

    fn ingest_report(&self) -> IngestReport {
        let mut report = IngestReport::new();
        report.merge(&self.report);
        report
    }

    fn wait(&mut self, ms: u32) {
        let mut fds = Vec::with_capacity(1 + self.conns.len() * 2);
        if self.accepting {
            fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        }
        for conn in &self.conns {
            match &conn.state {
                ConnState::Handshake(_) => {
                    fds.push(PollFd::new(conn.client.as_raw_fd(), POLLIN));
                }
                ConnState::Relay(relay) => {
                    let mut client_ev = 0i16;
                    if !relay.client_eof && relay.to_origin.len() < RELAY_BUF_CAP {
                        client_ev |= POLLIN;
                    }
                    if !relay.to_client.is_empty() {
                        client_ev |= POLLOUT;
                    }
                    if client_ev != 0 {
                        fds.push(PollFd::new(conn.client.as_raw_fd(), client_ev));
                    }
                    let mut origin_ev = 0i16;
                    if !relay.origin_eof && relay.to_client.len() < RELAY_BUF_CAP {
                        origin_ev |= POLLIN;
                    }
                    if !relay.to_origin.is_empty() {
                        origin_ev |= POLLOUT;
                    }
                    if origin_ev != 0 {
                        fds.push(PollFd::new(relay.origin.as_raw_fd(), origin_ev));
                    }
                }
            }
        }
        if fds.is_empty() {
            std::thread::sleep(Duration::from_millis(u64::from(ms)));
            return;
        }
        let _ = sys::poll_fds(&mut fds, ms as i32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;
    use std::sync::mpsc;
    use std::thread;

    const REQUEST: &[u8] = b"GET /landing HTTP/1.1\r\nHost: example.test\r\n\r\n";

    fn canned_response(body_len: usize) -> Vec<u8> {
        let mut resp = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {body_len}\r\n\r\n"
        )
        .into_bytes();
        resp.extend(std::iter::repeat_n(b'x', body_len));
        resp
    }

    /// A one-connection origin: reads a request head, then writes
    /// `resp` — or, when `hold` is given, withholds the response until
    /// the channel fires (for mid-stream shutdown tests).
    fn one_shot_origin(
        resp: Vec<u8>,
        hold: Option<mpsc::Receiver<()>>,
    ) -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let Ok((mut sock, _)) = listener.accept() else { return };
            sock.set_read_timeout(Some(Duration::from_secs(5))).ok();
            let mut head = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                match sock.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        head.extend_from_slice(&buf[..n]);
                        if head.windows(4).any(|w| w == b"\r\n\r\n") {
                            break;
                        }
                    }
                }
            }
            if let Some(rx) = hold {
                let _ = rx.recv_timeout(Duration::from_secs(10));
                return;
            }
            let _ = sock.write_all(&resp);
        });
        (addr, handle)
    }

    fn bind_proxy(config: ProxyConfig) -> ProxySource {
        ProxySource::bind("127.0.0.1:0".parse().unwrap(), config).unwrap()
    }

    fn pump_until(
        src: &mut ProxySource,
        out: &mut Vec<HttpTransaction>,
        mut done: impl FnMut(&ProxySource, &[HttpTransaction]) -> bool,
    ) {
        for _ in 0..5_000 {
            if done(src, out) {
                return;
            }
            src.pump(out).expect("pump");
            thread::sleep(Duration::from_millis(1));
        }
        panic!("pump condition never reached");
    }

    /// Pumps the proxy while draining the client socket, until `want`
    /// response bytes (then EOF tolerated) have arrived.
    fn relay_read(
        src: &mut ProxySource,
        out: &mut Vec<HttpTransaction>,
        client: &mut TcpStream,
        want: usize,
    ) -> Vec<u8> {
        client.set_nonblocking(true).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 4096];
        for _ in 0..5_000 {
            src.pump(out).expect("pump");
            match client.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) => panic!("client read: {e}"),
            }
            if got.len() >= want {
                return got;
            }
            thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn relays_one_transaction_and_taps_it() {
        let resp = canned_response(5);
        let (origin, origin_thread) = one_shot_origin(resp.clone(), None);
        let mut src = bind_proxy(ProxyConfig::new(origin));
        let mut out = Vec::new();

        let mut client = TcpStream::connect(src.local_addr()).unwrap();
        client.write_all(REQUEST).unwrap();
        let got = relay_read(&mut src, &mut out, &mut client, resp.len());
        assert_eq!(got, resp, "relay altered the bytes");

        drop(client);
        pump_until(&mut src, &mut out, |s, _| s.active_connections() == 0);
        origin_thread.join().unwrap();

        assert_eq!(out.len(), 1);
        let tx = &out[0];
        assert_eq!(tx.host, "example.test");
        assert_eq!(tx.uri, "/landing");
        assert_eq!(tx.status, 200);
        assert_eq!(src.stats().transactions, 1);
        assert_eq!(src.stats().connections, 1);
        assert_eq!(src.stats().source_drops, 0);
    }

    #[test]
    fn proxy_protocol_v1_preserves_client_endpoint() {
        let resp = canned_response(5);
        let (origin, origin_thread) = one_shot_origin(resp.clone(), None);
        let mut config = ProxyConfig::new(origin);
        config.proxy_protocol = true;
        let mut src = bind_proxy(config);
        let mut out = Vec::new();

        let true_client = (Ipv4Addr::new(198, 51, 100, 7), 40001u16);
        let true_server = (Ipv4Addr::new(203, 0, 113, 9), 80u16);
        let mut client = TcpStream::connect(src.local_addr()).unwrap();
        client.write_all(&proxyproto::encode_v1_tcp4(true_client, true_server)).unwrap();
        client.write_all(REQUEST).unwrap();
        let got = relay_read(&mut src, &mut out, &mut client, resp.len());
        assert_eq!(got, resp, "PROXY preamble leaked into the relay");

        drop(client);
        pump_until(&mut src, &mut out, |s, _| s.active_connections() == 0);
        origin_thread.join().unwrap();

        assert_eq!(out.len(), 1);
        let tx = &out[0];
        assert_eq!((tx.client.addr, tx.client.port), true_client);
        assert_eq!((tx.server.addr, tx.server.port), true_server);
    }

    #[test]
    fn malformed_proxy_preamble_fails_closed() {
        let (origin, origin_thread) = one_shot_origin(Vec::new(), None);
        let mut config = ProxyConfig::new(origin);
        config.proxy_protocol = true;
        let mut src = bind_proxy(config);
        let mut out = Vec::new();

        let mut client = TcpStream::connect(src.local_addr()).unwrap();
        // Plain HTTP where a PROXY preamble is required.
        client.write_all(REQUEST).unwrap();
        pump_until(&mut src, &mut out, |s, _| s.stats().source_drops >= 1);
        pump_until(&mut src, &mut out, |s, _| s.active_connections() == 0);

        assert_eq!(src.proxyproto_rejects().get("bad_signature").copied(), Some(1));
        assert_eq!(src.stats().source_drops, 1);
        // The TCP connection itself was observed; the drop counter
        // records that it produced nothing.
        assert_eq!(src.stats().connections, 1);
        assert!(out.is_empty());

        // The client side was closed, not forwarded.
        client.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(client.read(&mut buf), Ok(0) | Err(_)));
        drop(client);
        // Unblock the origin thread (it never saw a connection).
        TcpStream::connect(origin).unwrap();
        origin_thread.join().unwrap();
    }

    #[test]
    fn shutdown_mid_stream_flushes_unanswered_request() {
        let (release_tx, release_rx) = mpsc::channel();
        let (origin, origin_thread) = one_shot_origin(Vec::new(), Some(release_rx));
        let mut src = bind_proxy(ProxyConfig::new(origin));
        let mut out = Vec::new();

        let mut client = TcpStream::connect(src.local_addr()).unwrap();
        client.write_all(REQUEST).unwrap();
        pump_until(&mut src, &mut out, |s, _| s.stats().bytes_in >= REQUEST.len() as u64);

        src.shutdown(&mut out);
        assert_eq!(src.active_connections(), 0);
        assert_eq!(out.len(), 1, "in-flight request must drain on shutdown");
        assert_eq!(out[0].host, "example.test");
        assert_eq!(out[0].status, 0, "unanswered request carries status 0");
        assert_eq!(src.stats().transactions, 1);

        release_tx.send(()).ok();
        drop(client);
        origin_thread.join().unwrap();
    }

    #[test]
    fn drop_newest_overflow_keeps_relay_intact() {
        let resp = canned_response(8 * 1024);
        let (origin, origin_thread) = one_shot_origin(resp.clone(), None);
        let mut config = ProxyConfig::new(origin);
        config.policy = BackpressurePolicy::DropNewest;
        config.tap = TapConfig { capacity: 512, honor_replay_ts: false };
        let mut src = bind_proxy(config);
        let mut out = Vec::new();

        let mut client = TcpStream::connect(src.local_addr()).unwrap();
        client.write_all(REQUEST).unwrap();
        let got = relay_read(&mut src, &mut out, &mut client, resp.len());
        assert_eq!(got.len(), resp.len(), "overflow must not cost relayed bytes");
        assert_eq!(got, resp);

        drop(client);
        pump_until(&mut src, &mut out, |s, _| s.active_connections() == 0);
        origin_thread.join().unwrap();

        assert_eq!(src.stats().tap_overflows, 1, "abandoned observation goes uncounted");
        assert!(out.is_empty(), "observation was abandoned, not salvaged");
    }
}
