//! The live-capture traffic source: packets in, transactions out.
//!
//! Two backends sit behind one [`CaptureSource`]:
//!
//! * **pcap tail** (portable, the testable path) — follows a classic
//!   libpcap file as it grows, `tail -f` style: partial records at the
//!   current end of file are retried on the next pump, so a capture
//!   being written by another process streams through incrementally.
//! * **`AF_PACKET`** (Linux, compile-gated, requires `CAP_NET_RAW`) —
//!   a non-blocking raw socket bound to one interface, with kernel
//!   ring-drop accounting folded into `source_drops`.
//!
//! Both feed the same flow table: TCP segments are delivered in-order
//! per direction (a bounded out-of-order buffer absorbs reordering;
//! overflow and unfillable gaps count as `source_drops`) into a
//! [`ConnectionTap`] per flow, which synthesizes transactions through
//! the same lenient span pipeline as offline ingest. A BPF-style port
//! filter keeps non-web flows out of the taps entirely.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Read;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

use nettrace::reassembly::Endpoint;
use nettrace::source::{PumpOutcome, SourceStats, TrafficSource};
use nettrace::wiretap::{ConnectionTap, TapConfig, TapDir};
use nettrace::{ether, ipv4, pcap, tcp, Error, HttpTransaction, IngestReport};

use crate::sys;

/// Frames handled per pump slice, bounding one slice's work.
const FRAMES_PER_SLICE: usize = 256;
/// Out-of-order segments buffered per flow direction before the oldest
/// is dropped.
const MAX_OOO_SEGMENTS: usize = 64;
/// pcap global header length.
const PCAP_HEADER_LEN: usize = 24;
/// pcap per-record header length.
const PCAP_RECORD_LEN: usize = 16;
/// Nanosecond-resolution pcap magic (little-endian writers).
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;

/// Capture tuning knobs.
#[derive(Debug, Clone)]
pub struct CaptureConfig {
    /// Flows are admitted only when either endpoint's port is listed
    /// (BPF-style `port A or port B` filtering). Empty admits all.
    pub ports: Vec<u16>,
    /// Per-flow observation buffers.
    pub tap: TapConfig,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig { ports: vec![80], tap: TapConfig::default() }
    }
}

/// One direction's in-order delivery state.
#[derive(Default)]
struct DirState {
    /// Next expected TCP sequence number; `None` until the first
    /// segment (or SYN) fixes the origin.
    next_seq: Option<u32>,
    /// Out-of-order segments keyed by sequence number, bounded.
    ooo: BTreeMap<u32, Vec<u8>>,
    fin: bool,
}

/// One observed TCP flow.
struct Flow {
    tap: ConnectionTap,
    client: Endpoint,
    c2s: DirState,
    s2c: DirState,
}

/// Canonical (order-independent) flow key.
type FlowKey = ((Ipv4Addr, u16), (Ipv4Addr, u16));

fn flow_key(a: Endpoint, b: Endpoint) -> FlowKey {
    let ka = (a.addr, a.port);
    let kb = (b.addr, b.port);
    if ka <= kb {
        (ka, kb)
    } else {
        (kb, ka)
    }
}

/// Incremental pcap-file reader state.
struct PcapTail {
    file: File,
    path: PathBuf,
    /// Unconsumed bytes (tail may end mid-record).
    pending: Vec<u8>,
    /// Parsed the 24-byte global header yet?
    header_done: bool,
    /// Sub-second field scale (1e-6 for usec captures, 1e-9 for nsec),
    /// applied by *multiplication* — the identical arithmetic to
    /// [`nettrace::pcap`]'s reader, so a tailed capture yields
    /// bit-identical timestamps to offline extraction.
    ts_scale: f64,
    /// Keep polling for growth after EOF (`tail -f`), or report
    /// [`PumpOutcome::Exhausted`] once the file is drained.
    follow: bool,
}

enum Backend {
    PcapTail(PcapTail),
    #[cfg(target_os = "linux")]
    Live { socket: sys::packet::PacketSocket, iface: String },
}

/// Packet capture as a [`TrafficSource`].
pub struct CaptureSource {
    backend: Backend,
    config: CaptureConfig,
    flows: BTreeMap<FlowKey, Flow>,
    stats: SourceStats,
    report: IngestReport,
    shut: bool,
}

impl CaptureSource {
    /// Opens a pcap file source. With `follow` the source tails the
    /// file indefinitely (a capture being written live); without it
    /// the source is exhausted at end of file.
    ///
    /// # Errors
    ///
    /// Only an unopenable file; damaged records are absorbed into the
    /// ingest report during pumping.
    pub fn pcap_file(path: &Path, follow: bool, config: CaptureConfig) -> std::io::Result<Self> {
        let file = File::open(path)?;
        Ok(CaptureSource {
            backend: Backend::PcapTail(PcapTail {
                file,
                path: path.to_path_buf(),
                pending: Vec::new(),
                header_done: false,
                ts_scale: 1e-6,
                follow,
            }),
            config,
            flows: BTreeMap::new(),
            stats: SourceStats::default(),
            report: IngestReport::new(),
            shut: false,
        })
    }

    /// Opens a live `AF_PACKET` source on `iface` (Linux only;
    /// requires `CAP_NET_RAW` at runtime).
    ///
    /// # Errors
    ///
    /// Missing capability, unknown interface, or socket failure.
    #[cfg(target_os = "linux")]
    pub fn live(iface: &str, config: CaptureConfig) -> std::io::Result<Self> {
        let socket = sys::packet::PacketSocket::open(iface)?;
        Ok(CaptureSource {
            backend: Backend::Live { socket, iface: iface.to_string() },
            config,
            flows: BTreeMap::new(),
            stats: SourceStats::default(),
            report: IngestReport::new(),
            shut: false,
        })
    }

    /// Flows currently tracked.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Parses one captured frame down to TCP and routes it to its
    /// flow. Non-IPv4/non-TCP frames are skipped silently (they are
    /// not losses); filtered-out ports never create flows.
    fn handle_frame(&mut self, ts: f64, frame: &[u8], out: &mut Vec<HttpTransaction>) {
        self.report.packets_read += 1;
        let Ok(eth) = ether::EtherFrame::parse(frame) else {
            self.report.packets_dropped_decode += 1;
            return;
        };
        if eth.ethertype != ether::ETHERTYPE_IPV4 {
            self.report.packets_non_tcp += 1;
            return;
        }
        let Ok(ip) = ipv4::Ipv4Packet::parse(eth.payload) else {
            self.report.packets_dropped_decode += 1;
            return;
        };
        if ip.protocol != ipv4::PROTO_TCP {
            self.report.packets_non_tcp += 1;
            return;
        }
        let Ok(seg) = tcp::TcpSegment::parse(ip.payload) else {
            self.report.packets_dropped_decode += 1;
            return;
        };
        let src = Endpoint::new(ip.src, seg.src_port);
        let dst = Endpoint::new(ip.dst, seg.dst_port);
        if !self.config.ports.is_empty()
            && !self.config.ports.contains(&src.port)
            && !self.config.ports.contains(&dst.port)
        {
            return;
        }
        let key = flow_key(src, dst);
        let flow = match self.flows.get_mut(&key) {
            Some(f) => f,
            None => {
                // First packet decides direction: a bare SYN is the
                // client; otherwise whoever is talking *to* a filtered
                // port; otherwise the first speaker.
                let client_is_src = if seg.flags.syn && !seg.flags.ack {
                    true
                } else if !self.config.ports.is_empty() {
                    self.config.ports.contains(&dst.port)
                } else {
                    true
                };
                let (client, server) = if client_is_src { (src, dst) } else { (dst, src) };
                self.stats.connections += 1;
                self.flows.entry(key).or_insert(Flow {
                    tap: ConnectionTap::new(client, server, self.config.tap),
                    client,
                    c2s: DirState::default(),
                    s2c: DirState::default(),
                })
            }
        };
        let from_client = src == flow.client;
        let dir = if from_client { TapDir::Request } else { TapDir::Response };
        let state = if from_client { &mut flow.c2s } else { &mut flow.s2c };
        if seg.flags.syn {
            state.next_seq = Some(seg.seq.wrapping_add(1));
        }
        if !seg.payload.is_empty() {
            deliver_in_order(
                state,
                seg.seq,
                seg.payload,
                &mut flow.tap,
                dir,
                ts,
                &mut self.stats,
                &mut self.report,
                out,
            );
        }
        if seg.flags.fin || seg.flags.rst {
            state.fin = true;
        }
        let overflowed = flow.tap.overflowed();
        let finished = flow.c2s.fin && flow.s2c.fin;
        if overflowed {
            self.stats.tap_overflows += 1;
        }
        if overflowed || finished {
            let mut flow = self.flows.remove(&key).expect("flow present");
            flow.tap.close(&mut self.report, out);
        }
    }

    /// Pumps the pcap-tail backend: read new bytes, parse complete
    /// records, leave the partial tail pending.
    fn pump_pcap(&mut self, out: &mut Vec<HttpTransaction>) -> nettrace::Result<PumpOutcome> {
        let tail = match &mut self.backend {
            Backend::PcapTail(t) => t,
            #[cfg(target_os = "linux")]
            Backend::Live { .. } => unreachable!("pump_pcap on live backend"),
        };
        let mut chunk = [0u8; 64 * 1024];
        let mut read_any = false;
        loop {
            match tail.file.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    read_any = true;
                    tail.pending.extend_from_slice(&chunk[..n]);
                    if tail.pending.len() >= 1 << 26 {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::Io(e)),
            }
        }
        if !tail.header_done {
            if tail.pending.len() < PCAP_HEADER_LEN {
                return Ok(if tail.follow { PumpOutcome::Idle } else { PumpOutcome::Exhausted });
            }
            let magic = u32::from_le_bytes(tail.pending[..4].try_into().expect("4 bytes"));
            tail.ts_scale = match magic {
                pcap::MAGIC_USEC => 1e-6,
                MAGIC_NSEC => 1e-9,
                other => return Err(Error::BadPcapMagic(other)),
            };
            tail.pending.drain(..PCAP_HEADER_LEN);
            tail.header_done = true;
        }
        // Parse complete records; a record split at the end of file
        // stays pending for the next pump (the writer is mid-append).
        let mut consumed = 0;
        let mut frames = 0;
        let mut parsed: Vec<(f64, usize, usize)> = Vec::new();
        while frames < FRAMES_PER_SLICE {
            let rest = &tail.pending[consumed..];
            if rest.len() < PCAP_RECORD_LEN {
                break;
            }
            let sec = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
            let frac = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            let incl = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")) as usize;
            if incl as u32 > pcap::MAX_CAPTURE_LEN {
                return Err(Error::BadCaptureLength(incl as u32));
            }
            if rest.len() < PCAP_RECORD_LEN + incl {
                break;
            }
            let ts = f64::from(sec) + f64::from(frac) * tail.ts_scale;
            parsed.push((ts, consumed + PCAP_RECORD_LEN, incl));
            consumed += PCAP_RECORD_LEN + incl;
            frames += 1;
        }
        // Frames are handled after the borrow of `tail` ends.
        let records: Vec<(f64, Vec<u8>)> = parsed
            .into_iter()
            .map(|(ts, off, len)| (ts, tail.pending[off..off + len].to_vec()))
            .collect();
        tail.pending.drain(..consumed);
        let follow = tail.follow;
        let more_buffered = tail.pending.len() >= PCAP_RECORD_LEN;
        for (ts, frame) in &records {
            self.handle_frame(*ts, frame, out);
        }
        if !records.is_empty() || read_any {
            Ok(PumpOutcome::Progress)
        } else if follow || more_buffered {
            Ok(PumpOutcome::Idle)
        } else {
            Ok(PumpOutcome::Exhausted)
        }
    }

    #[cfg(target_os = "linux")]
    fn pump_live(&mut self, out: &mut Vec<HttpTransaction>) -> nettrace::Result<PumpOutcome> {
        let mut buf = vec![0u8; 64 * 1024];
        let mut frames: Vec<(f64, Vec<u8>)> = Vec::new();
        {
            let Backend::Live { socket, .. } = &mut self.backend else { unreachable!() };
            for _ in 0..FRAMES_PER_SLICE {
                match socket.recv_frame(&mut buf) {
                    Ok(Some(n)) => frames.push((sys::wall_clock(), buf[..n].to_vec())),
                    Ok(None) => break,
                    Err(e) => return Err(Error::Io(e)),
                }
            }
            self.stats.source_drops = socket.kernel_drops();
        }
        let any = !frames.is_empty();
        for (ts, frame) in &frames {
            self.handle_frame(*ts, frame, out);
        }
        Ok(if any { PumpOutcome::Progress } else { PumpOutcome::Idle })
    }
}

/// Delivers one TCP segment respecting sequence order: exact matches
/// flow straight into the tap (then drain any now-contiguous buffered
/// segments), future segments wait in the bounded out-of-order buffer,
/// stale overlap is trimmed.
#[allow(clippy::too_many_arguments)]
fn deliver_in_order(
    state: &mut DirState,
    seq: u32,
    payload: &[u8],
    tap: &mut ConnectionTap,
    dir: TapDir,
    ts: f64,
    stats: &mut SourceStats,
    report: &mut IngestReport,
    out: &mut Vec<HttpTransaction>,
) {
    let next = *state.next_seq.get_or_insert(seq);
    let ahead = seq.wrapping_sub(next);
    if ahead == 0 {
        stats.bytes_in += payload.len() as u64;
        tap.offer(dir, payload, ts, report, out);
        state.next_seq = Some(seq.wrapping_add(payload.len() as u32));
    } else if ahead < 0x8000_0000 {
        // Future segment: hold it (bounded).
        if state.ooo.len() >= MAX_OOO_SEGMENTS {
            stats.source_drops += 1;
            return;
        }
        state.ooo.entry(seq).or_insert_with(|| payload.to_vec());
        return;
    } else {
        // Overlap/retransmission: deliver only the unseen suffix.
        let trim = next.wrapping_sub(seq) as usize;
        if trim >= payload.len() {
            return;
        }
        stats.bytes_in += (payload.len() - trim) as u64;
        tap.offer(dir, &payload[trim..], ts, report, out);
        state.next_seq = Some(seq.wrapping_add(payload.len() as u32));
    }
    // Drain buffered segments that became contiguous.
    while let Some(next_seq) = state.next_seq {
        let Some((&s, _)) = state.ooo.iter().next() else { break };
        let ahead = s.wrapping_sub(next_seq);
        if ahead >= 0x8000_0000 {
            // Entirely stale now.
            let data = state.ooo.remove(&s).expect("present");
            let trim = next_seq.wrapping_sub(s) as usize;
            if trim < data.len() {
                stats.bytes_in += (data.len() - trim) as u64;
                tap.offer(dir, &data[trim..], ts, report, out);
                state.next_seq = Some(s.wrapping_add(data.len() as u32));
            }
            continue;
        }
        if ahead != 0 {
            break;
        }
        let data = state.ooo.remove(&s).expect("present");
        stats.bytes_in += data.len() as u64;
        tap.offer(dir, &data, ts, report, out);
        state.next_seq = Some(s.wrapping_add(data.len() as u32));
    }
}

impl TrafficSource for CaptureSource {
    fn pump(&mut self, out: &mut Vec<HttpTransaction>) -> nettrace::Result<PumpOutcome> {
        if self.shut {
            return Ok(PumpOutcome::Exhausted);
        }
        let before = out.len();
        let is_pcap = matches!(self.backend, Backend::PcapTail(_));
        #[cfg(target_os = "linux")]
        let outcome = if is_pcap { self.pump_pcap(out) } else { self.pump_live(out) };
        #[cfg(not(target_os = "linux"))]
        let outcome = {
            debug_assert!(is_pcap);
            self.pump_pcap(out)
        };
        self.stats.transactions += (out.len() - before) as u64;
        // An exhausted non-follow capture still holds open flows; they
        // flush at shutdown.
        outcome
    }

    fn shutdown(&mut self, out: &mut Vec<HttpTransaction>) {
        if self.shut {
            return;
        }
        self.shut = true;
        let before = out.len();
        let flows = std::mem::take(&mut self.flows);
        for (_, mut flow) in flows {
            flow.tap.close(&mut self.report, out);
        }
        self.stats.transactions += (out.len() - before) as u64;
    }

    fn stats(&self) -> SourceStats {
        self.stats
    }

    fn ingest_report(&self) -> IngestReport {
        let mut report = IngestReport::new();
        report.merge(&self.report);
        report
    }
}

impl std::fmt::Debug for CaptureSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let backend = match &self.backend {
            Backend::PcapTail(t) => format!("pcap-tail {:?} (follow={})", t.path, t.follow),
            #[cfg(target_os = "linux")]
            Backend::Live { iface, .. } => format!("af-packet {iface}"),
        };
        f.debug_struct("CaptureSource")
            .field("backend", &backend)
            .field("flows", &self.flows.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::ether::MacAddr;
    use nettrace::tcp::TcpFlags;
    use nettrace::transaction::assign_seq;
    use std::io::Write;
    use synthtraffic::wire::{episodes_pcap, wire_episode_set};

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wirefront_capture_{name}_{}", std::process::id()))
    }

    fn pump_to_exhaustion(src: &mut CaptureSource, out: &mut Vec<HttpTransaction>) {
        for _ in 0..10_000 {
            match src.pump(out).expect("pump") {
                PumpOutcome::Exhausted => return,
                PumpOutcome::Progress | PumpOutcome::Idle => {}
            }
        }
        panic!("capture never exhausted");
    }

    /// The tentpole parity claim, held at the source level: tailing a
    /// pcap through the live flow table produces transactions
    /// bit-identical to the offline span pipeline over the same bytes.
    #[test]
    fn pcap_tail_matches_offline_extraction() {
        let episodes = wire_episode_set(21, 1, 1);
        let bytes = episodes_pcap(&episodes).expect("render pcap");
        let path = tmp_path("parity.pcap");
        std::fs::write(&path, &bytes).unwrap();

        let mut src =
            CaptureSource::pcap_file(&path, false, CaptureConfig::default()).unwrap();
        let mut out = Vec::new();
        pump_to_exhaustion(&mut src, &mut out);
        src.shutdown(&mut out);
        out.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        assign_seq(&mut out);

        let mut report = IngestReport::new();
        let offline = nettrace::SpanPipeline::new().extract_lenient(&bytes, &mut report);
        assert_eq!(out.len(), offline.len(), "transaction count");
        assert!(!out.is_empty());
        for (wire, off) in out.iter().zip(&offline) {
            assert_eq!(format!("{wire:?}"), format!("{off:?}"));
        }
        std::fs::remove_file(&path).ok();
    }

    /// `tail -f` semantics: a record split at the end of file is
    /// retried once the writer appends the rest.
    #[test]
    fn tail_retries_partial_records_across_appends() {
        let episodes = wire_episode_set(22, 1, 0);
        let bytes = episodes_pcap(&episodes).expect("render pcap");
        let split = PCAP_HEADER_LEN + PCAP_RECORD_LEN / 2; // mid first record header
        let path = tmp_path("tail.pcap");
        std::fs::write(&path, &bytes[..split]).unwrap();

        let mut src = CaptureSource::pcap_file(&path, true, CaptureConfig::default()).unwrap();
        let mut out = Vec::new();
        for _ in 0..10 {
            assert_ne!(src.pump(&mut out).expect("pump"), PumpOutcome::Exhausted);
        }
        assert!(out.is_empty(), "no transaction can exist yet");

        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&bytes[split..]).unwrap();
        drop(f);
        // Follow mode never exhausts; pump until quiet.
        let mut idle = 0;
        while idle < 5 {
            match src.pump(&mut out).expect("pump") {
                PumpOutcome::Progress => idle = 0,
                _ => idle += 1,
            }
        }
        src.shutdown(&mut out);

        let mut report = IngestReport::new();
        let offline = nettrace::SpanPipeline::new().extract_lenient(&bytes, &mut report);
        assert_eq!(out.len(), offline.len());
        std::fs::remove_file(&path).ok();
    }

    fn frame(
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let t = tcp::build(src.1, dst.1, seq, 0, flags, payload);
        let ip = ipv4::build(src.0, dst.0, ipv4::PROTO_TCP, 7, &t);
        ether::build(MacAddr([1; 6]), MacAddr([2; 6]), ether::ETHERTYPE_IPV4, &ip)
    }

    fn empty_source(config: CaptureConfig) -> CaptureSource {
        let path = tmp_path("empty.pcap");
        std::fs::write(&path, b"").unwrap();
        CaptureSource::pcap_file(&path, true, config).unwrap()
    }

    /// Segments delivered out of order still reassemble: the bounded
    /// OOO buffer holds the future segment until the gap fills.
    #[test]
    fn out_of_order_segments_reassemble() {
        let client = (Ipv4Addr::new(10, 0, 0, 5), 30001u16);
        let server = (Ipv4Addr::new(93, 0, 0, 1), 80u16);
        let req = b"GET /x HTTP/1.1\r\nHost: ooo.test\r\n\r\n";
        let (a, b) = req.split_at(10);
        let resp = b"HTTP/1.1 200 X\r\nContent-Length: 0\r\n\r\n";

        let mut src = empty_source(CaptureConfig::default());
        let mut out = Vec::new();
        src.handle_frame(1.0, &frame(client, server, 100, TcpFlags::syn(), &[]), &mut out);
        // Second chunk first: must wait in the OOO buffer.
        src.handle_frame(
            1.1,
            &frame(client, server, 101 + a.len() as u32, TcpFlags::data(), b),
            &mut out,
        );
        assert!(out.is_empty());
        src.handle_frame(1.2, &frame(client, server, 101, TcpFlags::data(), a), &mut out);
        src.handle_frame(2.0, &frame(server, client, 500, TcpFlags::data(), resp), &mut out);
        src.handle_frame(2.1, &frame(client, server, 200, TcpFlags::fin(), &[]), &mut out);
        src.handle_frame(2.2, &frame(server, client, 600, TcpFlags::fin(), &[]), &mut out);

        assert_eq!(out.len(), 1, "one request/response pair, one transaction");
        assert_eq!(out[0].host, "ooo.test");
        assert_eq!(out[0].status, 200);
        assert_eq!(src.stats().connections, 1);
        assert_eq!(src.active_flows(), 0, "finished flow was reaped");
    }

    /// Retransmitted overlap is trimmed, not re-delivered.
    #[test]
    fn retransmission_overlap_is_trimmed() {
        let client = (Ipv4Addr::new(10, 0, 0, 6), 30002u16);
        let server = (Ipv4Addr::new(93, 0, 0, 2), 80u16);
        let req = b"GET /r HTTP/1.1\r\nHost: dup.test\r\n\r\n";
        let mut src = empty_source(CaptureConfig::default());
        let mut out = Vec::new();
        src.handle_frame(1.0, &frame(client, server, 100, TcpFlags::syn(), &[]), &mut out);
        src.handle_frame(1.1, &frame(client, server, 101, TcpFlags::data(), req), &mut out);
        // Full retransmission: zero new bytes.
        let before = src.stats().bytes_in;
        src.handle_frame(1.2, &frame(client, server, 101, TcpFlags::data(), req), &mut out);
        assert_eq!(src.stats().bytes_in, before, "retransmission added bytes");
        src.shutdown(&mut out);
        assert_eq!(out.len(), 1, "one unanswered request");
        assert_eq!(out[0].status, 0);
        assert_eq!(out[0].host, "dup.test");
    }

    /// The BPF-style port filter keeps non-web flows out of the flow
    /// table entirely.
    #[test]
    fn port_filter_excludes_other_flows() {
        let client = (Ipv4Addr::new(10, 0, 0, 7), 30003u16);
        let other = (Ipv4Addr::new(93, 0, 0, 3), 9999u16);
        let mut src = empty_source(CaptureConfig::default());
        let mut out = Vec::new();
        src.handle_frame(1.0, &frame(client, other, 1, TcpFlags::syn(), &[]), &mut out);
        src.handle_frame(1.1, &frame(client, other, 2, TcpFlags::data(), b"hello"), &mut out);
        assert_eq!(src.active_flows(), 0);
        assert_eq!(src.stats().connections, 0);
        assert!(out.is_empty());
    }
}
