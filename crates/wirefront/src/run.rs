//! The ingress run loop: pumps a [`TrafficSource`] into a
//! [`StreamEngine`], numbering transactions in feed order, maintaining
//! the download ledger, checkpointing between feed segments, and
//! draining with zero loss on a termination signal.
//!
//! The loop owns the ordering contract the engine's determinism rests
//! on: every emitted transaction gets the next ingest `seq` in feed
//! order (continuing a resumed snapshot's watermark), so a wire run
//! that delivers transactions in timestamp order produces the same
//! `(ts, seq)` total order — and therefore the same alerts and the
//! same [`ForensicReport`] — as an offline replay of the equivalent
//! capture file.
//!
//! Shutdown is the two-phase drain described on
//! [`TrafficSource`]: on the stop flag (typically latched by
//! [`crate::sys::install_termination_handler`]) the loop stops
//! pumping, flushes the source's half-open connections with
//! end-of-stream semantics, pushes every flushed transaction, and
//! only then lets the engine drain — so
//! `enqueued == processed + dropped` holds over everything the source
//! ever emitted, with nothing lost between socket and shard.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dynaminer::classifier::Classifier;
use dynaminer::detector::Alert;
use dynaminer::forensic::{DownloadRecord, ForensicReport};
use nettrace::ingest::IngestReport;
use nettrace::source::{PumpOutcome, SourceStats, TrafficSource};
use nettrace::transaction::HttpTransaction;
use streamd::{finish_report, SnapshotSink, StreamEngine};
use telemetry::Registry;

use crate::metrics::WireMetrics;

/// Knobs for one [`run`] call.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Snapshot cadence, in transactions fed between checkpoints.
    /// `0` checkpoints only once, after the source is exhausted.
    pub checkpoint_every: u64,
    /// Receives every checkpoint (and the final snapshot). An `Err`
    /// aborts the run — a sink that cannot persist must not let the
    /// run outlive its recoverability.
    pub snapshot_sink: Option<SnapshotSink<'a>>,
    /// Hot-reload `(model, at)`: atomically swap in `model` once the
    /// engine's lifetime fed count reaches `at` transactions. Applied
    /// at a segment boundary, like the durable replay path.
    pub reload: Option<(Classifier, u64)>,
    /// Stop after this long without the source making progress
    /// (test harnesses and drain-on-quiet deployments). `None` runs
    /// until the stop flag or source exhaustion.
    pub idle_timeout: Option<Duration>,
    /// How long one idle wait blocks for readiness, in milliseconds.
    pub poll_wait_ms: u32,
    /// Threads for the final batched verdict scoring.
    pub scoring_threads: usize,
    /// Registry for wire-ingress metrics and the report's detector
    /// stats; `None` skips both.
    pub registry: Option<&'a Registry>,
}

/// Everything one [`run`] produced, with the accounting needed to
/// assert the zero-loss drain invariant end to end.
#[derive(Debug)]
pub struct RunSummary {
    /// Final forensic report (ingest populated from the source).
    pub report: ForensicReport,
    /// Every alert, concatenated across feed segments in emission
    /// order.
    pub alerts: Vec<Alert>,
    /// Transactions offered to shard queues, summed over segments.
    pub enqueued: u64,
    /// Transactions consumed by shard workers.
    pub processed: u64,
    /// Transactions dropped by the `DropNewest` policy
    /// (`enqueued == processed + dropped`).
    pub dropped: u64,
    /// Times the feeder blocked on a full queue.
    pub backpressure_waits: u64,
    /// Final source counters.
    pub stats: SourceStats,
    /// Final source ingest-health report.
    pub ingest: IngestReport,
    /// Snapshots handed to the sink.
    pub checkpoints: u64,
}

/// Why a feed segment ended.
#[derive(PartialEq)]
enum Segment {
    /// Checkpoint cadence reached; snapshot, then keep feeding.
    Checkpoint,
    /// Source exhausted, stop flag drained, or idle timeout: the run
    /// is over.
    Done,
}

/// Pumps `source` into `engine` until exhaustion, idle timeout, or
/// `stop`, then closes out the report.
///
/// `stop` is read with relaxed ordering each iteration, so a signal
/// handler latch or another thread's store ends the run at the next
/// work-slice boundary, followed by the full graceful drain.
///
/// # Errors
///
/// A source pump error, a snapshot sink refusal, or a snapshot taken
/// mid-feed — all returned as strings for the CLI to print. The
/// engine is left drained (every feed segment completes) even on the
/// error paths.
pub fn run(
    source: &mut dyn TrafficSource,
    engine: &mut StreamEngine,
    stop: &AtomicBool,
    mut opts: RunOptions<'_>,
) -> Result<RunSummary, String> {
    let mut wire_metrics = opts.registry.map(WireMetrics::new);
    // Continue the ingest numbering of whatever the engine already fed
    // (0 for a fresh engine), so a resumed run keeps the same total
    // order the interrupted run was building.
    let mut next_seq: u64 = engine.watermark().map(|w| w.seq + 1).unwrap_or(0);
    let mut downloads: Vec<DownloadRecord> = Vec::new();
    let mut alerts: Vec<Alert> = Vec::new();
    let (mut enqueued, mut processed, mut dropped, mut waits) = (0u64, 0u64, 0u64, 0u64);
    let mut checkpoints = 0u64;
    let mut reload = opts.reload.take();
    let mut flushed = false;
    let mut out: Vec<HttpTransaction> = Vec::new();
    let mut last_progress = Instant::now();

    loop {
        if let Some((_, at)) = &reload {
            if engine.fed() >= *at {
                let (model, _) = reload.take().expect("reload present");
                engine.reload_model(model);
            }
        }

        let mut pump_err: Option<String> = None;
        let (end, engine_report) = engine.feed(|handle| {
            let mut fed_this_segment = 0u64;
            loop {
                if !flushed && stop.load(Ordering::Relaxed) {
                    // Two-phase drain: flush half-open connections to
                    // end-of-stream transactions, push them, and only
                    // then let the engine drain.
                    source.shutdown(&mut out);
                    flushed = true;
                } else if !flushed {
                    match source.pump(&mut out) {
                        Ok(PumpOutcome::Progress) => last_progress = Instant::now(),
                        Ok(PumpOutcome::Idle) => {
                            if out.is_empty() {
                                if let Some(limit) = opts.idle_timeout {
                                    if last_progress.elapsed() >= limit {
                                        source.shutdown(&mut out);
                                        flushed = true;
                                    }
                                }
                                if !flushed {
                                    // Push what the batcher holds before
                                    // blocking, so quiet periods don't
                                    // sit on buffered transactions.
                                    handle.flush();
                                    source.wait(opts.poll_wait_ms);
                                }
                            }
                        }
                        Ok(PumpOutcome::Exhausted) => {
                            source.shutdown(&mut out);
                            flushed = true;
                        }
                        Err(e) => {
                            // Cannot `?` out of the feed closure; drain
                            // what was already accepted, then surface.
                            source.shutdown(&mut out);
                            flushed = true;
                            pump_err = Some(e.to_string());
                        }
                    }
                }
                for mut tx in out.drain(..) {
                    tx.seq = next_seq;
                    next_seq += 1;
                    fed_this_segment += 1;
                    // Same ledger predicate as the offline replay's
                    // download scan; feed order is the wire's `(ts,
                    // seq)` order, so the ledger matches a replay of
                    // the equivalent capture.
                    if tx.status / 100 == 2
                        && tx.payload_size > 0
                        && tx.payload_class.is_exploit_type()
                    {
                        downloads.push(DownloadRecord {
                            host: tx.host.clone(),
                            class: tx.payload_class,
                            size: tx.payload_size,
                            digest: tx.payload_digest,
                            ts: tx.ts,
                        });
                    }
                    handle.push(tx);
                }
                if flushed {
                    return Segment::Done;
                }
                if opts.checkpoint_every > 0 && fed_this_segment >= opts.checkpoint_every {
                    return Segment::Checkpoint;
                }
            }
        });

        alerts.extend(engine_report.alerts);
        enqueued += engine_report.enqueued;
        processed += engine_report.processed;
        dropped += engine_report.dropped;
        waits += engine_report.backpressure_waits;
        if let Some(metrics) = &mut wire_metrics {
            metrics.record(&source.stats());
        }

        if let Some(sink) = &mut opts.snapshot_sink {
            // Between feed calls the engine is quiescent — the only
            // place a snapshot is consistent.
            checkpoints += 1;
            sink(&engine.snapshot())?;
        }
        if let Some(e) = pump_err {
            return Err(e);
        }
        if end == Segment::Done {
            break;
        }
    }

    let stats = source.stats();
    let ingest = source.ingest_report();
    if let Some(metrics) = &mut wire_metrics {
        metrics.record(&stats);
    }
    let mut report = finish_report(engine, downloads, opts.scoring_threads.max(1), opts.registry);
    report.ingest = Some(ingest);
    Ok(RunSummary {
        report,
        alerts,
        enqueued,
        processed,
        dropped,
        backpressure_waits: waits,
        stats,
        ingest,
        checkpoints,
    })
}
