//! Serializing episodes to real pcap bytes.
//!
//! Each transaction becomes its own TCP connection (SYN handshake, request
//! segment, response segments, FIN) so the `nettrace` reassembly and
//! HTTP-pairing pipeline is exercised exactly as it would be on a real
//! capture.
//!
//! Payload bodies larger than [`crate::episode::MATERIALIZE_LIMIT`] are
//! only *declared* in the transaction's `payload_size`; on the wire the
//! materialized bytes are written with a matching `Content-Length`, so a
//! reparsed transaction reports the materialized size. Offline analytics
//! consume the transaction stream directly and keep the declared sizes.

use nettrace::ether::{self, MacAddr, ETHERTYPE_IPV4};
use nettrace::ipv4::{self, PROTO_TCP};
use nettrace::pcap::{Packet, PcapWriter};
use nettrace::tcp::{self, TcpFlags};
use nettrace::transaction::HttpTransaction;
use nettrace::Result;

use crate::episode::Episode;

/// Maximum TCP payload bytes per synthesized segment.
const MSS: usize = 1400;

/// Renders the request bytes of a transaction.
pub fn request_bytes(tx: &HttpTransaction) -> Vec<u8> {
    let mut out = format!("{} {} HTTP/1.1\r\n", tx.method, tx.uri).into_bytes();
    for (name, value) in tx.req_headers.iter() {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out
}

/// Renders the response bytes of a transaction, with `Content-Length`
/// rewritten to the on-wire body length. Transactions marked with a
/// `Content-Encoding` carry their body *decoded* (that is the
/// [`HttpTransaction`] contract), so the wire form re-applies each
/// coding token in listed order — gzip (and its `x-gzip` alias) as a
/// gzip container, deflate as zlib — and the extractor decodes it back
/// to identical bytes.
pub fn response_bytes(tx: &HttpTransaction) -> Vec<u8> {
    let mut wire_body = tx.body_preview.clone();
    if let Some(encodings) = tx.resp_headers.get("Content-Encoding") {
        for token in encodings.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("gzip") || token.eq_ignore_ascii_case("x-gzip") {
                wire_body = nettrace::flate::gzip_compress(&wire_body);
            } else if token.eq_ignore_ascii_case("deflate") {
                wire_body = nettrace::flate::zlib_compress(&wire_body);
            }
        }
    }
    let mut out = format!("HTTP/1.1 {} X\r\n", tx.status).into_bytes();
    for (name, value) in tx.resp_headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n", wire_body.len()).as_bytes());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&wire_body);
    out
}

struct PacketSink {
    packets: Vec<Packet>,
    ident: u16,
}

impl PacketSink {
    fn push(
        &mut self,
        ts: f64,
        src: nettrace::reassembly::Endpoint,
        dst: nettrace::reassembly::Endpoint,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) {
        let seg = tcp::build(src.port, dst.port, seq, 0, flags, payload);
        let ip = ipv4::build(src.addr, dst.addr, PROTO_TCP, self.ident, &seg);
        self.ident = self.ident.wrapping_add(1);
        let eth = ether::build(MacAddr([2; 6]), MacAddr([1; 6]), ETHERTYPE_IPV4, &ip);
        self.packets.push(Packet::new(ts, eth));
    }
}

/// Converts an episode into raw captured packets.
pub fn episode_packets(episode: &Episode) -> Vec<Packet> {
    let mut sink = PacketSink { packets: Vec::new(), ident: 1 };
    for tx in &episode.transactions {
        let client = tx.client;
        let server = tx.server;
        let req = request_bytes(tx);
        let resp = if tx.status != 0 { response_bytes(tx) } else { Vec::new() };
        let mut t = tx.ts;
        // Handshake.
        sink.push(t - 0.002, client, server, 999, TcpFlags::syn(), &[]);
        sink.push(t - 0.001, server, client, 4999, TcpFlags::syn(), &[]);
        // Request segments.
        let mut seq = 1000u32;
        for chunk in req.chunks(MSS) {
            sink.push(t, client, server, seq, TcpFlags::data(), chunk);
            seq += chunk.len() as u32;
            t += 0.0005;
        }
        // Response segments, spread between request time and resp_ts.
        // The final segment is pinned at exactly `resp_ts`, so the
        // transaction's declared completion time survives the pcap
        // round-trip bit-for-bit no matter how many segments the wire
        // body occupies (content codings change the wire length but not
        // when the response, per the episode, finished).
        let mut rseq = 5000u32;
        let n_chunks = resp.len().div_ceil(MSS).max(1);
        let end_ts = tx.resp_ts.max(tx.ts + 0.001);
        let dt = (end_ts - tx.ts) / n_chunks as f64;
        let mut fin_ts = tx.ts + dt.min(0.05);
        for (i, chunk) in resp.chunks(MSS).enumerate() {
            let rt = if i + 1 == n_chunks { end_ts } else { tx.ts + dt * (i + 1) as f64 };
            sink.push(rt, server, client, rseq, TcpFlags::data(), chunk);
            rseq += chunk.len() as u32;
            fin_ts = rt + dt.min(0.05);
        }
        // Teardown.
        sink.push(fin_ts, client, server, seq, TcpFlags::fin(), &[]);
        sink.push(fin_ts + 0.001, server, client, rseq, TcpFlags::fin(), &[]);
    }
    sink.packets.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    sink.packets
}

/// Serializes an episode to classic pcap bytes.
///
/// # Errors
///
/// Returns an error only when the in-memory writer fails, which indicates
/// an internal bug (e.g. an oversized packet).
pub fn episode_pcap(episode: &Episode) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut writer = PcapWriter::new(&mut buf)?;
    for p in episode_packets(episode) {
        writer.write_packet(&p)?;
    }
    writer.finish()?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benign::{generate_benign, BenignScenario};
    use crate::episode::generate_infection;
    use crate::families::EkFamily;
    use nettrace::pcap::PcapReader;
    use nettrace::TransactionExtractor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip(ep: &Episode) -> Vec<HttpTransaction> {
        let bytes = episode_pcap(ep).unwrap();
        let packets = PcapReader::new(bytes.as_slice()).unwrap().collect_packets().unwrap();
        TransactionExtractor::extract(&packets).unwrap()
    }

    #[test]
    fn infection_episode_roundtrips_through_pcap() {
        let mut rng = StdRng::seed_from_u64(21);
        let ep = generate_infection(&mut rng, EkFamily::Rig, 1_400_000_000.0);
        let parsed = roundtrip(&ep);
        assert_eq!(parsed.len(), ep.transactions.len());
        for (orig, got) in ep.transactions.iter().zip(&parsed) {
            assert_eq!(orig.host, got.host);
            assert_eq!(orig.uri, got.uri);
            assert_eq!(orig.method, got.method);
            assert_eq!(orig.status, got.status);
            assert_eq!(orig.referer(), got.referer());
            assert_eq!(orig.location(), got.location());
            assert!((orig.ts - got.ts).abs() < 0.01, "{} vs {}", orig.ts, got.ts);
            // Fully materialized payloads keep their size and digest.
            if orig.payload_size == orig.body_preview.len() {
                assert_eq!(orig.payload_size, got.payload_size);
                assert_eq!(orig.payload_digest, got.payload_digest);
                assert_eq!(orig.payload_class, got.payload_class, "uri {}", orig.uri);
            }
        }
    }

    #[test]
    fn benign_episode_roundtrips_through_pcap() {
        let mut rng = StdRng::seed_from_u64(22);
        let ep = generate_benign(&mut rng, BenignScenario::Search, 1_430_000_000.0);
        let parsed = roundtrip(&ep);
        assert_eq!(parsed.len(), ep.transactions.len());
    }

    #[test]
    fn pcap_bytes_start_with_magic() {
        let mut rng = StdRng::seed_from_u64(23);
        let ep = generate_benign(&mut rng, BenignScenario::AlexaBrowse, 1_430_000_000.0);
        let bytes = episode_pcap(&ep).unwrap();
        assert_eq!(&bytes[..4], &nettrace::pcap::MAGIC_USEC.to_le_bytes());
    }

    #[test]
    fn request_bytes_are_parseable() {
        let mut rng = StdRng::seed_from_u64(24);
        let ep = generate_infection(&mut rng, EkFamily::Angler, 1_400_000_000.0);
        for tx in &ep.transactions {
            let bytes = request_bytes(tx);
            let (head, _) = nettrace::http::parse_request_head(&bytes).unwrap().unwrap();
            assert_eq!(head.uri, tx.uri);
        }
    }
}
