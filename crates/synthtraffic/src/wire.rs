//! Loopback replay harness: drive synthetic episodes through a *real*
//! proxy over real sockets, against a real origin server, and compare
//! the wire-observed forensics with an offline analysis of the same
//! episodes rendered to pcap.
//!
//! The replay preserves the episode timeline through the
//! `X-Replay-*` header mechanism (see [`nettrace::wiretap`]): the
//! driver stamps each request with the episode timestamp and a
//! transaction id, the origin stamps each response with the episode's
//! response-completion timestamp, and a tap configured with
//! `honor_replay_ts` adopts and strips them — so a transaction
//! observed on the wire is byte-identical to the same transaction
//! extracted from the episode's pcap rendering, timestamps included.
//!
//! Determinism notes baked into the harness:
//!
//! * [`wire_episode_set`] remaps every client port to a globally
//!   unique value so the merged pcap rendering has no colliding TCP
//!   4-tuples, and spaces episode start times so no two transactions
//!   share a timestamp (ties would make the offline sort order
//!   ambiguous).
//! * [`drive_episodes`] replays transactions *sequentially in global
//!   timestamp order*, one connection per transaction — so the wire
//!   feed order equals the offline `(ts, seq)` sort order and ingest
//!   sequence numbers match end to end.
//! * With PROXY protocol enabled the driver announces each
//!   transaction's original client/server endpoints, so even the
//!   synthesized endpoints match the pcap rendering exactly.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::benign::{generate_benign, BenignScenario};
use crate::episode::{generate_infection, Episode};
use crate::families::EkFamily;
use crate::pcapgen::{episode_packets, request_bytes, response_bytes};
use nettrace::pcap::{Packet, PcapWriter};
use nettrace::proxyproto::encode_v1_tcp4;
use nettrace::transaction::assign_seq;
use nettrace::wiretap::{REPLAY_ID_HEADER, REPLAY_RESP_TS_HEADER, REPLAY_TS_HEADER};
use nettrace::HttpTransaction;

/// First client port handed out by the global remap.
const REMAP_PORT_BASE: u16 = 20000;

/// Builds a deterministic mixed episode set sized for loopback replay:
/// `infections` exploit-kit episodes interleaved with `benign` browsing
/// episodes, start times spaced well apart, and every client port
/// remapped to a globally unique value (so the merged pcap rendering
/// has no 4-tuple collisions and a sequential replay has no timestamp
/// ties).
pub fn wire_episode_set(seed: u64, infections: usize, benign: usize) -> Vec<Episode> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0017_e57a_11ed_u64);
    let mut episodes = Vec::new();
    let base_ts = 1_500_000_000.0;
    let (mut inf_left, mut ben_left) = (infections, benign);
    for i in 0..infections + benign {
        let start_ts = base_ts + i as f64 * 7200.0;
        let make_infection = inf_left > 0 && (ben_left == 0 || i % 2 == 0);
        let ep = if make_infection {
            inf_left -= 1;
            let family = EkFamily::sample_weighted(&mut rng);
            generate_infection(&mut rng, family, start_ts)
        } else {
            ben_left -= 1;
            let scenario = BenignScenario::sample(&mut rng);
            generate_benign(&mut rng, scenario, start_ts)
        };
        episodes.push(ep);
    }
    remap_client_ports(&mut episodes);
    dedupe_timestamps(&mut episodes);
    episodes
}

/// Projects a timestamp through the classic-pcap sec/usec round trip,
/// with the *identical arithmetic* the `nettrace` writer and reader
/// use. Episode timestamps are pre-quantized with this so both replay
/// legs see the same bits: the pcap leg reproduces the value because
/// the projection is idempotent, and the wire leg reproduces it
/// because the `X-Replay-*` headers print/parse f64 exactly.
fn pcap_quantize(ts: f64) -> f64 {
    let sec = ts.floor() as u32;
    let usec = ((ts - f64::from(sec)) * 1e6).round() as u32;
    f64::from(sec) + f64::from(usec) * 1e-6
}

/// Quantizes every timestamp to pcap microsecond resolution and nudges
/// duplicate request timestamps apart so the merged stream has a
/// unique, unambiguous timestamp order. Both replay legs see the
/// adjusted values — the annotation headers and the pcap rendering
/// read the same transaction — so parity is unaffected.
fn dedupe_timestamps(episodes: &mut [Episode]) {
    let mut used = std::collections::BTreeSet::new();
    for ep in episodes {
        for tx in &mut ep.transactions {
            tx.ts = pcap_quantize(tx.ts);
            tx.resp_ts = pcap_quantize(tx.resp_ts);
            while !used.insert(tx.ts.to_bits()) {
                tx.ts = pcap_quantize(tx.ts + 2e-6);
            }
        }
    }
}

/// Rewrites every transaction's client port to a globally unique value
/// (preserving the client address). Two episodes otherwise reuse the
/// same ephemeral range, which would merge distinct connections when
/// their renderings share a pcap.
pub fn remap_client_ports(episodes: &mut [Episode]) {
    let mut next: u32 = u32::from(REMAP_PORT_BASE);
    for ep in episodes {
        let mut mapping: BTreeMap<u16, u16> = BTreeMap::new();
        for tx in &mut ep.transactions {
            let mapped = *mapping.entry(tx.client.port).or_insert_with(|| {
                let p = next;
                next += 1;
                assert!(p < 65536, "client-port remap exhausted the port space");
                p as u16
            });
            tx.client.port = mapped;
        }
    }
}

/// Flattens episodes into one transaction stream in the offline replay
/// order: sorted by timestamp, ingest sequence numbers assigned in
/// that order. This is both the drive order and the reference the
/// wire-side forensics are compared against.
pub fn merged_wire_transactions(episodes: &[Episode]) -> Vec<HttpTransaction> {
    let mut all: Vec<HttpTransaction> =
        episodes.iter().flat_map(|e| e.transactions.iter().cloned()).collect();
    all.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    assign_seq(&mut all);
    all
}

/// Renders a set of episodes into one merged pcap (packets of all
/// episodes interleaved in timestamp order) — the offline leg of the
/// loopback parity comparison.
///
/// # Errors
///
/// Propagates pcap serialization failures (oversized packets).
pub fn episodes_pcap(episodes: &[Episode]) -> nettrace::Result<Vec<u8>> {
    let mut packets: Vec<Packet> = Vec::new();
    for ep in episodes {
        packets.extend(episode_packets(ep));
    }
    packets.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let mut buf = Vec::new();
    let mut writer = PcapWriter::new(&mut buf)?;
    for p in &packets {
        writer.write_packet(p)?;
    }
    Ok(buf)
}

/// The request bytes the driver sends for transaction `id`: the
/// episode rendering with `X-Replay-Ts` (original request timestamp)
/// and `X-Replay-Id` (the merged-stream index) inserted before the
/// final CRLF. A replay-trusting tap adopts the timestamp and strips
/// both, recovering the original head byte-for-byte.
pub fn replay_request_bytes(tx: &HttpTransaction, id: u64) -> Vec<u8> {
    let mut head = request_bytes(tx);
    debug_assert!(head.ends_with(b"\r\n\r\n"));
    let insert_at = head.len() - 2;
    let extra = format!("{REPLAY_TS_HEADER}: {}\r\n{REPLAY_ID_HEADER}: {id}\r\n", tx.ts);
    head.splice(insert_at..insert_at, extra.into_bytes());
    head
}

/// The response bytes the origin serves for `tx`: the episode
/// rendering with `X-Replay-Resp-Ts` (original response-completion
/// timestamp) inserted at the end of the head. `None` for status-0
/// transactions — the origin hangs up without answering, and the tap
/// synthesizes the unanswered-request transaction at close, exactly
/// like offline ingest does for a response-less stream.
pub fn replay_response_bytes(tx: &HttpTransaction) -> Option<Vec<u8>> {
    if tx.status == 0 {
        return None;
    }
    let mut bytes = response_bytes(tx);
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("rendered response has a head terminator");
    let extra = format!("{REPLAY_RESP_TS_HEADER}: {}\r\n", tx.resp_ts);
    bytes.splice(head_end + 2..head_end + 2, extra.into_bytes());
    Some(bytes)
}

/// A minimal single-threaded HTTP origin for loopback replay: keyed by
/// the `X-Replay-Id` request header, it serves each transaction's
/// rendered response (with the replay timestamp annotation) or hangs
/// up for status-0 transactions.
pub struct OriginServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OriginServer {
    /// Binds `127.0.0.1:0` and serves `transactions` (indexed by their
    /// position, which is the id [`drive_episodes`] announces) on a
    /// background thread until dropped or [`OriginServer::stop`]ped.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn start(transactions: &[HttpTransaction]) -> io::Result<OriginServer> {
        let responses: Vec<Option<Vec<u8>>> =
            transactions.iter().map(replay_response_bytes).collect();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || serve(&listener, &responses, &stop_flag));
        Ok(OriginServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (pass as the proxy's origin).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The origin accept/serve loop. Single-threaded: the loopback driver
/// replays one connection at a time, so there is never more than one
/// in-flight request.
fn serve(listener: &TcpListener, responses: &[Option<Vec<u8>>], stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                if let Some(id) = read_request_id(&mut stream) {
                    // Status-0 transactions (and unknown ids) hang
                    // up without answering.
                    if let Some(Some(body)) = responses.get(id) {
                        let _ = stream.write_all(body);
                        let _ = stream.flush();
                    }
                }
                // Dropping the stream closes the connection; the proxy
                // relays the EOF to the client.
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Reads one request head off `stream` and extracts its
/// `X-Replay-Id`. `None` on timeout, malformed head, or missing id.
fn read_request_id(stream: &mut TcpStream) -> Option<usize> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]);
            let needle = format!("{}:", REPLAY_ID_HEADER.to_ascii_lowercase());
            for line in head.split("\r\n") {
                if line.to_ascii_lowercase().starts_with(&needle) {
                    return line[needle.len()..].trim().parse().ok();
                }
            }
            return None;
        }
        if buf.len() > 1 << 20 {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
}

/// Replays `transactions` (the [`merged_wire_transactions`] order)
/// through the proxy at `proxy`, sequentially: one connection per
/// transaction, optional PROXY-protocol v1 preamble announcing the
/// *episode's* client/server endpoints, the annotated request, and —
/// for answered transactions — a full read of the relayed response.
/// Returns the number of transactions driven.
///
/// # Errors
///
/// Connect or write failures to the proxy (response-read failures are
/// tolerated: a mid-drive proxy shutdown is an expected test case).
pub fn drive_episodes(
    proxy: SocketAddr,
    transactions: &[HttpTransaction],
    proxy_protocol: bool,
) -> io::Result<u64> {
    let mut driven = 0u64;
    for (id, tx) in transactions.iter().enumerate() {
        let mut stream = TcpStream::connect(proxy)?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_nodelay(true);
        if proxy_protocol {
            let preamble = encode_v1_tcp4(
                (tx.client.addr, tx.client.port),
                (tx.server.addr, tx.server.port),
            );
            stream.write_all(&preamble)?;
        }
        stream.write_all(&replay_request_bytes(tx, id as u64))?;
        stream.flush()?;
        if tx.status != 0 {
            // Drain the relayed response so the tap observes all of it
            // before the next transaction begins (sequential replay is
            // what makes wire order == offline order).
            let _ = read_to_connection_close(&mut stream);
        }
        // For status-0: drop the connection; the origin never answered,
        // and the proxy tap synthesizes the unanswered request at close.
        driven += 1;
    }
    Ok(driven)
}

/// Reads until EOF (the origin closes every connection after one
/// response), returning bytes read.
fn read_to_connection_close(stream: &mut TcpStream) -> io::Result<u64> {
    let mut total = 0u64;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(total),
            Ok(n) => total += n as u64,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_set_is_deterministic_with_unique_ports_and_ts() {
        let a = wire_episode_set(7, 2, 2);
        let b = wire_episode_set(7, 2, 2);
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().filter(|e| e.is_infection()).count(), 2);
        let txs_a = merged_wire_transactions(&a);
        let txs_b = merged_wire_transactions(&b);
        assert_eq!(txs_a.len(), txs_b.len());
        for (x, y) in txs_a.iter().zip(&txs_b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        // Client (addr, port) pairs never collide across the merged set.
        let mut endpoints: Vec<(std::net::Ipv4Addr, u16)> =
            txs_a.iter().map(|t| (t.client.addr, t.client.port)).collect();
        let before = endpoints.len();
        endpoints.sort_unstable();
        endpoints.dedup();
        assert_eq!(endpoints.len(), before, "colliding client endpoints");
        // No two transactions share a timestamp (would make the offline
        // sort order ambiguous).
        let mut ts: Vec<u64> = txs_a.iter().map(|t| t.ts.to_bits()).collect();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), before, "timestamp ties in the merged stream");
    }

    #[test]
    fn replay_annotations_insert_and_roundtrip() {
        let episodes = wire_episode_set(3, 1, 0);
        let txs = merged_wire_transactions(&episodes);
        let tx = &txs[0];
        let req = replay_request_bytes(tx, 42);
        let text = String::from_utf8_lossy(&req);
        assert!(text.contains(&format!("{REPLAY_TS_HEADER}: {}\r\n", tx.ts)));
        assert!(text.contains(&format!("{REPLAY_ID_HEADER}: 42\r\n")));
        assert!(req.ends_with(b"\r\n\r\n"));
        if let Some(resp) = replay_response_bytes(tx) {
            let text = String::from_utf8_lossy(&resp);
            assert!(text.contains(&format!("{REPLAY_RESP_TS_HEADER}: {}\r\n", tx.resp_ts)));
        }
        // The replay timestamp must survive a text round-trip exactly
        // (shortest-roundtrip f64 formatting).
        let printed = format!("{}", tx.ts);
        assert_eq!(printed.parse::<f64>().unwrap().to_bits(), tx.ts.to_bits());
    }

    #[test]
    fn origin_serves_by_replay_id_and_hangs_up_on_status_zero() {
        let episodes = wire_episode_set(11, 1, 1);
        let txs = merged_wire_transactions(&episodes);
        let origin = OriginServer::start(&txs).unwrap();
        let answered =
            txs.iter().position(|t| t.status != 0).expect("an answered transaction exists");
        let mut stream = TcpStream::connect(origin.addr()).unwrap();
        stream.write_all(&replay_request_bytes(&txs[answered], answered as u64)).unwrap();
        let mut got = Vec::new();
        stream.read_to_end(&mut got).unwrap();
        assert_eq!(got, replay_response_bytes(&txs[answered]).unwrap());
        // Unknown id: connection closes with no bytes.
        let mut stream = TcpStream::connect(origin.addr()).unwrap();
        stream.write_all(&replay_request_bytes(&txs[answered], 999_999)).unwrap();
        let mut got = Vec::new();
        stream.read_to_end(&mut got).unwrap();
        assert!(got.is_empty());
        origin.stop();
    }

    #[test]
    fn merged_pcap_extracts_every_transaction() {
        let episodes = wire_episode_set(5, 1, 1);
        let txs = merged_wire_transactions(&episodes);
        let pcap = episodes_pcap(&episodes).unwrap();
        let mut report = nettrace::IngestReport::new();
        let extracted =
            nettrace::SpanPipeline::new().extract_lenient(&pcap, &mut report);
        assert_eq!(extracted.len(), txs.len());
    }
}
