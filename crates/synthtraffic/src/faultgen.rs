//! Seeded capture mutator for fault-injection testing.
//!
//! Takes a well-formed classic pcap (for example from
//! [`crate::pcapgen::episode_pcap`]) and applies one class of damage to
//! it, producing the kind of hostile or degraded input a capture point
//! sees in practice: truncated files, bit rot, packet loss and
//! duplication, middleboxes rewriting TCP fields, malformed HTTP, broken
//! content encodings, and captures that start mid-connection.
//!
//! All mutations are driven by a caller-supplied seeded RNG, so every
//! corrupted capture is reproducible from `(pcap, fault, seed)`.

use rand::Rng;
use rand::RngCore;

use nettrace::ingest::IngestReport;
use nettrace::pcap::{Packet, PcapWriter};

/// One class of capture damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Chop bytes off the end of the file (interrupted capture).
    TruncateTail,
    /// Flip random bytes anywhere after the file header (bit rot).
    FlipBytes,
    /// Drop a random subset of packets (capture loss).
    DropPackets,
    /// Duplicate a random subset of packets (switch mirroring artifacts).
    DuplicatePackets,
    /// Shuffle packets within small windows (multi-queue reordering).
    ReorderPackets,
    /// Overwrite TCP sequence numbers on some data segments.
    CorruptTcpSeq,
    /// Scramble TCP flag bytes on some segments.
    CorruptTcpFlags,
    /// Damage HTTP request lines in client payloads.
    MangleRequestLines,
    /// Break response body framing (chunk sizes / Content-Length).
    BreakChunkFraming,
    /// Corrupt gzip-compressed response bodies past their magic.
    CorruptGzipStreams,
    /// Drop the leading packets: the capture starts mid-stream.
    MidStreamStart,
}

impl Fault {
    /// Every fault class, for exhaustive harness sweeps.
    pub const ALL: [Fault; 11] = [
        Fault::TruncateTail,
        Fault::FlipBytes,
        Fault::DropPackets,
        Fault::DuplicatePackets,
        Fault::ReorderPackets,
        Fault::CorruptTcpSeq,
        Fault::CorruptTcpFlags,
        Fault::MangleRequestLines,
        Fault::BreakChunkFraming,
        Fault::CorruptGzipStreams,
        Fault::MidStreamStart,
    ];
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Applies one fault class to a capture, returning the damaged bytes.
///
/// The input should be a classic pcap; inputs that do not parse are
/// returned unchanged (there is nothing structured left to damage).
pub fn apply<R: RngCore>(pcap: &[u8], fault: Fault, rng: &mut R) -> Vec<u8> {
    match fault {
        Fault::TruncateTail => truncate_tail(pcap, rng),
        Fault::FlipBytes => flip_bytes(pcap, rng),
        Fault::DropPackets => on_packets(pcap, |pkts| drop_packets(pkts, rng)),
        Fault::DuplicatePackets => on_packets(pcap, |pkts| duplicate_packets(pkts, rng)),
        Fault::ReorderPackets => on_packets(pcap, |pkts| reorder_packets(pkts, rng)),
        Fault::CorruptTcpSeq => on_packets(pcap, |pkts| corrupt_tcp_seq(pkts, rng)),
        Fault::CorruptTcpFlags => on_packets(pcap, |pkts| corrupt_tcp_flags(pkts, rng)),
        Fault::MangleRequestLines => on_packets(pcap, |pkts| mangle_request_lines(pkts, rng)),
        Fault::BreakChunkFraming => on_packets(pcap, |pkts| break_framing(pkts, rng)),
        Fault::CorruptGzipStreams => on_packets(pcap, |pkts| corrupt_gzip(pkts, rng)),
        Fault::MidStreamStart => on_packets(pcap, |pkts| mid_stream_start(pkts, rng)),
    }
}

/// Applies every fault class in sequence with one RNG (compound damage).
pub fn apply_all<R: RngCore>(pcap: &[u8], rng: &mut R) -> Vec<u8> {
    let mut out = pcap.to_vec();
    for fault in Fault::ALL {
        out = apply(&out, fault, rng);
    }
    out
}

/// Decodes, transforms, and re-serializes the packet list. Unparseable
/// input is passed through untouched.
fn on_packets(pcap: &[u8], transform: impl FnOnce(&mut Vec<Packet>)) -> Vec<u8> {
    let mut report = IngestReport::new();
    let mut packets = nettrace::capture::read_packets_lenient(pcap, &mut report);
    if packets.is_empty() {
        return pcap.to_vec();
    }
    transform(&mut packets);
    let mut buf = Vec::new();
    let mut writer = match PcapWriter::new(&mut buf) {
        Ok(w) => w,
        Err(_) => return pcap.to_vec(),
    };
    for p in &packets {
        if writer.write_packet(p).is_err() {
            return pcap.to_vec();
        }
    }
    if writer.finish().is_err() {
        return pcap.to_vec();
    }
    buf
}

fn truncate_tail<R: RngCore>(pcap: &[u8], rng: &mut R) -> Vec<u8> {
    if pcap.len() < 2 {
        return pcap.to_vec();
    }
    let max_cut = (pcap.len() / 4).max(1);
    let cut = rng.gen_range(1..=max_cut);
    pcap[..pcap.len() - cut].to_vec()
}

fn flip_bytes<R: RngCore>(pcap: &[u8], rng: &mut R) -> Vec<u8> {
    let mut out = pcap.to_vec();
    // Leave the 24-byte global header alone so the file stays
    // recognizable as a capture; bit rot inside the header is the
    // unrecognizable-input case, covered separately.
    if out.len() <= 24 {
        return out;
    }
    let flips = rng.gen_range(1..=16usize);
    for _ in 0..flips {
        let at = rng.gen_range(24..out.len());
        out[at] ^= 1 << rng.gen_range(0..8u8);
    }
    out
}

fn drop_packets<R: RngCore>(packets: &mut Vec<Packet>, rng: &mut R) {
    let keep_one = rng.gen_range(0..packets.len());
    let mut i = 0;
    packets.retain(|_| {
        let keep = i == keep_one || !rng.gen_bool(0.2);
        i += 1;
        keep
    });
}

fn duplicate_packets<R: RngCore>(packets: &mut Vec<Packet>, rng: &mut R) {
    let mut out = Vec::with_capacity(packets.len() + packets.len() / 4);
    for p in packets.drain(..) {
        let dup = rng.gen_bool(0.2);
        if dup {
            out.push(p.clone());
        }
        out.push(p);
    }
    *packets = out;
}

fn reorder_packets<R: RngCore>(packets: &mut [Packet], rng: &mut R) {
    use rand::seq::SliceRandom;
    for window in packets.chunks_mut(4) {
        window.shuffle(rng);
    }
}

/// Offset of the TCP header within an Ethernet/IPv4 frame, when the
/// frame is long enough to hold one.
fn tcp_header_offset(frame: &[u8]) -> Option<usize> {
    if frame.len() < 14 + 20 {
        return None;
    }
    let ihl = usize::from(frame[14] & 0x0f) * 4;
    let off = 14 + ihl;
    if ihl < 20 || frame.len() < off + 20 {
        return None;
    }
    Some(off)
}

fn corrupt_tcp_seq<R: RngCore>(packets: &mut [Packet], rng: &mut R) {
    for p in packets.iter_mut() {
        if !rng.gen_bool(0.2) {
            continue;
        }
        if let Some(off) = tcp_header_offset(&p.data) {
            let bogus: u32 = rng.gen();
            p.data[off + 4..off + 8].copy_from_slice(&bogus.to_be_bytes());
        }
    }
}

fn corrupt_tcp_flags<R: RngCore>(packets: &mut [Packet], rng: &mut R) {
    for p in packets.iter_mut() {
        if !rng.gen_bool(0.2) {
            continue;
        }
        if let Some(off) = tcp_header_offset(&p.data) {
            p.data[off + 13] ^= rng.gen_range(1..32u8);
        }
    }
}

/// Byte offset of `needle` within `hay`, if present.
fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

fn mangle_request_lines<R: RngCore>(packets: &mut [Packet], rng: &mut R) {
    for p in packets.iter_mut() {
        let Some(off) = tcp_header_offset(&p.data) else { continue };
        let payload_at = off + 20;
        let is_request = [&b"GET "[..], b"POST ", b"HEAD "]
            .iter()
            .any(|m| p.data[payload_at..].starts_with(m));
        if !is_request || !rng.gen_bool(0.5) {
            continue;
        }
        // Erase the space before the URI: the request line no longer
        // splits into method + uri + version.
        if let Some(sp) = p.data[payload_at..].iter().position(|&b| b == b' ') {
            p.data[payload_at + sp] = b'_';
        }
    }
}

fn break_framing<R: RngCore>(packets: &mut [Packet], rng: &mut R) {
    for p in packets.iter_mut() {
        let Some(off) = tcp_header_offset(&p.data) else { continue };
        let payload_at = off + 20;
        if !p.data[payload_at..].starts_with(b"HTTP/") || !rng.gen_bool(0.5) {
            continue;
        }
        let payload = &mut p.data[payload_at..];
        // Chunked responses: corrupt the first chunk-size line after the
        // head. Otherwise make the declared Content-Length non-numeric,
        // which breaks body framing the same way.
        if let Some(head_end) = find(payload, b"\r\n\r\n") {
            if find(payload, b"chunked").is_some() && payload.len() > head_end + 4 {
                payload[head_end + 4] = b'Z';
                continue;
            }
        }
        if let Some(cl) = find(payload, b"Content-Length: ") {
            let digit = cl + b"Content-Length: ".len();
            if digit < payload.len() {
                payload[digit] = b'x';
            }
        }
    }
}

fn corrupt_gzip<R: RngCore>(packets: &mut [Packet], _rng: &mut R) {
    for p in packets.iter_mut() {
        let Some(off) = tcp_header_offset(&p.data) else { continue };
        let payload_at = off + 20;
        let Some(magic) = find(&p.data[payload_at..], &[0x1f, 0x8b, 0x08]) else { continue };
        let stream_at = payload_at + magic;
        // Flip a byte past the 10-byte member header, inside the
        // deflate stream, so decompression fails mid-body. Gzip bodies
        // are rare enough that every one found gets corrupted.
        if stream_at + 12 < p.data.len() {
            p.data[stream_at + 11] ^= 0xff;
        }
    }
}

fn mid_stream_start<R: RngCore>(packets: &mut Vec<Packet>, rng: &mut R) {
    if packets.len() < 2 {
        return;
    }
    let skip = rng.gen_range(1..=packets.len() / 2);
    packets.drain(..skip);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::generate_infection;
    use crate::families::EkFamily;
    use crate::pcapgen::episode_pcap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_pcap(seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let ep = generate_infection(&mut rng, EkFamily::Rig, 1.4e9);
        episode_pcap(&ep).unwrap()
    }

    #[test]
    fn every_fault_changes_the_capture() {
        // Content-dependent faults (gzip, chunked) need an episode that
        // actually carries that content, so sample a few.
        let pcaps: Vec<Vec<u8>> = (1..=5).map(sample_pcap).collect();
        for fault in Fault::ALL {
            let changed = pcaps.iter().any(|pcap| {
                let mut rng = StdRng::seed_from_u64(7);
                apply(pcap, fault, &mut rng) != *pcap
            });
            assert!(changed, "{fault} was a no-op on {} sample captures", pcaps.len());
        }
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let pcap = sample_pcap(2);
        for fault in Fault::ALL {
            let a = apply(&pcap, fault, &mut StdRng::seed_from_u64(11));
            let b = apply(&pcap, fault, &mut StdRng::seed_from_u64(11));
            assert_eq!(a, b, "{fault} not reproducible");
        }
    }

    #[test]
    fn packet_level_faults_keep_a_readable_capture() {
        let pcap = sample_pcap(3);
        for fault in [
            Fault::DropPackets,
            Fault::DuplicatePackets,
            Fault::ReorderPackets,
            Fault::CorruptTcpSeq,
            Fault::CorruptTcpFlags,
            Fault::MangleRequestLines,
            Fault::BreakChunkFraming,
            Fault::CorruptGzipStreams,
            Fault::MidStreamStart,
        ] {
            let mut rng = StdRng::seed_from_u64(13);
            let hurt = apply(&pcap, fault, &mut rng);
            let packets = nettrace::capture::read_packets(&hurt)
                .unwrap_or_else(|e| panic!("{fault}: {e}"));
            assert!(!packets.is_empty(), "{fault} emptied the capture");
        }
    }

    #[test]
    fn compound_damage_still_produces_bytes() {
        let pcap = sample_pcap(4);
        let mut rng = StdRng::seed_from_u64(17);
        let hurt = apply_all(&pcap, &mut rng);
        assert!(!hurt.is_empty());
    }

    #[test]
    fn unparseable_input_passes_through() {
        let mut rng = StdRng::seed_from_u64(19);
        let junk = b"not a capture at all".to_vec();
        assert_eq!(apply(&junk, Fault::DropPackets, &mut rng), junk);
    }
}

