//! Ground-truth and validation corpus builders plus Table I-style summary
//! statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::benign::{generate_benign, BenignScenario};
use crate::episode::{generate_infection, Episode, EpisodeLabel};
use crate::families::EkFamily;
use nettrace::payload::PayloadClass;

/// Epoch seconds for 2013-06-01 (start of the infection window).
pub const INFECTION_WINDOW_START: f64 = 1_370_044_800.0;
/// Epoch seconds for 2016-07-01 (end of the infection window).
pub const INFECTION_WINDOW_END: f64 = 1_467_331_200.0;
/// Epoch seconds for 2015-05-01 (start of the benign window).
pub const BENIGN_WINDOW_START: f64 = 1_430_438_400.0;
/// Epoch seconds for 2016-05-01 (end of the benign window).
pub const BENIGN_WINDOW_END: f64 = 1_462_060_800.0;

/// Builds the ground-truth corpus: per-family infection counts from
/// Table I (770 infections total) plus 980 benign traces, both scaled by
/// `scale` (use 1.0 for the paper-sized corpus, smaller for quick tests).
/// Episodes are returned infections-first, then benign, each internally in
/// generation order.
pub fn ground_truth(seed: u64, scale: f64) -> Vec<Episode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut episodes = Vec::new();
    for family in EkFamily::ALL {
        let count = scaled(family.profile().ground_truth_pcaps, scale);
        for _ in 0..count {
            episodes.push(infection_trace(&mut rng, family));
        }
    }
    let benign_count = scaled(980, scale);
    for _ in 0..benign_count {
        episodes.push(benign_session(&mut rng));
    }
    episodes
}

/// One benign trace: a single scenario half the time, otherwise a
/// multi-tab session merging 2–3 scenarios (Sec. II-A keeps multiple tabs
/// open during collection).
fn benign_session(rng: &mut StdRng) -> Episode {
    let ts = rng.gen_range(BENIGN_WINDOW_START..BENIGN_WINDOW_END);
    let tabs = if rng.gen_bool(0.5) { 1 } else { rng.gen_range(2..=3) };
    let eps: Vec<Episode> = (0..tabs)
        .map(|i| {
            let scenario = BenignScenario::sample(rng);
            generate_benign(rng, scenario, ts + i as f64)
        })
        .collect();
    crate::benign::merge_sessions(rng, eps)
}

/// Builds the held-out validation corpus of Sec. VI-B: 7489 infections
/// (family mix re-sampled with Table I weights, standing in for the
/// ThreatGlass feed) and 1500 benign traces, scaled by `scale`. Uses a
/// seed space disjoint from [`ground_truth`] so no episode is shared.
pub fn validation_set(seed: u64, scale: f64) -> Vec<Episode> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0f5a_11da_7a5e);
    let mut episodes = Vec::new();
    for _ in 0..scaled(7489, scale) {
        let family = EkFamily::sample_weighted(&mut rng);
        episodes.push(infection_trace(&mut rng, family));
    }
    for _ in 0..scaled(1500, scale) {
        episodes.push(benign_session(&mut rng));
    }
    episodes
}

/// One infection trace: the exploit-kit conversation plus — in roughly
/// half the traces — a concurrent benign browsing tab. The paper
/// emphasizes that infection dynamics arrive "buried in benign
/// background traffic"; the ensemble's tree substructures are what keep
/// the infection dynamics recognizable inside the noise.
fn infection_trace(rng: &mut StdRng, family: EkFamily) -> Episode {
    let ts = rng.gen_range(INFECTION_WINDOW_START..INFECTION_WINDOW_END);
    let infection = generate_infection(rng, family, ts);
    if rng.gen_bool(0.55) {
        let scenario = BenignScenario::sample(rng);
        let mut tab = generate_benign(rng, scenario, ts);
        tab.transactions.truncate(12); // the tab idles once the infection unfolds
        crate::benign::merge_sessions(rng, vec![infection, tab])
    } else {
        infection
    }
}

fn scaled(count: usize, scale: f64) -> usize {
    ((count as f64 * scale).round() as usize).max(1)
}

/// One Table I-style summary row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Row label ("Benign" or the family name).
    pub label: String,
    /// Number of episodes.
    pub episodes: usize,
    /// Host-count minimum / maximum / average.
    pub hosts: (usize, usize, f64),
    /// Redirect-count minimum / maximum / average.
    pub redirects: (usize, usize, f64),
    /// Payload counts `[pdf, exe, jar, swf, crypt, js]`.
    pub payload_counts: [usize; 6],
}

impl CorpusStats {
    /// Summarizes a set of episodes under one label.
    ///
    /// # Panics
    ///
    /// Panics when `episodes` is empty.
    pub fn summarize(label: &str, episodes: &[&Episode]) -> CorpusStats {
        assert!(!episodes.is_empty(), "cannot summarize zero episodes");
        let hosts: Vec<usize> = episodes.iter().map(|e| e.unique_hosts()).collect();
        let redirects: Vec<usize> = episodes.iter().map(|e| e.redirect_count()).collect();
        let mut payload_counts = [0usize; 6];
        for ep in episodes {
            for tx in &ep.transactions {
                let slot = match tx.payload_class {
                    PayloadClass::Pdf => 0,
                    PayloadClass::Exe => 1,
                    PayloadClass::Jar => 2,
                    PayloadClass::Swf => 3,
                    PayloadClass::Crypt => 4,
                    PayloadClass::Js => 5,
                    _ => continue,
                };
                payload_counts[slot] += 1;
            }
        }
        CorpusStats {
            label: label.to_string(),
            episodes: episodes.len(),
            hosts: min_max_avg(&hosts),
            redirects: min_max_avg(&redirects),
            payload_counts,
        }
    }

    /// Summarizes a full corpus into Table I rows: one "Benign" row plus
    /// one per family, in Table I order.
    pub fn table_rows(corpus: &[Episode]) -> Vec<CorpusStats> {
        let mut rows = Vec::new();
        let benign: Vec<&Episode> = corpus.iter().filter(|e| !e.is_infection()).collect();
        if !benign.is_empty() {
            rows.push(CorpusStats::summarize("Benign", &benign));
        }
        for family in EkFamily::ALL {
            let members: Vec<&Episode> = corpus
                .iter()
                .filter(|e| e.label == EpisodeLabel::Infection(family))
                .collect();
            if !members.is_empty() {
                rows.push(CorpusStats::summarize(family.name(), &members));
            }
        }
        rows
    }
}

fn min_max_avg(values: &[usize]) -> (usize, usize, f64) {
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let avg = values.iter().sum::<usize>() as f64 / values.len() as f64;
    (min, max, avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_counts_round_and_floor_at_one() {
        assert_eq!(scaled(980, 1.0), 980);
        assert_eq!(scaled(980, 0.1), 98);
        assert_eq!(scaled(19, 0.01), 1);
    }

    #[test]
    fn ground_truth_mix_matches_table1_at_scale() {
        let corpus = ground_truth(42, 0.1);
        let infections = corpus.iter().filter(|e| e.is_infection()).count();
        let benign = corpus.len() - infections;
        assert_eq!(benign, 98);
        assert_eq!(infections, 76); // Σ round(counts · 0.1): 25+6+13+4+3+3+4+2+9+7
        // Angler should be the largest family.
        let angler = corpus
            .iter()
            .filter(|e| e.label == EpisodeLabel::Infection(EkFamily::Angler))
            .count();
        assert_eq!(angler, 25);
    }

    #[test]
    fn corpora_are_deterministic() {
        let a = ground_truth(7, 0.02);
        let b = ground_truth(7, 0.02);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.transactions.len(), y.transactions.len());
            assert_eq!(x.start_ts, y.start_ts);
        }
    }

    #[test]
    fn validation_set_is_disjoint_in_content() {
        let gt = ground_truth(7, 0.02);
        let val = validation_set(7, 0.01);
        let gt_digests: std::collections::HashSet<u64> = gt
            .iter()
            .flat_map(|e| e.transactions.iter().map(|t| t.payload_digest))
            .filter(|&d| d != nettrace::transaction::fnv1a(b""))
            .collect();
        let overlap = val
            .iter()
            .flat_map(|e| e.transactions.iter().map(|t| t.payload_digest))
            .filter(|d| gt_digests.contains(d))
            .count();
        assert_eq!(overlap, 0, "validation payloads must be fresh");
    }

    #[test]
    fn table_rows_cover_benign_and_all_families() {
        let corpus = ground_truth(3, 0.05);
        let rows = CorpusStats::table_rows(&corpus);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].label, "Benign");
        assert_eq!(rows[1].label, "Angler");
    }

    #[test]
    fn stats_reflect_calibration_direction() {
        // Infections must out-redirect and out-host benign traffic on
        // average — the core contrast the classifier exploits.
        let corpus = ground_truth(11, 0.1);
        let rows = CorpusStats::table_rows(&corpus);
        let benign = &rows[0];
        let angler = rows.iter().find(|r| r.label == "Angler").unwrap();
        assert!(angler.hosts.2 > benign.hosts.2, "hosts {} vs {}", angler.hosts.2, benign.hosts.2);
        assert!(angler.redirects.2 > benign.redirects.2);
        // Benign row: js present, crypt absent (Table I benign row shape).
        assert_eq!(benign.payload_counts[4], 0, "benign crypt payloads");
    }

    #[test]
    fn calibration_tracks_table1_bands() {
        // Regression guard: per-family averages must stay within loose
        // bands of Table I so experiment binaries remain comparable run
        // over run. (Generator changes that move these bands should be
        // deliberate, with EXPERIMENTS.md updated.)
        let corpus = ground_truth(42, 0.15);
        let rows = CorpusStats::table_rows(&corpus);
        let benign = &rows[0];
        assert!(benign.hosts.2 < 10.0, "benign avg hosts {}", benign.hosts.2);
        assert!(benign.redirects.2 < 1.0, "benign avg redirects {}", benign.redirects.2);
        assert!(benign.redirects.1 <= 4, "benign max redirects {}", benign.redirects.1);
        let by_name = |n: &str| rows.iter().find(|r| r.label == n).unwrap();
        // Magnitude is the download-heaviest family by an integer factor.
        let magnitude = by_name("Magnitude");
        let rig = by_name("RIG");
        assert!(magnitude.hosts.2 > 2.0 * rig.hosts.2,
            "magnitude {} vs rig {}", magnitude.hosts.2, rig.hosts.2);
        // Infection redirect averages sit in Table I's 1–3 band for the
        // large families (small families like Goon have only a handful of
        // traces at this scale, so their mean is too noisy to band).
        for family in ["Angler", "Nuclear"] {
            let row = by_name(family);
            assert!(
                (0.5..=3.5).contains(&row.redirects.2),
                "{family} avg redirects {}",
                row.redirects.2
            );
        }
        assert!(by_name("Goon").redirects.2 <= 8.0, "goon {}", by_name("Goon").redirects.2);
    }

    #[test]
    fn infection_timestamps_fall_in_window() {
        for ep in ground_truth(5, 0.02).iter().filter(|e| e.is_infection()) {
            assert!(ep.start_ts >= INFECTION_WINDOW_START && ep.start_ts < INFECTION_WINDOW_END);
        }
    }
}
