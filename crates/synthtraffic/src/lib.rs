//! Synthetic HTTP traffic calibrated to the DynaMiner ground truth.
//!
//! The paper trains on 770 real exploit-kit infection PCAPs (9 families,
//! 06/2013–07/2016, from malware-traffic-analysis.net) and 980 benign
//! browsing PCAPs. Those captures are not redistributable, so this crate
//! generates statistically equivalent episodes:
//!
//! * [`families`] — per-family profiles calibrated to **Table I** (host
//!   counts, redirect-chain lengths, payload-type mixes) and to the global
//!   properties of Sec. III-D (10 nodes avg / 2–404, 46 edges avg /
//!   2–1778, 123 s mean lifetime / 0.5–4061 s),
//! * [`entice`] — the enticement-origin distribution of **Figures 1–2**
//!   (search engines 62 %, compromised sites 12.84 %, empty referrers
//!   17.76 %, …),
//! * [`episode`] — infection episodes with the paper's three-stage
//!   structure: pre-download redirection (Location headers, meta-refresh,
//!   and base64-obfuscated JavaScript redirects), exploit payload
//!   downloads, and post-download C&C call-backs to never-before-seen
//!   hosts (92 % of traces),
//! * [`benign`] — benign scenarios matching Sec. II-A's collection
//!   methodology (search, social, webmail with attachments, video,
//!   Alexa-random browsing) plus the false-positive-inducing cases of
//!   Sec. VI-B (unofficial download sites, torrent sessions with
//!   246 MB–1.1 GB payloads),
//! * [`corpus`] — ground-truth and held-out validation corpus builders,
//! * [`drift`] — graduated adversarial-drift transforms (redirect-chain
//!   shortening, benign mimicry, payload-type shifts, stepped evasions)
//!   that walk a family's parameters over simulated time,
//! * [`pcapgen`] — serializing an episode to real pcap bytes so the
//!   `nettrace` parsing pipeline is exercised end-to-end,
//! * [`wire`] — the loopback replay harness: a replay origin server, a
//!   sequential episode driver, and merged episode sets with globally
//!   unique client ports and pcap-quantized timestamps, so wire-proxy
//!   observation and offline pcap analysis of the same episodes can be
//!   compared field-for-field,
//! * [`faultgen`] — seeded capture mutation (truncation, bit rot, packet
//!   loss, TCP and HTTP corruption) for fault-injection testing of the
//!   lenient ingest pipeline.
//!
//! All generation is deterministic given a seed.

pub mod benign;
pub mod corpus;
pub mod drift;
pub mod entice;
pub mod episode;
pub mod evasion;
pub mod families;
pub mod faultgen;
pub mod hostgen;
pub mod pcapgen;
pub mod wire;

pub use corpus::{ground_truth, validation_set, CorpusStats};
pub use drift::DriftKnobs;
pub use entice::Enticement;
pub use episode::{Episode, EpisodeLabel};
pub use families::EkFamily;

pub use benign::BenignScenario;
