//! Benign browsing scenarios matching the paper's collection methodology
//! (Sec. II-A) and its false-positive analysis (Sec. VI-B).

use nettrace::http::Method;
use nettrace::payload::PayloadClass;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::entice::Enticement;
use crate::episode::{Episode, EpisodeLabel, TxFactory, TxSpec, MATERIALIZE_LIMIT};
use crate::hostgen;

/// The benign browsing scenarios used to build the infection-free corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BenignScenario {
    /// Google/Bing searching plus clicking top results.
    Search,
    /// Facebook/Twitter browsing with shared-link clicks.
    Social,
    /// Webmail (Gmail/Yahoo) with attachment downloads (PDF, executables,
    /// office documents).
    Webmail,
    /// YouTube watching plus advertisement clicks.
    Video,
    /// Visits to randomly selected Alexa-top-1M sites.
    AlexaBrowse,
    /// Software update from an official vendor host (weeded out by the
    /// detector's trusted-vendor list).
    SoftwareUpdate,
    /// Benign content fetched from an unofficial download site — the
    /// paper's main false-positive source (37 of 49 FPs).
    UnofficialDownload,
    /// Long torrent/video session with 246 MB–1.1 GB payloads — the
    /// paper's second false-positive source (12 of 49 FPs).
    TorrentSession,
}

impl BenignScenario {
    /// All scenarios with their corpus weights (fractions of the 980
    /// benign traces; the FP-inducing scenarios are deliberately rare).
    pub const WEIGHTED: [(BenignScenario, f64); 8] = [
        (BenignScenario::Search, 0.28),
        (BenignScenario::Social, 0.15),
        (BenignScenario::Webmail, 0.15),
        (BenignScenario::Video, 0.12),
        (BenignScenario::AlexaBrowse, 0.20),
        (BenignScenario::SoftwareUpdate, 0.04),
        (BenignScenario::UnofficialDownload, 0.04),
        (BenignScenario::TorrentSession, 0.02),
    ];

    /// Scenario display label.
    pub fn label(self) -> &'static str {
        match self {
            BenignScenario::Search => "search",
            BenignScenario::Social => "social",
            BenignScenario::Webmail => "webmail",
            BenignScenario::Video => "video",
            BenignScenario::AlexaBrowse => "alexa-browse",
            BenignScenario::SoftwareUpdate => "software-update",
            BenignScenario::UnofficialDownload => "unofficial-download",
            BenignScenario::TorrentSession => "torrent-session",
        }
    }

    /// Samples a scenario with the corpus weights.
    pub fn sample<R: Rng>(rng: &mut R) -> BenignScenario {
        let mut x: f64 = rng.gen_range(0.0..1.0);
        for (s, w) in BenignScenario::WEIGHTED {
            x -= w;
            if x <= 0.0 {
                return s;
            }
        }
        BenignScenario::AlexaBrowse
    }
}

/// Official vendor hosts used by [`BenignScenario::SoftwareUpdate`]; the
/// DynaMiner detector treats these as trusted sources.
pub const VENDOR_HOSTS: [&str; 5] = [
    "download.windowsupdate.com",
    "swcdn.apple.com",
    "archive.ubuntu.com",
    "dl.google.com",
    "download.mozilla.org",
];

struct SiteVisit<'a> {
    host: &'a str,
    referer: Option<String>,
    resources: usize,
}

/// Fetches a page plus `resources` subresources (js/css/images) from
/// `host`, advancing `t` with benign-paced delays.
fn visit_site<R: Rng>(
    rng: &mut R,
    fac: &mut TxFactory,
    txs: &mut Vec<nettrace::HttpTransaction>,
    t: &mut f64,
    visit: SiteVisit<'_>,
) -> String {
    let uri = hostgen::benign_uri(rng);
    let body = hostgen::payload_body(rng, PayloadClass::Html, 2048);
    let size = rng.gen_range(2_000..80_000);
    // A quarter of page loads are direct navigations (typed URL,
    // bookmark): the browser sends no referrer.
    let referer = visit.referer.filter(|_| rng.gen_bool(0.75));
    txs.push(fac.tx(rng, TxSpec {
        ts: *t,
        method: Method::Get,
        host: visit.host,
        uri: uri.clone(),
        referer,
        status: 200,
        payload_class: PayloadClass::Html,
        payload_size: size,
        body,
        location: None,
        cookie: None,
    }));
    let page_url = format!("http://{}{uri}", visit.host);
    *t += rng.gen_range(2.0..10.0);
    for _ in 0..visit.resources {
        let class = match rng.gen_range(0..10) {
            0..=4 => PayloadClass::Image,
            5..=7 => PayloadClass::Js,
            _ => PayloadClass::Css,
        };
        let rsize = hostgen::payload_size(rng, class);
        let rbody = hostgen::payload_body(rng, class, rsize.min(MATERIALIZE_LIMIT));
        let ruri = hostgen::payload_uri(rng, class);
        let rstatus = if rng.gen_bool(0.95) { 200 } else { 404 };
        // A third of subresources come from third-party CDN/ad/analytics
        // domains — ordinary pages fan out across many hosts, which is
        // why benign conversations reach up to 34 hosts in Table I.
        let third_party = if rng.gen_bool(0.15) { Some(hostgen::random_domain(rng)) } else { None };
        let rhost: &str = third_party.as_deref().unwrap_or(visit.host);
        txs.push(fac.tx(rng, TxSpec {
            ts: *t,
            method: Method::Get,
            host: rhost,
            uri: ruri,
            referer: Some(page_url.clone()),
            status: rstatus,
            payload_class: class,
            payload_size: rsize,
            body: rbody,
            location: None,
            cookie: None,
        }));
        *t += rng.gen_range(0.3..2.5);
    }
    // Analytics beacon: ordinary sites POST telemetry back to themselves
    // (keeps the POST count from being a trivial benign/infection
    // separator; the discriminating signal is *where* infections POST).
    if rng.gen_bool(0.3) {
        let body = hostgen::payload_body(rng, PayloadClass::Json, 128);
        let blen = body.len();
        let bstatus = if rng.gen_bool(0.8) { 204 } else { 200 };
        txs.push(fac.tx(rng, TxSpec {
            ts: *t,
            method: Method::Post,
            host: visit.host,
            uri: "/beacon".to_string(),
            referer: Some(page_url.clone()),
            status: bstatus,
            payload_class: PayloadClass::Json,
            payload_size: blen,
            body,
            location: None,
            cookie: None,
        }));
        *t += rng.gen_range(0.1..1.0);
    }
    page_url
}

/// Adds a single download transaction of `class` and declared `size`.
#[allow(clippy::too_many_arguments)]
fn download<R: Rng>(
    rng: &mut R,
    fac: &mut TxFactory,
    txs: &mut Vec<nettrace::HttpTransaction>,
    t: &mut f64,
    host: &str,
    referer: Option<String>,
    class: PayloadClass,
    size: usize,
) {
    let body = hostgen::payload_body(rng, class, size.min(MATERIALIZE_LIMIT));
    let uri = hostgen::payload_uri(rng, class);
    txs.push(fac.tx(rng, TxSpec {
        ts: *t,
        method: Method::Get,
        host,
        uri,
        referer,
        status: 200,
        payload_class: class,
        payload_size: size,
        body,
        location: None,
        cookie: None,
    }));
    *t += rng.gen_range(1.0..10.0);
}


/// Merges several single-scenario episodes into one multi-tab session:
/// every transaction is rebound to the first episode's victim and the
/// later episodes' timelines are shifted to overlap the first's. This
/// mirrors the paper's collection methodology — "in all the browsing
/// sessions, we keep multiple tabs open in the browser" — and is what
/// spreads benign per-conversation counts across the wide ranges of
/// Table I (2–34 hosts).
pub fn merge_sessions<R: Rng>(rng: &mut R, episodes: Vec<Episode>) -> Episode {
    let mut iter = episodes.into_iter();
    let mut base = iter.next().expect("at least one episode to merge");
    let base_duration = base.duration().max(1.0);
    for ep in iter {
        base.malicious_digests.extend(ep.malicious_digests.iter().copied());
        let offset = base.start_ts + rng.gen_range(0.0..base_duration) - ep.start_ts;
        for mut tx in ep.transactions {
            tx.ts += offset;
            tx.resp_ts += offset;
            tx.client = nettrace::reassembly::Endpoint::new(base.victim.addr, tx.client.port);
            base.transactions.push(tx);
        }
    }
    base.transactions.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    base
}

/// Generates one benign episode of `scenario` starting at `start_ts`.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use synthtraffic::{benign::generate_benign, BenignScenario};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let ep = generate_benign(&mut rng, BenignScenario::Search, 1.45e9);
/// assert!(!ep.is_infection());
/// assert!(ep.malicious_digests.is_empty());
/// ```
pub fn generate_benign<R: Rng>(rng: &mut R, scenario: BenignScenario, start_ts: f64) -> Episode {
    let mut fac = TxFactory::new(rng);
    let mut txs = Vec::new();
    let mut t = start_ts;
    let mut enticement = Enticement::EmptyReferrer;

    match scenario {
        BenignScenario::Search => {
            let engine = if rng.gen_bool(0.6) { "www.google.com" } else { "www.bing.com" };
            enticement = if engine.contains("google") {
                Enticement::GoogleSearch
            } else {
                Enticement::BingSearch
            };
            let q = format!("/search?q={}", hostgen::random_token(rng, 7));
            let body = hostgen::payload_body(rng, PayloadClass::Html, 2048);
            txs.push(fac.tx(rng, TxSpec {
                ts: t,
                method: Method::Get,
                host: engine,
                uri: q.clone(),
                referer: None,
                status: 200,
                payload_class: PayloadClass::Html,
                payload_size: 30_000,
                body,
                location: None,
                cookie: None,
            }));
            let search_url = format!("http://{engine}{q}");
            t += rng.gen_range(4.0..20.0);
            let mut redirect_budget = 2usize; // Table I: benign redirects max out at 2
            for _ in 0..rng.gen_range(1..4) {
                let site = hostgen::random_domain(rng);
                // Search engines bounce result clicks through a tracking
                // redirect (one hop — the benign redirect ceiling in
                // Table I is 2).
                if redirect_budget > 0 && rng.gen_bool(0.18) {
                    redirect_budget -= 1;
                    let target = format!("http://{site}{}", hostgen::benign_uri(rng));
                    txs.push(fac.tx(rng, TxSpec {
                        ts: t,
                        method: Method::Get,
                        host: engine,
                        uri: format!("/url?q={site}"),
                        referer: Some(search_url.clone()),
                        status: 302,
                        payload_class: PayloadClass::Empty,
                        payload_size: 0,
                        body: Vec::new(),
                        location: Some(target),
                        cookie: None,
                    }));
                    t += rng.gen_range(0.2..1.0);
                }
                let res_count_0 = rng.gen_range(1..5);
                visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                    host: &site,
                    referer: Some(search_url.clone()),
                    resources: res_count_0,
                });
                t += rng.gen_range(3.0..15.0);
            }
        }
        BenignScenario::Social => {
            enticement = Enticement::SocialNetwork;
            let network = if rng.gen_bool(0.7) { "www.facebook.com" } else { "twitter.com" };
            let res_count_1 = rng.gen_range(2..6);
            let feed_url = visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                host: network,
                referer: None,
                resources: res_count_1,
            });
            let mut redirect_budget = 2usize; // Table I: benign redirects max out at 2
            for _ in 0..rng.gen_range(0..5) {
                let shared = hostgen::random_domain(rng);
                t += rng.gen_range(5.0..20.0);
                // Social networks shim outbound links through a redirect
                // endpoint (Facebook's l.php), so benign conversations do
                // contain short host-to-host hops.
                if redirect_budget > 0 && rng.gen_bool(0.3) {
                    redirect_budget -= 1;
                    let target = format!("http://{shared}{}", hostgen::benign_uri(rng));
                    txs.push(fac.tx(rng, TxSpec {
                        ts: t,
                        method: Method::Get,
                        host: network,
                        uri: format!("/l.php?u={shared}"),
                        referer: Some(feed_url.clone()),
                        status: 302,
                        payload_class: PayloadClass::Empty,
                        payload_size: 0,
                        body: Vec::new(),
                        location: Some(target),
                        cookie: None,
                    }));
                    t += rng.gen_range(0.2..1.0);
                }
                let res_count_2 = rng.gen_range(1..4);
                visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                    host: &shared,
                    referer: Some(feed_url.clone()),
                    resources: res_count_2,
                });
            }
        }
        BenignScenario::Webmail => {
            let mail = if rng.gen_bool(0.6) { "mail.google.com" } else { "mail.yahoo.com" };
            let res_count_3 = rng.gen_range(2..5);
            let mail_url = visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                host: mail,
                referer: None,
                resources: res_count_3,
            });
            // Attachment downloads: PDFs dominate, executables and office
            // docs occur (Table I benign row: 60 pdf / 30 exe / 980).
            if rng.gen_bool(0.35) {
                let class = match rng.gen_range(0..10) {
                    0..=4 => PayloadClass::Pdf,
                    5..=6 => PayloadClass::Exe,
                    7 => PayloadClass::Jar,
                    _ => PayloadClass::Other,
                };
                let size = hostgen::payload_size(rng, class);
                download(rng, &mut fac, &mut txs, &mut t, mail, Some(mail_url.clone()), class, size);
            }
            // Clicking a link embedded in an email.
            if rng.gen_bool(0.4) {
                let site = hostgen::random_domain(rng);
                t += rng.gen_range(2.0..10.0);
                let res_count_4 = rng.gen_range(1..4);
                visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                    host: &site,
                    referer: None, // mail clients strip referrers
                    resources: res_count_4,
                });
            }
        }
        BenignScenario::Video => {
            let res_count_5 = rng.gen_range(2..6);
            let video_url = visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                host: "www.youtube.com",
                referer: None,
                resources: res_count_5,
            });
            // Video segments arrive machine-paced, back to back — benign
            // traffic is not uniformly slow, which keeps timing features
            // from separating the classes on their own.
            for _ in 0..rng.gen_range(3..8) {
                let size = rng.gen_range(500_000..4_000_000);
                let body = hostgen::payload_body(rng, PayloadClass::Other, 512);
                let uri = hostgen::payload_uri(rng, PayloadClass::Other);
                txs.push(fac.tx(rng, TxSpec {
                    ts: t,
                    method: Method::Get,
                    host: "r4.googlevideo.com",
                    uri,
                    referer: Some(video_url.clone()),
                    status: 200,
                    payload_class: PayloadClass::Other,
                    payload_size: size,
                    body,
                    location: None,
                    cookie: None,
                }));
                t += rng.gen_range(0.2..1.2);
            }
            // Ad click with a short (≤2) redirect chain — the benign
            // redirect ceiling in Table I (benign averages 0 redirects).
            if rng.gen_bool(0.25) {
                let ad_host = hostgen::random_domain(rng);
                let lander = hostgen::random_domain(rng);
                let target = format!("http://{lander}{}", hostgen::benign_uri(rng));
                txs.push(fac.tx(rng, TxSpec {
                    ts: t,
                    method: Method::Get,
                    host: &ad_host,
                    uri: "/click?ad=1".to_string(),
                    referer: Some(video_url.clone()),
                    status: 302,
                    payload_class: PayloadClass::Empty,
                    payload_size: 0,
                    body: Vec::new(),
                    location: Some(target),
                    cookie: None,
                }));
                t += rng.gen_range(0.5..2.0);
                let res_count_6 = rng.gen_range(1..4);
                visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                    host: &lander,
                    referer: Some(format!("http://{ad_host}/click?ad=1")),
                    resources: res_count_6,
                });
            }
        }
        BenignScenario::AlexaBrowse => {
            for _ in 0..rng.gen_range(1..4) {
                let site = hostgen::random_domain(rng);
                let res_count_7 = rng.gen_range(1..8);
                visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                    host: &site,
                    referer: None,
                    resources: res_count_7,
                });
                t += rng.gen_range(5.0..30.0);
            }
        }
        BenignScenario::SoftwareUpdate => {
            let vendor = VENDOR_HOSTS[rng.gen_range(0..VENDOR_HOSTS.len())];
            let size = rng.gen_range(5_000_000..80_000_000);
            download(rng, &mut fac, &mut txs, &mut t, vendor, None, PayloadClass::Exe, size);
            // Follow-up metadata check.
            let body = hostgen::payload_body(rng, PayloadClass::Json, 256);
            let blen = body.len();
            txs.push(fac.tx(rng, TxSpec {
                ts: t,
                method: Method::Get,
                host: vendor,
                uri: "/manifest.json".to_string(),
                referer: None,
                status: 200,
                payload_class: PayloadClass::Json,
                payload_size: blen,
                body,
                location: None,
                cookie: None,
            }));
        }
        BenignScenario::UnofficialDownload => {
            // Search → unofficial mirror → (up to 2 redirects) → binary.
            enticement = Enticement::GoogleSearch;
            let search_url = visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                host: "www.google.com",
                referer: None,
                resources: 0,
            });
            let mirror = hostgen::random_domain(rng);
            let mut dl_host = mirror.clone();
            let mut referer = Some(search_url);
            for _ in 0..rng.gen_range(0..3usize) {
                let next = hostgen::random_domain(rng);
                let target = format!("http://{next}{}", hostgen::benign_uri(rng));
                let hop_uri = hostgen::benign_uri(rng);
                txs.push(fac.tx(rng, TxSpec {
                    ts: t,
                    method: Method::Get,
                    host: &dl_host,
                    uri: hop_uri,
                    referer: referer.clone(),
                    status: 302,
                    payload_class: PayloadClass::Empty,
                    payload_size: 0,
                    body: Vec::new(),
                    location: Some(target),
                    cookie: None,
                }));
                referer = Some(format!("http://{dl_host}/"));
                dl_host = next;
                t += rng.gen_range(0.3..2.0);
            }
            let class = if rng.gen_bool(0.7) { PayloadClass::Exe } else { PayloadClass::Archive };
            let size = rng.gen_range(1_000_000..50_000_000);
            download(rng, &mut fac, &mut txs, &mut t, &dl_host, referer, class, size);
        }
        BenignScenario::TorrentSession => {
            // Long sessions, many hosts, 246 MB – 1.1 GB payloads.
            let tracker = hostgen::random_domain(rng);
            let res_count_8 = rng.gen_range(1..4);
            visit_site(rng, &mut fac, &mut txs, &mut t, SiteVisit {
                host: &tracker,
                referer: None,
                resources: res_count_8,
            });
            for _ in 0..rng.gen_range(2..6) {
                let peer = hostgen::random_domain(rng);
                let size = rng.gen_range(246_000_000..1_100_000_000);
                t += rng.gen_range(30.0..600.0);
                download(rng, &mut fac, &mut txs, &mut t, &peer, None, PayloadClass::Other, size);
            }
        }
    }

    txs.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    // A quarter of benign sessions are machine-paced (prefetching,
    // background sync, automation): rescale their timeline so benign
    // timing overlaps the scripted infection range.
    if rng.gen_bool(0.10) {
        let pace = rng.gen_range(0.1..0.45);
        for tx in &mut txs {
            tx.ts = start_ts + pace * (tx.ts - start_ts);
            tx.resp_ts = start_ts + pace * (tx.resp_ts - start_ts);
        }
    }
    Episode {
        label: EpisodeLabel::Benign(scenario),
        transactions: txs,
        victim: fac.victim(),
        enticement,
        start_ts,
        malicious_digests: std::collections::BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(s: BenignScenario, seed: u64) -> Episode {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_benign(&mut rng, s, 1_430_000_000.0)
    }

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = BenignScenario::WEIGHTED.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_scenarios_produce_transactions() {
        for (s, _) in BenignScenario::WEIGHTED {
            let ep = gen(s, 3);
            assert!(!ep.transactions.is_empty(), "{}", s.label());
            assert!(!ep.is_infection());
            for w in ep.transactions.windows(2) {
                assert!(w[1].ts >= w[0].ts);
            }
        }
    }

    #[test]
    fn benign_redirect_chains_stay_short() {
        // Table I: benign redirects max out at 2.
        for seed in 0..40 {
            for (s, _) in BenignScenario::WEIGHTED {
                let redirects =
                    gen(s, seed).transactions.iter().filter(|t| t.is_redirect()).count();
                assert!(redirects <= 2, "{} seed {seed}: {redirects}", s.label());
            }
        }
    }

    #[test]
    fn benign_episodes_never_post_to_raw_ips() {
        for seed in 0..30 {
            for (s, _) in BenignScenario::WEIGHTED {
                for t in &gen(s, seed).transactions {
                    if t.method == Method::Post {
                        assert!(t.host.parse::<std::net::Ipv4Addr>().is_err());
                    }
                }
            }
        }
    }

    #[test]
    fn torrent_sessions_have_huge_payloads_and_long_duration() {
        let ep = gen(BenignScenario::TorrentSession, 1);
        let max_payload = ep.transactions.iter().map(|t| t.payload_size).max().unwrap();
        assert!(max_payload >= 246_000_000, "{max_payload}");
        assert!(ep.duration() > 60.0);
    }

    #[test]
    fn software_updates_come_from_vendor_hosts() {
        let ep = gen(BenignScenario::SoftwareUpdate, 2);
        let dl = ep
            .transactions
            .iter()
            .find(|t| t.payload_class == PayloadClass::Exe)
            .expect("update download");
        assert!(VENDOR_HOSTS.contains(&dl.host.as_str()), "{}", dl.host);
    }

    #[test]
    fn scenario_sampling_is_weighted() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let searches = (0..n)
            .filter(|_| BenignScenario::sample(&mut rng) == BenignScenario::Search)
            .count();
        let frac = searches as f64 / n as f64;
        assert!((frac - 0.28).abs() < 0.03, "search fraction {frac}");
    }

    #[test]
    fn webmail_sometimes_downloads_attachments() {
        let mut any_pdf = false;
        for seed in 0..60 {
            let ep = gen(BenignScenario::Webmail, seed);
            any_pdf |= ep.transactions.iter().any(|t| t.payload_class == PayloadClass::Pdf);
        }
        assert!(any_pdf, "no PDF attachment in 60 webmail episodes");
    }
}
