//! Adversarial drift transforms: graduated, per-episode cloaking.
//!
//! Where [`evasion`] models the paper's Sec. VII
//! strategies as all-or-nothing switches, real campaigns *walk*: over
//! months a family shortens its redirect chains a hop at a time, dresses
//! its infrastructure up as benign CDN traffic, and re-wraps payloads in
//! generic containers. [`DriftKnobs`] captures that walk as four
//! continuous dials in `[0, 1)`; [`apply_drift`] applies one sampled
//! step of it to a generated infection episode.
//!
//! The transforms are applied *after* episode generation, as a pure
//! post-pass over the transaction list. That keeps the base generator's
//! RNG stream untouched — an undrifted corpus is bit-identical whether
//! or not this module exists — and makes a drifted batch a deterministic
//! function of `(episode, knobs, drift rng)`.

use nettrace::payload::PayloadClass;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::episode::Episode;
use crate::evasion::{self, Evasion};
use crate::hostgen;

/// Continuous drift dials, each in `[0, 1)`. All-zero knobs are the
/// identity transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftKnobs {
    /// Probability each redirect hop is elided from the chain
    /// (redirect-chain shortening; at 1.0 the chain is gone entirely).
    pub redirect_shorten: f64,
    /// Benign-mimicry strength: probability each EK-generated host is
    /// renamed to a benign-looking domain, each EK-style long URI is
    /// shortened to a benign shape, and the factor by which the
    /// episode's pacing stretches toward human-paced browsing.
    pub benign_mimicry: f64,
    /// Probability each overt exploit-type payload is re-wrapped as a
    /// generic container (`Archive`/`Other`) on the wire.
    pub payload_shift: f64,
    /// Probability one of the [`Evasion`] strategies is applied on top,
    /// weighted toward the gate-neutral call-back cloaks.
    pub evasion_prob: f64,
}

impl DriftKnobs {
    /// The identity transform: no drift.
    pub const NONE: DriftKnobs = DriftKnobs {
        redirect_shorten: 0.0,
        benign_mimicry: 0.0,
        payload_shift: 0.0,
        evasion_prob: 0.0,
    };

    /// Whether every dial is at zero (identity transform).
    pub fn is_none(&self) -> bool {
        *self == DriftKnobs::NONE
    }

    /// Linear interpolation from zero toward `self` by `ramp ∈ [0, 1]`,
    /// clamped so every dial stays a valid probability.
    pub fn scaled(&self, ramp: f64) -> DriftKnobs {
        let s = |v: f64| (v * ramp).clamp(0.0, 0.95);
        DriftKnobs {
            redirect_shorten: s(self.redirect_shorten),
            benign_mimicry: s(self.benign_mimicry),
            payload_shift: s(self.payload_shift),
            evasion_prob: s(self.evasion_prob),
        }
    }
}

/// A benign-looking domain: dashless stem+token on a mainstream TLD,
/// the shape [`hostgen::random_domain`]'s EK-flavored output avoids.
pub fn benign_mimic_domain<R: Rng>(rng: &mut R) -> String {
    const STEMS: [&str; 8] =
        ["assets", "static", "images", "api", "content", "pages", "files", "site"];
    const TLDS: [&str; 3] = ["com", "net", "org"];
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    let tld = TLDS[rng.gen_range(0..TLDS.len())];
    format!("{stem}{}.{tld}", hostgen::random_token(rng, 3))
}

/// Applies one sampled drift step to an infection episode. The label is
/// preserved — the conversation is still an infection, its dynamics are
/// just walked toward the benign manifold:
///
/// 1. **payload-type shift** — overt exploit downloads re-wrapped as
///    `Archive`/`Other` (same bytes, same digest, generic wire type),
/// 2. **redirect-chain shortening** — each hop independently elided,
/// 3. **benign mimicry** — EK hosts renamed (with referrer/`Location`
///    URLs rewritten so the WCG edges stay coherent), long landing URIs
///    shortened, and inter-transaction pacing stretched toward the
///    benign timing range,
/// 4. **graduated evasion** — with probability `evasion_prob` one
///    [`Evasion`] strategy on top (35 % no-callback, 35 % delayed
///    callback, 20 % no-redirects, 10 % fileless).
///
/// Deterministic given the RNG state; all-zero knobs return the episode
/// unchanged without consuming randomness.
pub fn apply_drift<R: Rng>(rng: &mut R, knobs: &DriftKnobs, mut ep: Episode) -> Episode {
    // 1. Payload-type shift.
    if knobs.payload_shift > 0.0 {
        for tx in &mut ep.transactions {
            if tx.status / 100 == 2
                && tx.payload_class.is_exploit_type()
                && rng.gen_bool(knobs.payload_shift)
            {
                let wire = if rng.gen_bool(0.6) { PayloadClass::Archive } else { PayloadClass::Other };
                tx.payload_class = wire;
                tx.uri = hostgen::payload_uri(rng, wire);
            }
        }
    }

    // 2. Redirect-chain shortening: front-to-back, each hop elided
    // independently.
    if knobs.redirect_shorten > 0.0 {
        ep.transactions
            .retain(|t| !(evasion::is_redirect_hop(t) && rng.gen_bool(knobs.redirect_shorten)));
    }

    // 3. Benign mimicry.
    if knobs.benign_mimicry > 0.0 {
        // Host renames, drawn in first-appearance order. Only the
        // dash-bearing domains the EK generator mints are candidates —
        // enticement origins (google.com, …) and raw-IP C&C hosts keep
        // their names.
        let mut renames: Vec<(String, String)> = Vec::new();
        for tx in &ep.transactions {
            if tx.host.contains('-')
                && !renames.iter().any(|(old, _)| *old == tx.host)
                && rng.gen_bool(knobs.benign_mimicry)
            {
                let fresh = benign_mimic_domain(rng);
                renames.push((tx.host.clone(), fresh));
            }
        }
        if !renames.is_empty() {
            for tx in &mut ep.transactions {
                for (old, new) in &renames {
                    if tx.host == *old {
                        tx.host = new.clone();
                    }
                }
                // Keep referrer/Location URLs consistent with the
                // renames so WCG edges survive the disguise.
                for header in ["Referer", "Location"] {
                    if let Some(value) = tx_header(tx, header) {
                        let mut rewritten = value;
                        for (old, new) in &renames {
                            rewritten = rewritten.replace(old.as_str(), new.as_str());
                        }
                        set_tx_header(tx, header, rewritten);
                    }
                }
            }
        }
        // Long EK-style URIs shortened to benign shapes.
        for tx in &mut ep.transactions {
            if tx.uri.len() > 40 && rng.gen_bool(knobs.benign_mimicry) {
                tx.uri = format!("/{}?id={}", hostgen::random_token(rng, 6), rng.gen_range(1..10_000));
            }
        }
        // Pacing stretched toward human-paced browsing: inter-arrival
        // gaps scale up, response latencies stay.
        let stretch = 1.0 + knobs.benign_mimicry * rng.gen_range(2.0..6.0);
        if let Some(base) = ep.transactions.first().map(|t| t.ts) {
            for tx in &mut ep.transactions {
                let latency = tx.resp_ts - tx.ts;
                tx.ts = base + (tx.ts - base) * stretch;
                tx.resp_ts = tx.ts + latency;
            }
        }
    }

    // 4. Graduated evasion on top.
    if knobs.evasion_prob > 0.0 && rng.gen_bool(knobs.evasion_prob) {
        let strategy = match rng.gen_range(0..100) {
            0..=34 => Evasion::NoCallback,
            35..=69 => Evasion::DelayedCallback,
            70..=89 => Evasion::NoRedirects,
            _ => Evasion::FilelessDownload,
        };
        ep = evasion::apply(strategy, ep);
    }
    ep
}

fn tx_header(tx: &nettrace::HttpTransaction, name: &str) -> Option<String> {
    let map = if name == "Referer" { &tx.req_headers } else { &tx.resp_headers };
    map.get(name).map(str::to_string)
}

fn set_tx_header(tx: &mut nettrace::HttpTransaction, name: &str, value: String) {
    let map = if name == "Referer" { &mut tx.req_headers } else { &mut tx.resp_headers };
    map.set(name, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::generate_infection;
    use crate::EkFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn episode(seed: u64) -> Episode {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_infection(&mut rng, EkFamily::Angler, 1.46e9)
    }

    #[test]
    fn zero_knobs_are_identity_and_draw_nothing() {
        let base = episode(3);
        let mut rng = StdRng::seed_from_u64(99);
        let drifted = apply_drift(&mut rng, &DriftKnobs::NONE, base.clone());
        assert_eq!(drifted.transactions.len(), base.transactions.len());
        for (a, b) in drifted.transactions.iter().zip(&base.transactions) {
            assert_eq!(a.uri, b.uri);
            assert_eq!(a.host, b.host);
            assert_eq!(a.ts.to_bits(), b.ts.to_bits());
        }
        // The RNG was never consumed: a fresh draw matches a pristine RNG.
        let mut fresh = StdRng::seed_from_u64(99);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn drift_is_deterministic_for_seed() {
        let knobs = DriftKnobs {
            redirect_shorten: 0.4,
            benign_mimicry: 0.6,
            payload_shift: 0.4,
            evasion_prob: 0.3,
        };
        let a = apply_drift(&mut StdRng::seed_from_u64(7), &knobs, episode(5));
        let b = apply_drift(&mut StdRng::seed_from_u64(7), &knobs, episode(5));
        assert_eq!(a.transactions.len(), b.transactions.len());
        for (x, y) in a.transactions.iter().zip(&b.transactions) {
            assert_eq!(x.host, y.host);
            assert_eq!(x.uri, y.uri);
            assert_eq!(x.ts.to_bits(), y.ts.to_bits());
        }
    }

    #[test]
    fn full_shorten_removes_every_redirect() {
        let knobs = DriftKnobs { redirect_shorten: 0.95, ..DriftKnobs::NONE };
        // At 0.95 per hop a few survive across seeds, but most episodes
        // lose the whole chain; check the count only ever shrinks.
        for seed in 0..10 {
            let base = episode(seed);
            let before = base.redirect_count();
            let drifted = apply_drift(&mut StdRng::seed_from_u64(seed), &knobs, base);
            assert!(drifted.redirect_count() <= before, "seed {seed}");
        }
    }

    #[test]
    fn payload_shift_rewraps_exploit_types() {
        let knobs = DriftKnobs { payload_shift: 0.95, ..DriftKnobs::NONE };
        let mut saw_shift = false;
        for seed in 0..10 {
            let base = episode(seed);
            let digests = base.malicious_digests.clone();
            let drifted = apply_drift(&mut StdRng::seed_from_u64(seed), &knobs, base);
            // Digests survive the re-wrap: it is the same malware.
            assert_eq!(drifted.malicious_digests, digests);
            saw_shift |= drifted.transactions.iter().any(|t| {
                matches!(t.payload_class, PayloadClass::Archive | PayloadClass::Other)
                    && t.payload_size > 5_000
            });
        }
        assert!(saw_shift, "no payload was re-wrapped in 10 seeds");
    }

    #[test]
    fn mimicry_renames_hosts_and_rewrites_referrers() {
        let knobs = DriftKnobs { benign_mimicry: 0.9, ..DriftKnobs::NONE };
        let base = episode(11);
        let drifted = apply_drift(&mut StdRng::seed_from_u64(11), &knobs, base.clone());
        assert!(
            drifted.transactions.iter().filter(|t| t.host.contains('-')).count()
                < base.transactions.iter().filter(|t| t.host.contains('-')).count(),
            "no hosts were renamed"
        );
        // Every non-IP referrer must point at a host that exists in the
        // episode (edges stay coherent after the rename).
        let hosts: std::collections::BTreeSet<&str> =
            drifted.transactions.iter().map(|t| t.host.as_str()).collect();
        for tx in &drifted.transactions {
            if let Some(referer) = tx.req_headers.get("Referer") {
                let host = referer
                    .trim_start_matches("http://")
                    .split('/')
                    .next()
                    .unwrap_or_default();
                if !host.is_empty() && host.parse::<std::net::Ipv4Addr>().is_err() {
                    assert!(hosts.contains(host), "dangling referrer {referer}");
                }
            }
        }
        // Pacing stretched: the drifted episode runs longer.
        assert!(drifted.duration() > base.duration());
    }

    #[test]
    fn scaled_knobs_interpolate_and_clamp() {
        let max = DriftKnobs {
            redirect_shorten: 0.8,
            benign_mimicry: 1.2, // deliberately over the top
            payload_shift: 0.4,
            evasion_prob: 0.6,
        };
        assert!(max.scaled(0.0).is_none());
        let half = max.scaled(0.5);
        assert!((half.redirect_shorten - 0.4).abs() < 1e-12);
        assert!((half.payload_shift - 0.2).abs() < 1e-12);
        let full = max.scaled(1.0);
        assert!(full.benign_mimicry <= 0.95, "clamped to a valid probability");
    }
}
