//! Evasion transformations (the paper's Sec. VII discussion).
//!
//! A determined adversary can cloak parts of the conversation DynaMiner
//! reasons over. This module applies those evasions to generated
//! infection episodes so the classifier's resilience can be measured:
//!
//! * **fileless download** — the exploit runs in memory; no payload file
//!   crosses the wire (the paper concedes this is the hard case),
//! * **no redirects** — the victim is led directly to the exploit server,
//! * **no call-back** — the malware stays silent after infection (which
//!   "significantly limits the effectiveness of the attack", Sec. VII),
//! * **delayed call-back** — C&C traffic is pushed past the conversation
//!   watch window,
//! * **full cloaking** — all of the above combined.

use serde::{Deserialize, Serialize};

use crate::episode::Episode;
use nettrace::http::Method;
use nettrace::payload::PayloadClass;

/// An evasion strategy from the paper's discussion section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Evasion {
    /// No evasion (baseline).
    None,
    /// In-memory infection: drop every exploit-payload download.
    FilelessDownload,
    /// Direct infection: drop the pre-download redirect chain.
    NoRedirects,
    /// Silent malware: drop post-download call-backs entirely.
    NoCallback,
    /// Patient malware: delay call-backs beyond the watch window.
    DelayedCallback,
    /// All cloaking techniques combined.
    Full,
}

impl Evasion {
    /// All strategies, baseline first.
    pub const ALL: [Evasion; 6] = [
        Evasion::None,
        Evasion::FilelessDownload,
        Evasion::NoRedirects,
        Evasion::NoCallback,
        Evasion::DelayedCallback,
        Evasion::Full,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Evasion::None => "none (baseline)",
            Evasion::FilelessDownload => "fileless download",
            Evasion::NoRedirects => "no redirects",
            Evasion::NoCallback => "no call-back",
            Evasion::DelayedCallback => "delayed call-back",
            Evasion::Full => "full cloaking",
        }
    }
}

/// How far [`Evasion::DelayedCallback`] pushes C&C traffic (seconds) —
/// beyond any realistic conversation watch window.
pub const CALLBACK_DELAY: f64 = 6.0 * 3600.0;

/// Whether `tx` is a successful, sizeable payload download (overt
/// exploit type or a generic `Archive`/`Other` wrapper).
pub fn is_payload_download(tx: &nettrace::HttpTransaction) -> bool {
    tx.status / 100 == 2
        && tx.payload_size > 5_000
        && (tx.payload_class.is_exploit_type()
            || matches!(tx.payload_class, PayloadClass::Archive | PayloadClass::Other))
}

/// Whether `tx` carries a redirect hop: a 3xx, or a 200 whose body holds
/// a meta-refresh tag or obfuscated `atob` JavaScript redirect.
pub fn is_redirect_hop(tx: &nettrace::HttpTransaction) -> bool {
    tx.is_redirect() || {
        let body = String::from_utf8_lossy(&tx.body_preview);
        body.contains("http-equiv=\"refresh\"") || body.contains("atob(")
    }
}

/// Whether `tx` looks like a C&C call-back: a POST to a raw-IPv4 host.
pub fn is_callback(tx: &nettrace::HttpTransaction) -> bool {
    tx.method == Method::Post && tx.host.parse::<std::net::Ipv4Addr>().is_ok()
}

/// Applies `evasion` to an infection episode, returning the cloaked
/// variant. The label is preserved — the conversation is still an
/// infection, it just hides part of its dynamics.
pub fn apply(evasion: Evasion, mut episode: Episode) -> Episode {
    match evasion {
        Evasion::None => episode,
        Evasion::FilelessDownload => {
            episode.transactions.retain(|t| !is_payload_download(t));
            episode
        }
        Evasion::NoRedirects => {
            episode.transactions.retain(|t| !is_redirect_hop(t));
            episode
        }
        Evasion::NoCallback => {
            episode.transactions.retain(|t| !is_callback(t));
            episode
        }
        Evasion::DelayedCallback => {
            for tx in &mut episode.transactions {
                if is_callback(tx) {
                    tx.ts += CALLBACK_DELAY;
                    tx.resp_ts += CALLBACK_DELAY;
                }
            }
            episode.transactions.sort_by(|a, b| a.ts.total_cmp(&b.ts));
            episode
        }
        Evasion::Full => {
            let episode = apply(Evasion::FilelessDownload, episode);
            let episode = apply(Evasion::NoRedirects, episode);
            apply(Evasion::NoCallback, episode)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::generate_infection;
    use crate::EkFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn episode(seed: u64) -> Episode {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_infection(&mut rng, EkFamily::Angler, 1.4e9)
    }

    #[test]
    fn fileless_removes_all_payload_downloads() {
        for seed in 0..10 {
            let ev = apply(Evasion::FilelessDownload, episode(seed));
            assert!(!ev.transactions.iter().any(is_payload_download));
            assert!(!ev.transactions.is_empty(), "conversation skeleton remains");
        }
    }

    #[test]
    fn no_redirects_removes_hops_but_keeps_downloads() {
        for seed in 0..10 {
            let base = episode(seed);
            let had_download = base.transactions.iter().any(is_payload_download);
            let ev = apply(Evasion::NoRedirects, base);
            assert_eq!(ev.redirect_count(), 0, "seed {seed}");
            assert_eq!(ev.transactions.iter().any(is_payload_download), had_download);
        }
    }

    #[test]
    fn no_callback_removes_ip_posts() {
        for seed in 0..10 {
            let ev = apply(Evasion::NoCallback, episode(seed));
            assert!(!ev.transactions.iter().any(is_callback));
        }
    }

    #[test]
    fn delayed_callback_preserves_count_but_shifts_time() {
        for seed in 0..20 {
            let base = episode(seed);
            let callbacks = base.transactions.iter().filter(|t| is_callback(t)).count();
            if callbacks == 0 {
                continue;
            }
            let base_duration = base.duration();
            let ev = apply(Evasion::DelayedCallback, base);
            assert_eq!(ev.transactions.iter().filter(|t| is_callback(t)).count(), callbacks);
            assert!(ev.duration() >= base_duration + CALLBACK_DELAY * 0.9);
            return;
        }
        panic!("no episode with callbacks found");
    }

    #[test]
    fn full_cloaking_strips_everything_but_keeps_the_visit() {
        let ev = apply(Evasion::Full, episode(3));
        assert!(!ev.transactions.iter().any(is_payload_download));
        assert!(!ev.transactions.iter().any(is_callback));
        assert_eq!(ev.redirect_count(), 0);
        assert!(ev.is_infection(), "label preserved");
    }

    #[test]
    fn baseline_is_identity() {
        let base = episode(4);
        let n = base.transactions.len();
        assert_eq!(apply(Evasion::None, base).transactions.len(), n);
    }
}
