//! Exploit-kit family profiles calibrated to the paper's Table I.
//!
//! Every number in [`FamilyProfile`] comes straight from the ground-truth
//! table: per-family PCAP counts, host-count ranges, redirect-chain ranges,
//! and unique payload counts per file type. Per-episode payload
//! expectations are the table counts divided by the family's PCAP count.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A min/max/average triple from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeStat {
    /// Minimum observed value.
    pub min: usize,
    /// Maximum observed value.
    pub max: usize,
    /// Average value.
    pub avg: f64,
}

impl RangeStat {
    /// Samples a value with mean ≈ `avg`, support `[min, max]`, using a
    /// geometric tail above the minimum (conversation sizes are heavily
    /// right-skewed, like the paper's 2–404-node range around a mean of 10).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        if self.max <= self.min {
            return self.min;
        }
        let mean_excess = (self.avg - self.min as f64).max(0.01);
        let q = mean_excess / (mean_excess + 1.0);
        let mut k = 0usize;
        while rng.gen_bool(q) && k < self.max - self.min {
            k += 1;
        }
        self.min + k
    }
}

/// The nine exploit-kit families of Table I plus the "Other Kits" bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EkFamily {
    /// Angler exploit kit.
    Angler,
    /// RIG exploit kit.
    Rig,
    /// Nuclear exploit kit.
    Nuclear,
    /// Magnitude exploit kit.
    Magnitude,
    /// SweetOrange exploit kit.
    SweetOrange,
    /// FlashPack exploit kit.
    FlashPack,
    /// Neutrino exploit kit.
    Neutrino,
    /// Goon exploit kit.
    Goon,
    /// Fiesta exploit kit.
    Fiesta,
    /// All remaining kits in the dataset.
    OtherKits,
}

/// Per-episode payload-count expectations, ordered
/// `[pdf, exe, jar, swf, crypt, js]` as in Table I's columns.
pub type PayloadExpectations = [f64; 6];

/// Calibration profile for one family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyProfile {
    /// Family display name (Table I row label).
    pub name: &'static str,
    /// Number of ground-truth PCAPs in Table I.
    pub ground_truth_pcaps: usize,
    /// Hosts per conversation (Table I "No. of Hosts").
    pub hosts: RangeStat,
    /// Redirects per conversation (Table I "No. of Redirects").
    pub redirects: RangeStat,
    /// Expected payload counts per episode `[pdf, exe, jar, swf, crypt, js]`
    /// (Table I unique payload counts ÷ PCAPs).
    pub payloads: PayloadExpectations,
}

/// Fraction of infection traces with at least one post-download call-back
/// (708 of 770, Sec. II-D).
pub const CALLBACK_PROB: f64 = 708.0 / 770.0;

macro_rules! profile {
    ($name:expr, $pcaps:expr, hosts($hmin:expr, $hmax:expr, $havg:expr),
     redirects($rmin:expr, $rmax:expr, $ravg:expr),
     payloads($pdf:expr, $exe:expr, $jar:expr, $swf:expr, $crypt:expr, $js:expr)) => {
        FamilyProfile {
            name: $name,
            ground_truth_pcaps: $pcaps,
            hosts: RangeStat { min: $hmin, max: $hmax, avg: $havg },
            redirects: RangeStat { min: $rmin, max: $rmax, avg: $ravg },
            payloads: [
                $pdf as f64 / $pcaps as f64,
                $exe as f64 / $pcaps as f64,
                $jar as f64 / $pcaps as f64,
                $swf as f64 / $pcaps as f64,
                $crypt as f64 / $pcaps as f64,
                $js as f64 / $pcaps as f64,
            ],
        }
    };
}

impl EkFamily {
    /// All families in Table I row order.
    pub const ALL: [EkFamily; 10] = [
        EkFamily::Angler,
        EkFamily::Rig,
        EkFamily::Nuclear,
        EkFamily::Magnitude,
        EkFamily::SweetOrange,
        EkFamily::FlashPack,
        EkFamily::Neutrino,
        EkFamily::Goon,
        EkFamily::Fiesta,
        EkFamily::OtherKits,
    ];

    /// The family's Table I calibration profile.
    pub fn profile(self) -> FamilyProfile {
        match self {
            EkFamily::Angler => profile!("Angler", 253, hosts(2, 74, 6.0),
                redirects(0, 18, 1.0), payloads(0, 80, 133, 0, 64, 1163)),
            EkFamily::Rig => profile!("RIG", 62, hosts(2, 17, 4.0),
                redirects(0, 3, 1.0), payloads(0, 35, 74, 13, 0, 240)),
            EkFamily::Nuclear => profile!("Nuclear", 132, hosts(2, 213, 8.0),
                redirects(0, 18, 1.0), payloads(8, 730, 146, 13, 11, 935)),
            EkFamily::Magnitude => profile!("Magnitude", 43, hosts(2, 231, 20.0),
                redirects(0, 12, 2.0), payloads(0, 862, 22, 0, 2, 330)),
            EkFamily::SweetOrange => profile!("SweetOrange", 33, hosts(2, 90, 8.0),
                redirects(0, 6, 1.0), payloads(0, 310, 22, 0, 0, 227)),
            EkFamily::FlashPack => profile!("FlashPack", 29, hosts(2, 15, 5.0),
                redirects(0, 8, 2.0), payloads(0, 556, 35, 0, 0, 159)),
            EkFamily::Neutrino => profile!("Neutrino", 40, hosts(2, 30, 6.0),
                redirects(0, 14, 2.0), payloads(0, 45, 31, 5, 6, 217)),
            EkFamily::Goon => profile!("Goon", 19, hosts(2, 90, 9.0),
                redirects(0, 30, 2.0), payloads(0, 78, 15, 10, 0, 71)),
            EkFamily::Fiesta => profile!("Fiesta", 89, hosts(2, 182, 7.0),
                redirects(0, 3, 1.0), payloads(21, 226, 72, 63, 0, 414)),
            EkFamily::OtherKits => profile!("Other Kits", 70, hosts(2, 68, 4.0),
                redirects(0, 5, 1.0), payloads(1, 420, 13, 4, 0, 271)),
        }
    }

    /// Family display name.
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Samples a family with probability proportional to its ground-truth
    /// PCAP count (so corpora reproduce Table I's family mix).
    pub fn sample_weighted<R: Rng>(rng: &mut R) -> EkFamily {
        let total: usize = EkFamily::ALL.iter().map(|f| f.profile().ground_truth_pcaps).sum();
        let mut x = rng.gen_range(0..total);
        for f in EkFamily::ALL {
            let w = f.profile().ground_truth_pcaps;
            if x < w {
                return f;
            }
            x -= w;
        }
        EkFamily::OtherKits
    }
}

impl std::fmt::Display for EkFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Samples a per-episode payload count from an expectation: the integer
/// part is deterministic, the fractional part a Bernoulli draw.
pub fn sample_payload_count<R: Rng>(rng: &mut R, expectation: f64) -> usize {
    let base = expectation.floor() as usize;
    let frac = expectation - base as f64;
    base + usize::from(frac > 0.0 && rng.gen_bool(frac.min(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_totals_match_table1() {
        let total: usize = EkFamily::ALL.iter().map(|f| f.profile().ground_truth_pcaps).sum();
        assert_eq!(total, 770);
    }

    #[test]
    fn range_stat_sampling_stays_in_bounds_with_right_mean() {
        let stat = RangeStat { min: 2, max: 74, avg: 6.0 };
        let mut rng = StdRng::seed_from_u64(8);
        let samples: Vec<usize> = (0..20_000).map(|_| stat.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (2..=74).contains(&s)));
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn degenerate_range_returns_min() {
        let stat = RangeStat { min: 2, max: 2, avg: 2.0 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(stat.sample(&mut rng), 2);
    }

    #[test]
    fn weighted_sampling_tracks_pcap_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 77_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(EkFamily::sample_weighted(&mut rng)).or_insert(0usize) += 1;
        }
        // Angler should be ~253/770 of draws.
        let angler = counts[&EkFamily::Angler] as f64 / n as f64;
        assert!((angler - 253.0 / 770.0).abs() < 0.02, "angler share {angler}");
        // Goon is the rarest but still present.
        assert!(counts[&EkFamily::Goon] > 0);
    }

    #[test]
    fn magnitude_is_download_heavy() {
        // Table I: Magnitude averages 862/43 ≈ 20 executables per trace.
        let p = EkFamily::Magnitude.profile();
        assert!(p.payloads[1] > 15.0);
        assert!((p.hosts.avg - 20.0).abs() < 1e-9);
    }

    #[test]
    fn payload_count_sampling_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(10);
        let exp = 2.4f64;
        let mean: f64 = (0..20_000)
            .map(|_| sample_payload_count(&mut rng, exp) as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - exp).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn callback_probability_matches_paper() {
        assert!((CALLBACK_PROB - 0.9195).abs() < 0.001);
    }
}
