//! Deterministic generation of hostnames, IPs, URIs, and payload bodies.

use std::net::Ipv4Addr;

use nettrace::payload::PayloadClass;
use rand::Rng;

/// Top-level domains used when synthesizing hostnames, weighted toward the
/// mix observed in exploit-kit infrastructure (cheap TLDs dominate).
const TLDS: [&str; 8] = ["com", "net", "org", "info", "biz", "ru", "top", "xyz"];

/// Word stems for plausible-looking domains.
const STEMS: [&str; 16] = [
    "media", "cloud", "track", "stat", "cdn", "img", "update", "secure", "portal", "shop",
    "news", "game", "video", "host", "data", "web",
];

/// Generates a pseudo-random domain name, e.g. `stat-k3f9.example.ru`.
pub fn random_domain<R: Rng>(rng: &mut R) -> String {
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    let tld = TLDS[rng.gen_range(0..TLDS.len())];
    format!("{stem}-{}.{tld}", random_token(rng, 4))
}

/// Generates a compromised-WordPress-style domain (the paper traces 56/94
/// compromised-site enticements to default WordPress installs).
pub fn compromised_domain<R: Rng>(rng: &mut R) -> String {
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    format!("{stem}{}.com", random_token(rng, 3))
}

/// A routable-looking public IPv4 address (avoids private ranges).
pub fn random_public_ip<R: Rng>(rng: &mut R) -> Ipv4Addr {
    loop {
        let a = rng.gen_range(1..224u8);
        if a == 10 || a == 127 || a == 172 || a == 192 {
            continue;
        }
        return Ipv4Addr::new(a, rng.gen_range(0..=255), rng.gen_range(0..=255), rng.gen_range(1..=254));
    }
}

/// Lowercase alphanumeric token of length `len`.
pub fn random_token<R: Rng>(rng: &mut R, len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

/// Exploit-kit landing URI: long path plus a high-entropy query string
/// (drives the Average-URI-Length feature the way real EK landings do).
pub fn landing_uri<R: Rng>(rng: &mut R) -> String {
    let dir = random_token(rng, 6);
    let page = random_token(rng, 8);
    let k1 = random_token(rng, 4);
    let v1_len = rng.gen_range(24..64);
    let v1 = random_token(rng, v1_len);
    let k2 = random_token(rng, 4);
    let v2_len = rng.gen_range(16..48);
    let v2 = random_token(rng, v2_len);
    format!("/{dir}/{page}.php?{k1}={v1}&{k2}={v2}")
}

/// Benign page URI: usually a short path, sometimes a tracking-laden
/// query string long enough to overlap the exploit-kit landing range
/// (real benign URLs carry UTM parameters, search queries, and session
/// tokens, so URI length alone must not separate the classes).
pub fn benign_uri<R: Rng>(rng: &mut R) -> String {
    match rng.gen_range(0..10) {
        0..=2 => format!("/{}?id={}", random_token(rng, 6), rng.gen_range(1..10_000)),
        3..=4 => {
            let path = random_token(rng, 6);
            let utm_len = rng.gen_range(20..70);
            let utm = random_token(rng, utm_len);
            format!("/{path}?utm_source=news&utm_campaign={utm}&ref=home")
        }
        _ => format!("/{}/{}.html", random_token(rng, 5), random_token(rng, 6)),
    }
}

/// URI for a payload of class `class`, e.g. `/files/k3j9d.exe`.
pub fn payload_uri<R: Rng>(rng: &mut R, class: PayloadClass) -> String {
    let ext = match class {
        PayloadClass::Pdf => "pdf",
        PayloadClass::Exe => "exe",
        PayloadClass::Jar => "jar",
        PayloadClass::Swf => "swf",
        PayloadClass::Xap => "xap",
        PayloadClass::Dmg => "dmg",
        PayloadClass::Crypt => {
            let exts = nettrace::payload::RANSOMWARE_EXTENSIONS;
            exts[rng.gen_range(0..exts.len())]
        }
        PayloadClass::Js => "js",
        PayloadClass::Html => "html",
        PayloadClass::Css => "css",
        PayloadClass::Image => "png",
        PayloadClass::Archive => "zip",
        PayloadClass::Json => "json",
        PayloadClass::Text => "txt",
        PayloadClass::Other | PayloadClass::Empty => "bin",
    };
    format!("/{}/{}.{ext}", random_token(rng, 5), random_token(rng, 7))
}

/// The `Content-Type` header value typically served for `class`.
pub fn content_type_for(class: PayloadClass) -> &'static str {
    match class {
        PayloadClass::Pdf => "application/pdf",
        PayloadClass::Exe => "application/x-msdownload",
        PayloadClass::Jar => "application/java-archive",
        PayloadClass::Swf => "application/x-shockwave-flash",
        PayloadClass::Xap => "application/x-silverlight-app",
        PayloadClass::Dmg => "application/x-apple-diskimage",
        PayloadClass::Crypt => "application/octet-stream",
        PayloadClass::Js => "application/javascript",
        PayloadClass::Html => "text/html",
        PayloadClass::Css => "text/css",
        PayloadClass::Image => "image/png",
        PayloadClass::Archive => "application/zip",
        PayloadClass::Json => "application/json",
        PayloadClass::Text => "text/plain",
        PayloadClass::Other => "application/octet-stream",
        PayloadClass::Empty => "text/plain",
    }
}

/// Synthesizes a payload body of up to `materialize` bytes with the right
/// magic bytes for `class`, filled with seeded pseudo-random content so
/// every payload gets a distinct digest.
pub fn payload_body<R: Rng>(rng: &mut R, class: PayloadClass, materialize: usize) -> Vec<u8> {
    let magic: &[u8] = match class {
        PayloadClass::Pdf => b"%PDF-1.5\n",
        PayloadClass::Exe | PayloadClass::Dmg => b"MZ\x90\x00",
        PayloadClass::Jar => &[0xca, 0xfe, 0xba, 0xbe],
        PayloadClass::Swf => b"CWS\x0b",
        PayloadClass::Image => &[0x89, b'P', b'N', b'G'],
        PayloadClass::Html => b"<!DOCTYPE html><html>",
        PayloadClass::Js => b"(function(){",
        PayloadClass::Empty => return Vec::new(),
        _ => b"\x00SYN",
    };
    let mut body = magic.to_vec();
    while body.len() < materialize {
        body.push(rng.gen());
    }
    body.truncate(materialize.max(magic.len()));
    body
}

/// Typical payload size ranges in bytes per class (log-uniform sample).
pub fn payload_size<R: Rng>(rng: &mut R, class: PayloadClass) -> usize {
    let (lo, hi): (f64, f64) = match class {
        PayloadClass::Pdf => (20e3, 2e6),
        PayloadClass::Exe => (50e3, 3e6),
        PayloadClass::Jar => (10e3, 500e3),
        PayloadClass::Swf => (5e3, 300e3),
        PayloadClass::Xap => (20e3, 400e3),
        PayloadClass::Dmg => (1e6, 50e6),
        PayloadClass::Crypt => (30e3, 2e6),
        PayloadClass::Js => (500.0, 100e3),
        PayloadClass::Html => (1e3, 200e3),
        PayloadClass::Css => (300.0, 50e3),
        PayloadClass::Image => (500.0, 500e3),
        PayloadClass::Archive => (10e3, 10e6),
        PayloadClass::Json => (100.0, 20e3),
        PayloadClass::Text => (50.0, 10e3),
        PayloadClass::Other => (100.0, 1e6),
        PayloadClass::Empty => return 0,
    };
    let ln = rng.gen_range(lo.ln()..hi.ln());
    ln.exp() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn domains_are_plausible_and_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let da = random_domain(&mut a);
        let db = random_domain(&mut b);
        assert_eq!(da, db);
        assert!(da.contains('.'));
        assert!(da.is_ascii());
    }

    #[test]
    fn public_ips_avoid_private_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let ip = random_public_ip(&mut rng);
            assert!(!ip.is_private(), "{ip}");
            assert!(!ip.is_loopback());
        }
    }

    #[test]
    fn landing_uris_are_long() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert!(landing_uri(&mut rng).len() > 50);
        }
    }

    #[test]
    fn payload_bodies_classify_back_to_their_class() {
        let mut rng = StdRng::seed_from_u64(4);
        for class in [
            PayloadClass::Pdf,
            PayloadClass::Exe,
            PayloadClass::Jar,
            PayloadClass::Swf,
            PayloadClass::Image,
        ] {
            let body = payload_body(&mut rng, class, 256);
            let uri = payload_uri(&mut rng, class);
            let got = nettrace::payload::classify(&uri, Some(content_type_for(class)), body.len(), &body);
            assert_eq!(got, class, "class {class}");
        }
    }

    #[test]
    fn crypt_uris_use_ransomware_extensions() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let uri = payload_uri(&mut rng, PayloadClass::Crypt);
            let ext = nettrace::payload::uri_extension(&uri).unwrap();
            assert!(nettrace::payload::is_ransomware_extension(&ext), "{uri}");
        }
    }

    #[test]
    fn payload_sizes_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let s = payload_size(&mut rng, PayloadClass::Exe);
            assert!((50_000..=3_000_000).contains(&s), "{s}");
        }
        assert_eq!(payload_size(&mut rng, PayloadClass::Empty), 0);
    }

    #[test]
    fn bodies_differ_between_draws() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = payload_body(&mut rng, PayloadClass::Exe, 128);
        let b = payload_body(&mut rng, PayloadClass::Exe, 128);
        assert_ne!(a, b);
    }
}
