//! Infection-episode synthesis with the paper's three-stage structure.
//!
//! An infection episode reproduces the dynamics DynaMiner learns from:
//!
//! 1. **Pre-download**: an enticement origin (Fig. 1 distribution) followed
//!    by a redirect chain whose hops use `Location` headers, meta-refresh
//!    HTML, or base64-obfuscated JavaScript (`atob` + `window.location`) —
//!    the three mechanisms Sec. II calls out, including the obfuscated kind
//!    the paper "reverse engineers",
//! 2. **Download**: exploit payloads drawn from the family's Table I
//!    payload mix, served from the exploit host with EK-style long URIs,
//! 3. **Post-download**: C&C call-backs via POST to never-before-seen IP
//!    hosts (92 % of traces, Sec. II-D), with occasional 40x responses.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use nettrace::http::{HeaderMap, Method};
use nettrace::payload::PayloadClass;
use nettrace::reassembly::Endpoint;
use nettrace::transaction::{fnv1a, HttpTransaction, BODY_PREVIEW_LEN};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::benign::BenignScenario;
use crate::entice::Enticement;
use crate::families::{sample_payload_count, EkFamily, CALLBACK_PROB};
use crate::hostgen;

/// Episode class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EpisodeLabel {
    /// Infection by the given exploit-kit family.
    Infection(EkFamily),
    /// Benign browsing of the given scenario.
    Benign(BenignScenario),
}

impl EpisodeLabel {
    /// Whether this episode is an infection.
    pub fn is_infection(self) -> bool {
        matches!(self, EpisodeLabel::Infection(_))
    }
}

/// One web conversation: the synthetic equivalent of a single ground-truth
/// PCAP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Episode {
    /// Ground-truth label.
    pub label: EpisodeLabel,
    /// HTTP transactions in timestamp order.
    pub transactions: Vec<HttpTransaction>,
    /// The victim/client endpoint.
    pub victim: Endpoint,
    /// How the victim was enticed (meaningful for infections; benign
    /// episodes use `GoogleSearch`/`EmptyReferrer` analogues).
    pub enticement: Enticement,
    /// Episode start time (seconds since epoch).
    pub start_ts: f64,
    /// Digests of the genuinely malicious payloads (ground truth for
    /// content-scanner comparisons; includes disguised payloads, empty
    /// for benign episodes).
    pub malicious_digests: std::collections::BTreeSet<u64>,
}

impl Episode {
    /// Whether this episode is an infection.
    pub fn is_infection(&self) -> bool {
        self.label.is_infection()
    }

    /// Unique hosts in the conversation, counting the victim client
    /// (Table I: "the minimum … is always 2 since the smallest
    /// conversation involves a client and one remote host").
    pub fn unique_hosts(&self) -> usize {
        let mut hosts: Vec<&str> = self.transactions.iter().map(|t| t.host.as_str()).collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts.len() + usize::from(!self.transactions.is_empty())
    }

    /// Number of redirect hops: responses that are 3xx, or 200s whose body
    /// carries a meta-refresh tag or obfuscated `atob`-style JavaScript
    /// redirect (the three mechanisms of Sec. II).
    pub fn redirect_count(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| {
                if t.is_redirect() {
                    return true;
                }
                let body = String::from_utf8_lossy(&t.body_preview);
                body.contains("http-equiv=\"refresh\"") || body.contains("atob(")
            })
            .count()
    }

    /// Episode duration in seconds (last response end − first request).
    pub fn duration(&self) -> f64 {
        let first = self.transactions.first().map_or(0.0, |t| t.ts);
        let last = self.transactions.iter().map(|t| t.resp_ts).fold(first, f64::max);
        last - first
    }
}

/// Builds [`HttpTransaction`]s with consistent endpoints, ports, and
/// payload digests.
pub(crate) struct TxFactory {
    victim: Endpoint,
    servers: BTreeMap<String, Endpoint>,
    next_client_port: u16,
    user_agent: String,
}

/// Everything needed to emit one transaction.
pub(crate) struct TxSpec<'a> {
    pub ts: f64,
    pub method: Method,
    pub host: &'a str,
    pub uri: String,
    pub referer: Option<String>,
    pub status: u16,
    pub payload_class: PayloadClass,
    pub payload_size: usize,
    pub body: Vec<u8>,
    pub location: Option<String>,
    pub cookie: Option<String>,
}

impl TxFactory {
    pub(crate) fn new<R: Rng>(rng: &mut R) -> Self {
        let victim =
            Endpoint::new(Ipv4Addr::new(10, 0, 0, rng.gen_range(2..250)), 49152);
        let ua = [
            "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)",
            "Mozilla/5.0 (Windows NT 6.1; rv:31.0) Gecko/20100101 Firefox/31.0",
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10) AppleWebKit/600.1",
        ];
        TxFactory {
            victim,
            servers: BTreeMap::new(),
            next_client_port: 49152,
            user_agent: ua[rng.gen_range(0..ua.len())].to_string(),
        }
    }

    pub(crate) fn victim(&self) -> Endpoint {
        self.victim
    }

    fn server_for<R: Rng>(&mut self, rng: &mut R, host: &str) -> Endpoint {
        if let Some(&ep) = self.servers.get(host) {
            return ep;
        }
        // Hosts written as raw IPs (C&C callbacks) keep that IP.
        let addr = host.parse().unwrap_or_else(|_| hostgen::random_public_ip(rng));
        let ep = Endpoint::new(addr, 80);
        self.servers.insert(host.to_string(), ep);
        ep
    }

    /// Emits a transaction; the response completes after a latency plus a
    /// size-proportional transfer time.
    pub(crate) fn tx<R: Rng>(&mut self, rng: &mut R, spec: TxSpec<'_>) -> HttpTransaction {
        let server = self.server_for(rng, spec.host);
        self.next_client_port = self.next_client_port.wrapping_add(1).max(49152);
        let mut req_headers = HeaderMap::new();
        req_headers.append("Host", spec.host);
        req_headers.append("User-Agent", self.user_agent.clone());
        if let Some(r) = &spec.referer {
            req_headers.append("Referer", r.clone());
        }
        if let Some(c) = &spec.cookie {
            req_headers.append("Cookie", c.clone());
        }
        let mut resp_headers = HeaderMap::new();
        if spec.status != 0 {
            resp_headers.append("Content-Type", hostgen::content_type_for(spec.payload_class));
            resp_headers.append("Content-Length", spec.payload_size.to_string());
            if let Some(l) = &spec.location {
                resp_headers.append("Location", l.clone());
            }
        }
        let latency = rng.gen_range(0.02..0.2);
        let bandwidth = rng.gen_range(200e3..2e6); // bytes/sec
        let resp_ts = spec.ts + latency + spec.payload_size as f64 / bandwidth;
        let digest = fnv1a(&spec.body);
        let preview = spec.body.len().min(BODY_PREVIEW_LEN);
        HttpTransaction {
            // Episodes are later merged and re-sorted into a stream; the
            // stream builder renumbers with `nettrace::assign_seq`.
            seq: 0,
            ts: spec.ts,
            resp_ts,
            client: Endpoint::new(self.victim.addr, self.next_client_port),
            server,
            host: spec.host.to_string(),
            method: spec.method,
            uri: spec.uri,
            req_headers,
            status: spec.status,
            resp_headers,
            payload_class: spec.payload_class,
            payload_size: spec.payload_size,
            payload_digest: digest,
            body_preview: spec.body[..preview].to_vec(),
        }
    }
}

/// How a redirect hop is expressed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectKind {
    /// `302` with a `Location` header.
    Http302,
    /// `200` HTML carrying a `<meta http-equiv="refresh">` tag.
    MetaRefresh,
    /// `200` HTML carrying base64-obfuscated `window.location` JavaScript.
    ObfuscatedJs,
}

impl RedirectKind {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        match rng.gen_range(0..10) {
            0..=5 => RedirectKind::Http302,
            6..=7 => RedirectKind::MetaRefresh,
            _ => RedirectKind::ObfuscatedJs,
        }
    }
}

/// Builds the HTML body for a non-header redirect hop.
pub fn redirect_body(kind: RedirectKind, target_url: &str) -> Vec<u8> {
    match kind {
        RedirectKind::Http302 => Vec::new(),
        RedirectKind::MetaRefresh => format!(
            "<html><head><meta http-equiv=\"refresh\" content=\"0;url={target_url}\"></head></html>"
        )
        .into_bytes(),
        RedirectKind::ObfuscatedJs => {
            let b64 = nettrace::base64::encode(target_url.as_bytes());
            format!(
                "<html><body><script>var _0x={};var u=atob(\"{b64}\");window.location=u;</script></body></html>",
                "[]"
            )
            .into_bytes()
        }
    }
}

/// Bytes materialized for payload bodies (larger sizes are declared via
/// `Content-Length`/`payload_size` but not materialized; see `pcapgen`).
pub const MATERIALIZE_LIMIT: usize = 4096;

/// Generates one infection episode for `family` starting at `start_ts`.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use synthtraffic::{episode::generate_infection, EkFamily};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let ep = generate_infection(&mut rng, EkFamily::Angler, 1.45e9);
/// assert!(ep.is_infection());
/// assert!(ep.unique_hosts() >= 2);
/// assert!(!ep.malicious_digests.is_empty());
/// ```
pub fn generate_infection<R: Rng>(rng: &mut R, family: EkFamily, start_ts: f64) -> Episode {
    let profile = family.profile();
    let mut fac = TxFactory::new(rng);
    let enticement = Enticement::sample(rng);
    let mut txs: Vec<HttpTransaction> = Vec::new();
    let mut malicious_digests = std::collections::BTreeSet::new();
    let mut t = start_ts;

    let n_hosts = profile.hosts.sample(rng).max(2);
    // Only 11 of the paper's 770 infection WCGs lack redirects entirely
    // (Sec. VII); every other trace chains through at least one hop.
    let n_redirects =
        if rng.gen_bool(11.0 / 770.0) { 0 } else { profile.redirects.sample(rng).max(1) };

    // Pacing: most kits are fully scripted and fast, but a quarter of
    // episodes throttle themselves to blend into human-paced browsing
    // (the timing-evasion trade-off Sec. VII discusses). This keeps the
    // temporal features strong but not sufficient on their own.
    let pace: f64 = if rng.gen_bool(0.12) { rng.gen_range(1.5..4.0) } else { 1.0 };

    // Payload disguise: some campaigns ship their payloads compressed or
    // with generic types instead of overt exploit extensions — the
    // paper's false-negative analysis found 89 such cases ("no
    // redirections but compressed malicious payload download").
    let disguised = rng.gen_bool(0.15);

    // --- Stage 0: enticement origin -------------------------------------
    let origin_host = enticement.origin_host(rng);
    let mut referer: Option<String> = None;
    if let Some(origin) = &origin_host {
        let uri = match enticement {
            Enticement::GoogleSearch | Enticement::BingSearch => {
                format!("/search?q={}", hostgen::random_token(rng, 8))
            }
            _ => hostgen::benign_uri(rng),
        };
        let body = hostgen::payload_body(rng, PayloadClass::Html, 2048);
        let size = body.len();
        txs.push(fac.tx(rng, TxSpec {
            ts: t,
            method: Method::Get,
            host: origin,
            uri: uri.clone(),
            referer: None,
            status: 200,
            payload_class: PayloadClass::Html,
            payload_size: size,
            body,
            location: None,
            cookie: None,
        }));
        referer = Some(format!("http://{origin}{uri}"));
        t += pace * rng.gen_range(0.2..1.5);
    }

    // --- Stage 1: redirect chain ----------------------------------------
    // Budget hosts: chain intermediaries, landing, exploit server, C&C,
    // and CDN noise to fill up to n_hosts.
    let chain_hosts: Vec<String> =
        (0..n_redirects).map(|_| hostgen::random_domain(rng)).collect();
    let landing_host = hostgen::random_domain(rng);
    let exploit_host = if rng.gen_bool(0.6) {
        hostgen::random_domain(rng)
    } else {
        landing_host.clone()
    };
    let session = format!("sid={}", hostgen::random_token(rng, 12));

    let mut hop_targets: Vec<String> = chain_hosts.clone();
    hop_targets.push(landing_host.clone());
    for i in 0..n_redirects {
        let host = &hop_targets[i];
        let next = &hop_targets[i + 1];
        let next_uri = if i + 1 == n_redirects {
            hostgen::landing_uri(rng)
        } else {
            hostgen::benign_uri(rng)
        };
        let target_url = format!("http://{next}{next_uri}");
        let kind = RedirectKind::sample(rng);
        let uri = hostgen::benign_uri(rng);
        let (status, location, body) = match kind {
            RedirectKind::Http302 => (302, Some(target_url.clone()), Vec::new()),
            _ => (200, None, redirect_body(kind, &target_url)),
        };
        let size = body.len();
        // A third of HTML redirect carriers ship compressed, like real
        // servers do — the evidence only appears after decoding.
        let compressed_hop = !body.is_empty() && rng.gen_bool(0.35);
        let mut hop_tx = fac.tx(rng, TxSpec {
            ts: t,
            method: Method::Get,
            host,
            uri: uri.clone(),
            referer: referer.clone(),
            status,
            payload_class: if body.is_empty() { PayloadClass::Empty } else { PayloadClass::Html },
            payload_size: size,
            body,
            location,
            cookie: None,
        });
        if compressed_hop {
            // The coding is derived from the already-computed body digest
            // rather than a fresh draw, keeping the episode RNG stream
            // stable: roughly half the carriers gzip, half deflate.
            let coding =
                if hop_tx.payload_digest & 1 == 0 { "gzip" } else { "deflate" };
            hop_tx.resp_headers.append("Content-Encoding", coding);
        }
        txs.push(hop_tx);
        referer = Some(format!("http://{host}{uri}"));
        // Infectious redirect chains move fast (Sec. III-C: shorter delays
        // between consecutive redirects than benign ones).
        t += pace * rng.gen_range(0.05..0.6);
    }

    // --- Landing page ----------------------------------------------------
    let landing_uri = if rng.gen_bool(0.7) {
        hostgen::landing_uri(rng)
    } else {
        hostgen::benign_uri(rng)
    };
    let landing_body = hostgen::payload_body(rng, PayloadClass::Html, 3500);
    let landing_size = rng.gen_range(20_000..90_000);
    txs.push(fac.tx(rng, TxSpec {
        ts: t,
        method: Method::Get,
        host: &landing_host,
        uri: landing_uri.clone(),
        referer: referer.clone(),
        status: 200,
        payload_class: PayloadClass::Html,
        payload_size: landing_size,
        body: landing_body,
        location: None,
        cookie: Some(session.clone()),
    }));
    let landing_url = format!("http://{landing_host}{landing_uri}");
    t += pace * rng.gen_range(0.1..0.8);

    // --- Stage 2: exploit payload downloads ------------------------------
    let classes = [
        PayloadClass::Pdf,
        PayloadClass::Exe,
        PayloadClass::Jar,
        PayloadClass::Swf,
        PayloadClass::Crypt,
    ];
    let mut any_exploit = false;
    for (class, &expectation) in classes.iter().zip(&profile.payloads[..5]) {
        let count = sample_payload_count(rng, expectation);
        for _ in 0..count {
            any_exploit = true;
            // Disguised campaigns wrap the payload: an archive or generic
            // binary on the wire, even though it is the same exploit.
            let wire_class = if disguised {
                if rng.gen_bool(0.6) { PayloadClass::Archive } else { PayloadClass::Other }
            } else {
                *class
            };
            let size = hostgen::payload_size(rng, *class);
            let body = hostgen::payload_body(rng, wire_class, size.min(MATERIALIZE_LIMIT));
            let uri = hostgen::payload_uri(rng, wire_class);
            let tx = fac.tx(rng, TxSpec {
                ts: t,
                method: Method::Get,
                host: &exploit_host,
                uri,
                referer: Some(landing_url.clone()),
                status: 200,
                payload_class: wire_class,
                payload_size: size,
                body,
                location: None,
                cookie: Some(session.clone()),
            });
            malicious_digests.insert(tx.payload_digest);
            txs.push(tx);
            t += pace * rng.gen_range(0.1..1.0);
        }
    }
    if !any_exploit {
        // Every ground-truth infection involved at least one payload
        // download (Sec. VII); force the family's most likely class.
        let class = PayloadClass::Exe;
        let size = hostgen::payload_size(rng, class);
        let body = hostgen::payload_body(rng, class, size.min(MATERIALIZE_LIMIT));
        let uri = hostgen::payload_uri(rng, class);
        let tx = fac.tx(rng, TxSpec {
            ts: t,
            method: Method::Get,
            host: &exploit_host,
            uri,
            referer: Some(landing_url.clone()),
            status: 200,
            payload_class: class,
            payload_size: size,
            body,
            location: None,
            cookie: Some(session.clone()),
        });
        malicious_digests.insert(tx.payload_digest);
        txs.push(tx);
        t += pace * rng.gen_range(0.1..1.0);
    }

    // --- JavaScript noise (Table I's *.js column) ------------------------
    let js_count = sample_payload_count(rng, profile.payloads[5].min(8.0));
    for _ in 0..js_count {
        let size = hostgen::payload_size(rng, PayloadClass::Js);
        let body = hostgen::payload_body(rng, PayloadClass::Js, size.min(MATERIALIZE_LIMIT));
        let uri = hostgen::payload_uri(rng, PayloadClass::Js);
        txs.push(fac.tx(rng, TxSpec {
            ts: t,
            method: Method::Get,
            host: &landing_host,
            uri,
            referer: Some(landing_url.clone()),
            status: 200,
            payload_class: PayloadClass::Js,
            payload_size: size,
            body,
            location: None,
            cookie: None,
        }));
        t += pace * rng.gen_range(0.05..0.5);
    }

    // --- Stage 3: post-download C&C call-backs ---------------------------
    if rng.gen_bool(CALLBACK_PROB) {
        let n_cc = rng.gen_range(1..=3);
        for _ in 0..n_cc {
            // Never-before-seen hosts, addressed by raw IP (Sec. II-D).
            let cc_host = hostgen::random_public_ip(rng).to_string();
            t += pace * rng.gen_range(0.5..8.0);
            let status = if rng.gen_bool(0.25) {
                0 // C&C never answered: an unreciprocated victim→host edge
            } else if rng.gen_bool(0.7) {
                200
            } else {
                40 * 10 + rng.gen_range(0u16..5)
            };
            let body = if status == 200 {
                hostgen::payload_body(rng, PayloadClass::Text, 64)
            } else {
                Vec::new()
            };
            let size = body.len();
            txs.push(fac.tx(rng, TxSpec {
                ts: t,
                method: Method::Post,
                host: &cc_host,
                uri: "/gate.php".to_string(),
                referer: None,
                status,
                payload_class: if size == 0 { PayloadClass::Empty } else { PayloadClass::Text },
                payload_size: size,
                body,
                location: None,
                cookie: None,
            }));
        }
    }

    // --- CDN noise to fill the host budget --------------------------------
    let used_hosts = {
        let mut h: Vec<&str> = txs.iter().map(|t| t.host.as_str()).collect();
        h.sort_unstable();
        h.dedup();
        h.len()
    };
    for _ in used_hosts..n_hosts {
        let cdn = hostgen::random_domain(rng);
        let class = if rng.gen_bool(0.6) { PayloadClass::Image } else { PayloadClass::Js };
        let size = hostgen::payload_size(rng, class);
        let body = hostgen::payload_body(rng, class, size.min(MATERIALIZE_LIMIT));
        let uri = hostgen::payload_uri(rng, class);
        let dt = rng.gen_range(0.1..1.2);
        t += dt;
        txs.push(fac.tx(rng, TxSpec {
            ts: t,
            method: Method::Get,
            host: &cdn,
            uri,
            referer: Some(landing_url.clone()),
            status: 200,
            payload_class: class,
            payload_size: size,
            body,
            location: None,
            cookie: None,
        }));
    }

    txs.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    Episode {
        label: EpisodeLabel::Infection(family),
        transactions: txs,
        victim: fac.victim(),
        enticement,
        start_ts,
        malicious_digests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(family: EkFamily, seed: u64) -> Episode {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_infection(&mut rng, family, 1_400_000_000.0)
    }

    #[test]
    fn deterministic_for_seed() {
        let a = gen(EkFamily::Angler, 5);
        let b = gen(EkFamily::Angler, 5);
        assert_eq!(a.transactions.len(), b.transactions.len());
        for (x, y) in a.transactions.iter().zip(&b.transactions) {
            assert_eq!(x.uri, y.uri);
            assert_eq!(x.payload_digest, y.payload_digest);
        }
    }

    #[test]
    fn every_infection_downloads_a_payload() {
        // Every ground-truth infection involved a payload download
        // (Sec. VII); disguised campaigns ship it as an archive/binary.
        for seed in 0..30 {
            let ep = gen(EkFamily::Rig, seed);
            let downloaded = ep.transactions.iter().any(|t| {
                t.status / 100 == 2
                    && t.payload_size > 5_000
                    && (t.payload_class.is_exploit_type()
                        || matches!(
                            t.payload_class,
                            nettrace::payload::PayloadClass::Archive
                                | nettrace::payload::PayloadClass::Other
                        ))
            });
            assert!(downloaded, "seed {seed} had no payload download");
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let ep = gen(EkFamily::Nuclear, 7);
        for w in ep.transactions.windows(2) {
            assert!(w[1].ts >= w[0].ts);
        }
        assert!(ep.duration() > 0.0);
    }

    #[test]
    fn host_counts_stay_within_family_range() {
        for seed in 0..50 {
            let ep = gen(EkFamily::Angler, seed);
            let hosts = ep.unique_hosts();
            // Callback hosts can add up to 3 beyond the base budget.
            assert!((2..=74 + 3).contains(&hosts), "seed {seed}: {hosts} hosts");
        }
    }

    #[test]
    fn callbacks_use_fresh_ip_hosts() {
        // Find an episode with callbacks; check POST targets are IPs that
        // never appeared before the download stage.
        let mut found = false;
        for seed in 0..40 {
            let ep = gen(EkFamily::Angler, seed);
            let posts: Vec<&HttpTransaction> =
                ep.transactions.iter().filter(|t| t.method == Method::Post).collect();
            if posts.is_empty() {
                continue;
            }
            found = true;
            for p in &posts {
                assert!(p.host.parse::<std::net::Ipv4Addr>().is_ok(), "host {}", p.host);
                let earlier_non_post = ep
                    .transactions
                    .iter()
                    .filter(|t| t.method != Method::Post)
                    .any(|t| t.host == p.host);
                assert!(!earlier_non_post, "C&C host {} seen earlier", p.host);
            }
        }
        assert!(found, "no episode with callbacks in 40 seeds");
    }

    #[test]
    fn redirect_bodies_roundtrip() {
        let url = "http://evil.example/landing?x=1";
        let meta = redirect_body(RedirectKind::MetaRefresh, url);
        assert!(String::from_utf8(meta).unwrap().contains(url));
        let js = String::from_utf8(redirect_body(RedirectKind::ObfuscatedJs, url)).unwrap();
        assert!(!js.contains(url), "obfuscated body must hide the target");
        let b64 = js.split("atob(\"").nth(1).unwrap().split('"').next().unwrap();
        assert_eq!(nettrace::base64::decode(b64).unwrap(), url.as_bytes());
    }

    #[test]
    fn magnitude_generates_heavy_download_stage() {
        // Magnitude averages ~20 executables per trace in Table I.
        let mut total = 0usize;
        for seed in 0..10 {
            total += gen(EkFamily::Magnitude, seed)
                .transactions
                .iter()
                .filter(|t| t.payload_class == PayloadClass::Exe)
                .count();
        }
        assert!(total >= 120, "expected heavy exe volume, got {total}/10 episodes");
    }

    #[test]
    fn enticement_referrers_match_category() {
        for seed in 0..30 {
            let ep = gen(EkFamily::Fiesta, seed);
            let first = &ep.transactions[0];
            match ep.enticement {
                Enticement::GoogleSearch => assert!(first.host.contains("google")),
                Enticement::BingSearch => assert!(first.host.contains("bing")),
                Enticement::EmptyReferrer | Enticement::RedactedReferrer => {
                    assert!(first.referer().is_none())
                }
                _ => {}
            }
        }
    }
}
