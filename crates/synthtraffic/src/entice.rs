//! Enticement-origin distribution (Figures 1 and 2 of the paper).
//!
//! The paper's Figure 1 measures how victims reached exploit-kit sites:
//! Google search 37 %, Bing search 25 %, empty referrer 17.76 %,
//! compromised site 12.84 %, privacy-redacted referrer 7.51 %, social
//! network < 1 %.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a victim was lured toward the first hop of a conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Enticement {
    /// Google search result click (37 %).
    GoogleSearch,
    /// Bing search result click (25 %).
    BingSearch,
    /// Referrer header intentionally removed (17.76 %).
    EmptyReferrer,
    /// Link on a compromised legitimate site (12.84 %).
    CompromisedSite,
    /// Referrer redacted for privacy (7.51 %).
    RedactedReferrer,
    /// Link shared on a social network (< 1 %).
    SocialNetwork,
}

impl Enticement {
    /// All categories in Figure 1 order.
    pub const ALL: [Enticement; 6] = [
        Enticement::GoogleSearch,
        Enticement::BingSearch,
        Enticement::EmptyReferrer,
        Enticement::CompromisedSite,
        Enticement::RedactedReferrer,
        Enticement::SocialNetwork,
    ];

    /// Display label matching the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            Enticement::GoogleSearch => "google-search",
            Enticement::BingSearch => "bing-search",
            Enticement::EmptyReferrer => "empty-referrer",
            Enticement::CompromisedSite => "compromised-site",
            Enticement::RedactedReferrer => "redacted-referrer",
            Enticement::SocialNetwork => "social-network",
        }
    }

    /// The share Figure 1 reports for this category. The paper's own
    /// percentages (37 + 25 + 17.76 + 12.84 + 7.51 + ~0.9) sum to ≈ 101 %,
    /// so sampling uses [`Enticement::probability`], the normalized value.
    pub fn paper_share(self) -> f64 {
        match self {
            Enticement::GoogleSearch => 0.37,
            Enticement::BingSearch => 0.25,
            Enticement::EmptyReferrer => 0.1776,
            Enticement::CompromisedSite => 0.1284,
            Enticement::RedactedReferrer => 0.0751,
            Enticement::SocialNetwork => 0.0089,
        }
    }

    /// Normalized Figure 1 probability of this category.
    pub fn probability(self) -> f64 {
        let total: f64 = Enticement::ALL.iter().map(|e| e.paper_share()).sum();
        self.paper_share() / total
    }

    /// Samples a category with Figure 1 weights.
    pub fn sample<R: Rng>(rng: &mut R) -> Enticement {
        let mut x: f64 = rng.gen_range(0.0..1.0);
        for e in Enticement::ALL {
            x -= e.probability();
            if x <= 0.0 {
                return e;
            }
        }
        Enticement::SocialNetwork
    }

    /// The origin host name used when this enticement carries a referrer,
    /// or `None` when the referrer is absent/redacted.
    pub fn origin_host<R: Rng>(self, rng: &mut R) -> Option<String> {
        match self {
            Enticement::GoogleSearch => Some("www.google.com".to_string()),
            Enticement::BingSearch => Some("www.bing.com".to_string()),
            Enticement::SocialNetwork => Some(
                if rng.gen_bool(0.7) { "www.facebook.com" } else { "twitter.com" }.to_string(),
            ),
            Enticement::CompromisedSite => Some(crate::hostgen::compromised_domain(rng)),
            Enticement::EmptyReferrer | Enticement::RedactedReferrer => None,
        }
    }

    /// Whether this category sets a referrer header on the first hop.
    pub fn has_referrer(self) -> bool {
        !matches!(self, Enticement::EmptyReferrer | Enticement::RedactedReferrer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let total: f64 = Enticement::ALL.iter().map(|e| e.probability()).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn sampling_matches_figure1_distribution() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(Enticement::sample(&mut rng)).or_insert(0usize) += 1;
        }
        for e in Enticement::ALL {
            let got = counts.get(&e).copied().unwrap_or(0) as f64 / n as f64;
            assert!(
                (got - e.probability()).abs() < 0.02,
                "{}: got {got}, want {}",
                e.label(),
                e.probability()
            );
        }
    }

    #[test]
    fn search_engines_dominate() {
        // The paper's headline: search engines drive 62 % of exposure.
        let search =
            Enticement::GoogleSearch.paper_share() + Enticement::BingSearch.paper_share();
        assert!((search - 0.62).abs() < 1e-9);
    }

    #[test]
    fn origin_hosts_are_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            Enticement::GoogleSearch.origin_host(&mut rng).as_deref(),
            Some("www.google.com")
        );
        assert!(Enticement::EmptyReferrer.origin_host(&mut rng).is_none());
        assert!(Enticement::RedactedReferrer.origin_host(&mut rng).is_none());
        assert!(!Enticement::EmptyReferrer.has_referrer());
        assert!(Enticement::CompromisedSite.has_referrer());
    }
}
