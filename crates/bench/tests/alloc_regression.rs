//! Allocation-count regression fence for the feature-extraction hot
//! path. Kept as the only test in this binary so no concurrent test
//! thread can perturb the process-wide allocation counter.

use dynaminer::features::FeatureExtractor;
use dynaminer::wcg::Wcg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::episode::generate_infection;
use synthtraffic::EkFamily;

#[global_allocator]
static ALLOC: bench::alloc_count::CountingAllocator = bench::alloc_count::CountingAllocator;

/// `extract_37_features` with a reused [`FeatureExtractor`] must not
/// acquire heap in steady state: the CSR view and every traversal
/// scratch buffer grow to the largest conversation seen during warm-up
/// and are reused from then on. The counter pins the claim at exactly 0
/// — any new allocation on the path (a stray `to_vec`, a lowercase
/// copy, a collect) fails this test before it shows up in bench noise.
#[test]
fn extract_37_features_is_allocation_free_in_steady_state() {
    let mut rng = StdRng::seed_from_u64(11);
    let wcgs: Vec<Wcg> = (0..10)
        .map(|i| {
            let ep = generate_infection(&mut rng, EkFamily::ALL[i], 1.4e9);
            Wcg::from_transactions(&ep.transactions)
        })
        .collect();
    let mut extractor = FeatureExtractor::new();
    // Warm-up pass: grows every scratch buffer to the high-water mark.
    // Iterating largest-graph-first is NOT required — the shrink/regrow
    // discipline is part of what this fence covers.
    let mut warm = 0.0;
    for w in &wcgs {
        warm += extractor.extract(w).values()[0];
    }
    std::hint::black_box(warm);

    let before = bench::alloc_count::allocations();
    let mut acc = 0.0;
    for _ in 0..3 {
        for w in &wcgs {
            acc += extractor.extract(w).values().iter().sum::<f64>();
        }
    }
    std::hint::black_box(acc);
    let delta = bench::alloc_count::allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state extraction performed {delta} heap allocations over \
         {} extractions; the hot path must not allocate",
        3 * wcgs.len()
    );
}
