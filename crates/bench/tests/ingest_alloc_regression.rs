//! Allocation-count regression fence for the zero-copy ingest packet
//! stage. Kept as the only test in this binary so no concurrent test
//! thread can perturb the process-wide allocation counter.

use nettrace::arena::{subslice_range, PacketSpan};
use nettrace::ether::{EtherFrame, ETHERTYPE_IPV4};
use nettrace::ipv4::{Ipv4Packet, PROTO_TCP};
use nettrace::reassembly::{Endpoint, FlowKey, SpanReassembler, StreamBuf};
use nettrace::tcp::TcpSegment;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::episode::generate_infection;
use synthtraffic::pcapgen::episode_pcap;
use synthtraffic::EkFamily;

#[global_allocator]
static ALLOC: bench::alloc_count::CountingAllocator = bench::alloc_count::CountingAllocator;

/// One pass of the per-packet ingest stage: capture walk → spans →
/// link/network/transport decode → span reassembly → stream gather.
/// This is the loop `ingest/packets_steady_allocs` in the bench suite
/// times; the fence here pins its allocation count so a regression
/// fails a test before it shows up as bench noise.
fn packet_stage(
    capture: &[u8],
    spans: &mut Vec<PacketSpan>,
    reassembler: &mut SpanReassembler,
    streams: &mut StreamBuf,
    gaps: &mut u64,
) -> usize {
    let mut report = nettrace::IngestReport::new();
    spans.clear();
    nettrace::capture::read_packet_spans_lenient(capture, &mut report, spans);
    for span in spans.iter() {
        let data = &capture[span.range.clone()];
        let Ok(eth) = EtherFrame::parse(data) else { continue };
        if eth.ethertype != ETHERTYPE_IPV4 {
            continue;
        }
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else { continue };
        if ip.protocol != PROTO_TCP {
            continue;
        }
        let Ok(tcp) = TcpSegment::parse(ip.payload) else { continue };
        let key = FlowKey::new(
            Endpoint::new(ip.src, tcp.src_port),
            Endpoint::new(ip.dst, tcp.dst_port),
        );
        reassembler.push_span(span.ts, key, &tcp, subslice_range(capture, tcp.payload));
    }
    reassembler.gather_streams(capture, gaps, streams);
    spans.len()
}

/// After one warm-up pass grows the span vector, the flow table, the
/// segment pools, and the gather buffer to their high-water marks, the
/// packet stage must not touch the heap again: spans index the capture
/// buffer in place and reassembly only materializes bytes on conflict,
/// which a clean warm capture never triggers twice. The counter pins
/// the ISSUE target of ≤1 alloc/packet amortized at exactly 0.
#[test]
fn ingest_packet_stage_is_allocation_free_in_steady_state() {
    let mut rng = StdRng::seed_from_u64(3);
    let ep = generate_infection(&mut rng, EkFamily::Nuclear, 1.4e9);
    let pcap = episode_pcap(&ep).unwrap();

    let mut spans = Vec::new();
    let mut reassembler = SpanReassembler::default();
    let mut streams = StreamBuf::new();
    let mut gaps = 0u64;
    // Two warm-up passes: the first grows buffers to the capture's
    // high-water mark, the second lets pool free-lists settle (a pooled
    // segment released on pass N is only reusable on pass N+1).
    let n_packets = packet_stage(&pcap, &mut spans, &mut reassembler, &mut streams, &mut gaps);
    packet_stage(&pcap, &mut spans, &mut reassembler, &mut streams, &mut gaps);
    assert!(n_packets > 50, "fixture capture too small to be meaningful");

    let before = bench::alloc_count::allocations();
    let mut acc = 0usize;
    for _ in 0..3 {
        acc += packet_stage(&pcap, &mut spans, &mut reassembler, &mut streams, &mut gaps);
    }
    std::hint::black_box(acc);
    let delta = bench::alloc_count::allocations() - before;
    assert_eq!(
        delta,
        0,
        "steady-state ingest packet stage performed {delta} heap allocations \
         over {} packets ({:.3} allocs/packet); the per-packet path must not \
         allocate once buffers are warm",
        3 * n_packets,
        delta as f64 / (3 * n_packets) as f64
    );
}
