//! Regenerates **Table III**: impact of feature groups on classifier
//! accuracy — all features vs graph features only vs everything except
//! graph features, evaluated with 10-fold cross-validation on the ground
//! truth (TPR, FPR, F-score, ROC area).

use dynaminer::classifier::FeatureSelection;
use mlearn::crossval::cross_validate;
use mlearn::forest::ForestConfig;

const PAPER: [(&str, f64, f64, f64, f64); 3] = [
    ("All", 0.973, 0.015, 0.972, 0.978),
    ("GFs", 0.958, 0.059, 0.954, 0.928),
    ("HLFs+HFs+TFs", 0.806, 0.304, 0.848, 0.860),
];

fn main() {
    bench::banner("Table III: feature-group ablation (10-fold CV)");
    let corpus = bench::ground_truth_corpus();
    let data = bench::corpus_dataset(&corpus);
    println!("{} WCGs featurized\n", data.len());
    println!(
        "{:<14} {:>22} {:>22} {:>22} {:>22}",
        "Features", "TPR", "FPR", "F-score", "ROC Area"
    );
    for (i, selection) in
        [FeatureSelection::All, FeatureSelection::GraphOnly, FeatureSelection::NonGraph]
            .into_iter()
            .enumerate()
    {
        let projected = data.select_features(&selection.columns());
        let r = cross_validate(&projected, 10, &ForestConfig::default(), 1, bench::EXPERIMENT_SEED);
        let paper = PAPER[i];
        println!(
            "{:<14} {} {} {} {}",
            selection.label(),
            bench::vs(r.confusion.tpr(), paper.1),
            bench::vs(r.confusion.fpr(), paper.2),
            bench::vs(r.confusion.f1(), paper.3),
            bench::vs(r.roc_area, paper.4),
        );
    }
}
