//! CI sanity check for honest multicore scaling (DESIGN.md §14).
//!
//! Replays one merged stream twice — through single-threaded
//! [`OnTheWireDetector`]s with the calling thread's
//! `CLOCK_THREAD_CPUTIME_ID` sampled around the loop, and through a
//! 2-shard [`StreamEngine`] whose workers self-report the same per-thread
//! clock — and requires `sum(per_shard_cpu_ns)` to land within ±10% of
//! the single-thread reference. Wall-clock on a shared CI runner says
//! nothing about partitioning; CPU time does: if sharding duplicated
//! work (double classification, redundant graph rebuilds) or burned CPU
//! spinning on the queues, the sum would exceed the reference and this
//! binary exits non-zero.
//!
//! The reference replays each shard's *partition* (same
//! [`streamd::shard_of`] split) through its own detector on one thread,
//! so both sides run identical per-detector state sizes and the ratio
//! isolates pure engine overhead. Against a single whole-stream detector
//! the comparison would be biased low: half the clients per tracker
//! means smaller maps and fewer candidate conversations per lookup, a
//! real partitioning saving but not the one under test.
//!
//! The feeder thread's CPU is reported but excluded from the comparison:
//! partitioning and queue pushes are new work the single-threaded loop
//! never does, bounded separately by the `replay_sharded_1 ≥ 0.95 ×
//! replay_live` bar in the throughput bench.

use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use streamd::{StreamConfig, StreamEngine};
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};

const SHARDS: usize = 2;
const TOLERANCE: f64 = 0.10;
/// Below this both measurements are clock-granularity noise; the run is
/// sized (via `PASSES`) so the reference lands well above it.
const MIN_REFERENCE_NS: u64 = 20_000_000;
const RUNS: usize = 5;
/// Full-stream replays per measurement (fresh detector/engine each), so
/// one-time costs — thread spawn, cold caches — stop mattering at ±10%.
const PASSES: usize = 5;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut episodes = Vec::new();
    for i in 0..24 {
        episodes.push(generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9));
        episodes.push(generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9));
    }
    let labelled: Vec<(&[nettrace::HttpTransaction], bool)> =
        episodes.iter().map(|e| (e.transactions.as_slice(), e.is_infection())).collect();
    let clf = Classifier::fit_default(&build_dataset(labelled.iter().copied()), 7);
    let stream = {
        let mut stream: Vec<nettrace::HttpTransaction> =
            episodes.iter().flat_map(|e| e.transactions.iter().cloned()).collect();
        stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        nettrace::assign_seq(&mut stream);
        stream
    };
    let config =
        || DetectorConfig { alert_threshold: 1.1, ..DetectorConfig::default() };
    let partitions: Vec<Vec<&nettrace::HttpTransaction>> = {
        let mut p = vec![Vec::new(), Vec::new()];
        for tx in &stream {
            p[streamd::shard_of(tx.client.addr, SHARDS)].push(tx);
        }
        p
    };

    // Each run measures the reference and the sharded replay
    // back-to-back and contributes one ratio; the median ratio is
    // compared. CPU frequency drifts over a CI job's lifetime, so
    // comparing a best-of reference from one phase of the binary against
    // a best-of shard sum from another is noisier than pairing
    // measurements taken under the same conditions.
    let mut reference_ns = u64::MAX;
    let mut shard_sum_ns = u64::MAX;
    let mut feeder_ns = 0u64;
    let mut ratios = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        // Detector construction (classifier clone) is setup, not replay:
        // the engine's shard clocks don't count their equivalent either.
        let mut dets: Vec<OnTheWireDetector> = (0..PASSES * SHARDS)
            .map(|_| OnTheWireDetector::new(clf.clone(), config()))
            .collect();
        let cpu0 = telemetry::thread_cpu_ns();
        for (i, det) in dets.iter_mut().enumerate() {
            for tx in &partitions[i % SHARDS] {
                std::hint::black_box(det.observe(tx));
            }
        }
        let reference = telemetry::thread_cpu_ns().saturating_sub(cpu0);
        reference_ns = reference_ns.min(reference);

        let mut sum = 0u64;
        let mut feeder = 0u64;
        for _ in 0..PASSES {
            let mut engine = StreamEngine::new(
                clf.clone(),
                config(),
                StreamConfig { shards: SHARDS, ..StreamConfig::default() },
            );
            let report = engine.process(stream.iter().cloned());
            assert_eq!(report.processed, stream.len() as u64, "engine must drain the stream");
            sum += report.per_shard_cpu_ns.iter().sum::<u64>();
            feeder += report.feeder_cpu_ns;
        }
        if sum < shard_sum_ns {
            shard_sum_ns = sum;
            feeder_ns = feeder;
        }
        ratios.push(sum as f64 / reference.max(1) as f64);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];

    println!(
        "single-thread partitioned replay: {:.1} ms CPU over {} transactions × {PASSES} passes (best of {RUNS})",
        reference_ns as f64 / 1e6,
        stream.len()
    );
    println!(
        "{SHARDS}-shard engine replay: {:.1} ms summed shard CPU (+{:.1} ms feeder, excluded)",
        shard_sum_ns as f64 / 1e6,
        feeder_ns as f64 / 1e6
    );
    println!(
        "per-run CPU ratios {:?} → median {ratio:.3}",
        ratios.iter().map(|r| (r * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );

    if reference_ns == 0 && shard_sum_ns == 0 {
        println!("SKIP: no per-thread CPU clock on this platform");
        return;
    }
    if reference_ns < MIN_REFERENCE_NS {
        println!(
            "SKIP: reference below {} ms — too small to compare at ±{:.0}%",
            MIN_REFERENCE_NS / 1_000_000,
            TOLERANCE * 100.0
        );
        return;
    }
    if (ratio - 1.0).abs() > TOLERANCE {
        eprintln!(
            "FAIL: summed shard CPU is {:.1}% of the single-thread reference \
             (allowed {:.0}%..{:.0}%) — sharding is duplicating or wasting work",
            ratio * 100.0,
            (1.0 - TOLERANCE) * 100.0,
            (1.0 + TOLERANCE) * 100.0
        );
        std::process::exit(1);
    }
    println!("PASS: shard CPU sum within ±{:.0}% of single-thread", TOLERANCE * 100.0);
}
