//! Extension experiment: the **adversarial drift lab** — detector decay
//! under time-walking evasion campaigns, and what shadow-model
//! retraining wins back.
//!
//! Runs the same seeded drift campaign twice: once with the day-0
//! champion pinned for the whole campaign (the decay curve) and once
//! with the shadow-retraining loop promoting challengers between epochs
//! (the recovery curve). VirusTotal is scored alongside so the
//! signature-lag advantage (Table V, 9.25-day average lag) is visible
//! per epoch as the adversary drifts.
//!
//! Exits non-zero when the retrained detector's final-epoch recall
//! fails to recover above the unretrained one — this is the CI gate for
//! the `drift-lab` job.

use driftlab::{run_drift_lab, DriftLabConfig, DriftScheduleConfig, RetrainConfig};

fn main() {
    bench::banner("Extension: adversarial drift lab (decay + shadow retraining)");

    // DYNAMINER_SCALE multiplies the lab's native 0.05 default, so the
    // default run matches the golden-pinned campaign exactly.
    let scale = 0.05 * bench::scale();
    let schedule = DriftScheduleConfig {
        seed: bench::EXPERIMENT_SEED,
        scale,
        ..DriftScheduleConfig::default()
    };
    let base = DriftLabConfig {
        schedule,
        train_scale: scale,
        ..DriftLabConfig::default()
    };

    println!("campaign: {} epochs x {:.0} days, scale {scale}\n", base.schedule.epochs,
        base.schedule.epoch_secs / 86_400.0);

    let pinned = run_drift_lab(&base, None);
    let retrained_cfg =
        DriftLabConfig { retrain: Some(RetrainConfig::default()), ..base.clone() };
    let retrained = run_drift_lab(&retrained_cfg, None);

    println!(
        "{:<6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "epoch", "recall", "recall", "fpr", "vt-live", "vt-end", "model", "knobs"
    );
    println!(
        "{:<6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "", "(pinned)", "(retrain)", "(retrain)", "", "", "(retr.)", "(mimic)"
    );
    for (p, r) in pinned.curve.entries.iter().zip(&retrained.curve.entries) {
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>8.2}",
            p.epoch,
            p.recall,
            r.recall,
            r.fpr,
            p.vt_recall_live,
            p.vt_recall_epoch_end,
            r.model_version,
            p.mean_knobs.benign_mimicry,
        );
    }

    println!("\npromotion ledger ({} decisions):", retrained.ledger.len());
    for e in &retrained.ledger {
        println!(
            "  epoch {}: champion v{} r={:.3} vs challenger r={:.3} (margin {:+.3}, fpr {:+.3}) -> {}",
            e.epoch,
            e.champion_version,
            e.champion_recall,
            e.challenger_recall,
            e.recall_margin,
            e.fpr_regression,
            if e.promoted { format!("PROMOTED (v{})", e.model_version_after) } else { "held".into() },
        );
    }

    let initial = pinned.curve.initial_recall();
    let decayed = pinned.curve.final_recall();
    let recovered = retrained.curve.final_recall();
    let lost = initial - decayed;
    println!("\ninitial recall          {initial:.3}");
    println!("final recall, pinned    {decayed:.3}  (lost {lost:.3})");
    println!(
        "final recall, retrained {recovered:.3}  (won back {:.0}% of the loss)",
        if lost > 0.0 { 100.0 * (recovered - decayed) / lost } else { 0.0 }
    );

    // The CI gate: retraining must beat the pinned model where it ends.
    if recovered <= decayed {
        eprintln!(
            "FAIL: retrained final-epoch recall {recovered:.3} did not recover above pinned {decayed:.3}"
        );
        std::process::exit(1);
    }
    println!("\nPASS: retrained final-epoch recall recovered above the pinned model");
}
