//! Ablation: **comprehensive WCG vs prior-work abstractions**.
//!
//! DynaMiner's central claim is that combining pre-download redirection,
//! payload download, and post-download dynamics beats abstractions that
//! use only part of the conversation. This bench classifies, with the
//! same ERF, graphs built from:
//!
//! * the full conversation (DynaMiner's WCG),
//! * the *download graph*: only successful payload downloads (the
//!   downloader-graph abstraction of Kwon et al., ref. 12),
//! * the *redirection graph*: only redirect-carrying transactions
//!   (the SpiderWeb abstraction of Stringhini et al., ref. 25),
//! * the conversation without POST traffic (no post-download dialogue,
//!   BotHunter-style evidence removed).

use dynaminer::classifier::build_dataset;
use mlearn::crossval::cross_validate;
use mlearn::forest::ForestConfig;
use nettrace::http::Method;
use nettrace::payload::PayloadClass;
use nettrace::HttpTransaction;
use synthtraffic::Episode;

fn is_download(tx: &HttpTransaction) -> bool {
    tx.status / 100 == 2
        && tx.payload_size > 5_000
        && (tx.payload_class.is_exploit_type()
            || matches!(tx.payload_class, PayloadClass::Archive | PayloadClass::Other))
}

fn is_redirecting(tx: &HttpTransaction) -> bool {
    tx.is_redirect() || !dynaminer::wcg::redirect::targets(tx).is_empty()
}

struct Outcome {
    tpr: f64,
    fpr: f64,
    auc: f64,
    /// Fraction of infection / benign conversations whose abstraction is
    /// non-empty — a degenerate (empty) graph classifies on absence alone.
    coverage: (f64, f64),
}

fn evaluate(corpus: &[Episode], keep: &dyn Fn(&HttpTransaction) -> bool) -> Outcome {
    let items: Vec<(Vec<HttpTransaction>, bool)> = corpus
        .iter()
        .map(|e| {
            let txs: Vec<HttpTransaction> =
                e.transactions.iter().filter(|t| keep(t)).cloned().collect();
            (txs, e.is_infection())
        })
        .collect();
    let inf_total = items.iter().filter(|(_, l)| *l).count().max(1);
    let ben_total = items.len() - inf_total;
    let inf_cov =
        items.iter().filter(|(t, l)| *l && !t.is_empty()).count() as f64 / inf_total as f64;
    let ben_cov = items.iter().filter(|(t, l)| !*l && !t.is_empty()).count() as f64
        / ben_total.max(1) as f64;
    let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
    let r = cross_validate(&data, 10, &ForestConfig::default(), 1, bench::EXPERIMENT_SEED);
    Outcome {
        tpr: r.confusion.tpr(),
        fpr: r.confusion.fpr(),
        auc: r.roc_area,
        coverage: (inf_cov, ben_cov),
    }
}

fn main() {
    bench::banner("Ablation: comprehensive WCG vs prior-work abstractions");
    let corpus = bench::ground_truth_corpus();
    type KeepFn<'a> = &'a dyn Fn(&HttpTransaction) -> bool;
    let configs: [(&str, KeepFn); 4] = [
        ("full conversation (DynaMiner)", &|_| true),
        ("download graph [12]-style", &is_download),
        ("redirection graph [25]-style", &is_redirecting),
        ("without POST dialogue", &|t| t.method != Method::Post),
    ];
    println!(
        "{:<34} {:>7} {:>7} {:>9} {:>10} {:>10}",
        "Abstraction", "TPR", "FPR", "ROC area", "inf cover", "ben cover"
    );
    for (label, keep) in configs {
        let o = evaluate(&corpus, keep);
        println!(
            "{label:<34} {:>7.3} {:>7.3} {:>9.3} {:>9.1}% {:>9.1}%",
            o.tpr,
            o.fpr,
            o.auc,
            100.0 * o.coverage.0,
            100.0 * o.coverage.1
        );
    }
    println!(
        "\nreading guide: the partial abstractions score deceptively well on this\n\
         per-conversation benchmark because benign conversations usually produce an\n\
         EMPTY download/redirect graph — absence itself becomes the classifier\n\
         (see the benign coverage column). Only the full WCG is non-degenerate for\n\
         every conversation, which is what the paper's on-the-wire watcher needs:\n\
         it must keep scoring a conversation as it grows, not just note that a\n\
         sub-graph exists."
    );
}
