//! Regenerates **Figure 1**: the overall distribution of enticement
//! strategies across infection traces (category, count, percentage).

use synthtraffic::Enticement;

fn main() {
    bench::banner("Figure 1: enticement strategy distribution");
    let corpus = bench::ground_truth_corpus();
    let infections: Vec<_> = corpus.iter().filter(|e| e.is_infection()).collect();
    let total = infections.len();
    println!("{:<20} {:>6} {:>9} {:>14}", "Category", "Count", "Measured", "Paper share");
    for category in Enticement::ALL {
        let count = infections.iter().filter(|e| e.enticement == category).count();
        println!(
            "{:<20} {:>6} {:>8.2}% {:>13.2}%",
            category.label(),
            count,
            100.0 * count as f64 / total as f64,
            100.0 * category.paper_share(),
        );
    }
    let search = infections
        .iter()
        .filter(|e| {
            matches!(e.enticement, Enticement::GoogleSearch | Enticement::BingSearch)
        })
        .count();
    println!(
        "\nsearch engines drive {:.1}% of exposure (paper: 62%)",
        100.0 * search as f64 / total as f64
    );
}
