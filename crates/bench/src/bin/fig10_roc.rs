//! Regenerates **Figure 10**: the ROC curve of the ERF classifier on all
//! 37 features (pooled 10-fold cross-validation scores).
//!
//! Prints `threshold fpr tpr` triples downsampled to ~25 points plus the
//! area under the curve.

use mlearn::crossval::cross_validate;
use mlearn::forest::ForestConfig;
use mlearn::metrics::roc_curve;

fn main() {
    bench::banner("Figure 10: ROC curve for the ERF classifier (all features)");
    let corpus = bench::ground_truth_corpus();
    let data = bench::corpus_dataset(&corpus);
    let result = cross_validate(&data, 10, &ForestConfig::default(), 1, bench::EXPERIMENT_SEED);
    let labels: Vec<bool> = data.labels().iter().map(|&l| l == 1).collect();
    let curve = roc_curve(&result.scores, &labels);

    println!("{:>10} {:>8} {:>8}", "threshold", "FPR", "TPR");
    let step = (curve.len() / 25).max(1);
    for (i, point) in curve.iter().enumerate() {
        if i % step == 0 || i + 1 == curve.len() {
            println!("{:>10.4} {:>8.4} {:>8.4}", point.threshold, point.fpr, point.tpr);
        }
    }
    println!("\nROC area: {} ", bench::vs(result.roc_area, 0.978));
    // The paper's curve reaches TPR ≈ 0.973 at FPR ≈ 0.015; report the
    // operating point closest to that FPR.
    let op = curve
        .iter()
        .rfind(|p| p.fpr <= 0.02)
        .expect("curve has low-FPR points");
    println!("TPR at FPR ≤ 0.02: {:.3} (paper: 0.973 at 0.015)", op.tpr);
}
