//! Regenerates **Figure 4**: average counts of HTTP header elements for
//! infection vs benign traces — GET/POST requests, redirection chains,
//! and response-code classes.
//!
//! Paper finding (Sec. II-D): infections show visibly higher (sometimes
//! more than double) averages for GETs, POSTs, redirection chains, and
//! HTTP 40x codes; a typical infection has ≥ 2 redirection hops while a
//! typical benign trace has none.

use dynaminer::wcg::Wcg;

fn main() {
    bench::banner("Figure 4: average HTTP header element counts");
    let corpus = bench::ground_truth_corpus();
    let mut inf = [0.0f64; 8];
    let mut ben = [0.0f64; 8];
    let mut counts = (0usize, 0usize);
    for ep in &corpus {
        let wcg = Wcg::from_transactions(&ep.transactions);
        let row = [
            wcg.method_counts.get as f64,
            wcg.method_counts.post as f64,
            wcg.redirects.total as f64,
            wcg.redirects.max_chain as f64,
            wcg.status_class_counts[2] as f64,
            wcg.status_class_counts[3] as f64,
            wcg.status_class_counts[4] as f64,
            wcg.referrer_set as f64,
        ];
        if ep.is_infection() {
            counts.0 += 1;
            for (a, v) in inf.iter_mut().zip(row) {
                *a += v;
            }
        } else {
            counts.1 += 1;
            for (a, v) in ben.iter_mut().zip(row) {
                *a += v;
            }
        }
    }
    let labels = [
        "GET requests",
        "POST requests",
        "redirect hops",
        "max redirect chain",
        "HTTP 20x",
        "HTTP 30x",
        "HTTP 40x",
        "referrers set",
    ];
    println!("{:<20} {:>10} {:>10} {:>8}", "Element", "Infection", "Benign", "Ratio");
    for (i, label) in labels.iter().enumerate() {
        let a = inf[i] / counts.0 as f64;
        let b = ben[i] / counts.1 as f64;
        println!(
            "{label:<20} {a:>10.2} {b:>10.2} {:>8.2}",
            if b.abs() > 1e-12 { a / b } else { f64::NAN }
        );
    }
}
