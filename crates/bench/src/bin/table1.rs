//! Regenerates **Table I**: the ground-truth dataset summary — per-family
//! trace counts, host-count min/max/avg, redirect min/max/avg, and payload
//! counts per file type.

use synthtraffic::corpus::CorpusStats;

/// Paper values: (label, pcaps, hosts(min,max,avg), redirects(min,max,avg)).
#[allow(clippy::type_complexity)]
const PAPER: [(&str, usize, (usize, usize, usize), (usize, usize, usize)); 11] = [
    ("Benign", 980, (2, 34, 3), (0, 2, 0)),
    ("Angler", 253, (2, 74, 6), (0, 18, 1)),
    ("RIG", 62, (2, 17, 4), (0, 3, 1)),
    ("Nuclear", 132, (2, 213, 8), (0, 18, 1)),
    ("Magnitude", 43, (2, 231, 20), (0, 12, 2)),
    ("SweetOrange", 33, (2, 90, 8), (0, 6, 1)),
    ("FlashPack", 29, (2, 15, 5), (0, 8, 2)),
    ("Neutrino", 40, (2, 30, 6), (0, 14, 2)),
    ("Goon", 19, (2, 90, 9), (0, 30, 2)),
    ("Fiesta", 89, (2, 182, 7), (0, 3, 1)),
    ("Other Kits", 70, (2, 68, 4), (0, 5, 1)),
];

fn main() {
    bench::banner("Table I: ground-truth dataset");
    let corpus = bench::ground_truth_corpus();
    let rows = CorpusStats::table_rows(&corpus);
    println!(
        "{:<12} {:>6} | {:>4} {:>4} {:>5} | {:>4} {:>4} {:>5} | {:>5} {:>5} {:>5} {:>5} {:>6} {:>5}",
        "Family", "PCAPs", "Hmin", "Hmax", "Havg", "Rmin", "Rmax", "Ravg", "pdf", "exe", "jar",
        "swf", "crypt", "js"
    );
    for row in &rows {
        let p = row.payload_counts;
        println!(
            "{:<12} {:>6} | {:>4} {:>4} {:>5.1} | {:>4} {:>4} {:>5.1} | {:>5} {:>5} {:>5} {:>5} {:>6} {:>5}",
            row.label, row.episodes, row.hosts.0, row.hosts.1, row.hosts.2, row.redirects.0,
            row.redirects.1, row.redirects.2, p[0], p[1], p[2], p[3], p[4], p[5]
        );
    }
    println!("\npaper reference (hosts / redirects):");
    for (label, pcaps, h, r) in PAPER {
        println!(
            "{label:<12} {pcaps:>6} | {:>4} {:>4} {:>5} | {:>4} {:>4} {:>5}",
            h.0, h.1, h.2, r.0, r.1, r.2
        );
    }
}
