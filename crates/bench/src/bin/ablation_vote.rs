//! Ablation: **probability averaging vs majority voting** in the ensemble.
//!
//! The paper's Sec. V-A argues for combining trees "by averaging their
//! probabilistic prediction (which reduces variance)" instead of the
//! standard majority vote. This bench runs 10-fold CV with both
//! combination rules and also reports score granularity (how many distinct
//! operating points each rule offers a deployment).

use mlearn::crossval::cross_validate;
use mlearn::forest::{Combination, ForestConfig};

fn main() {
    bench::banner("Ablation: probability averaging vs majority voting");
    let corpus = bench::ground_truth_corpus();
    let data = bench::corpus_dataset(&corpus);
    println!(
        "{:<24} {:>7} {:>7} {:>9} {:>9} {:>16}",
        "Combination", "TPR", "FPR", "F-score", "ROC area", "distinct scores"
    );
    for combination in [Combination::ProbabilityAveraging, Combination::MajorityVote] {
        let config = ForestConfig { combination, ..ForestConfig::default() };
        let r = cross_validate(&data, 10, &config, 1, bench::EXPERIMENT_SEED);
        let distinct: std::collections::BTreeSet<u64> =
            r.scores.iter().map(|s| s.to_bits()).collect();
        println!(
            "{:<24} {:>7.3} {:>7.3} {:>9.3} {:>9.3} {:>16}",
            match combination {
                Combination::ProbabilityAveraging => "probability averaging",
                Combination::MajorityVote => "majority vote",
            },
            r.confusion.tpr(),
            r.confusion.fpr(),
            r.confusion.f1(),
            r.roc_area,
            distinct.len(),
        );
    }
    println!(
        "\nexpected: averaging matches or beats voting on ROC area and offers a much\n\
         finer score lattice (more deployable operating points); the paper chose\n\
         averaging for its variance reduction."
    );
}
