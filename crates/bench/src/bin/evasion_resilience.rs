//! Extension experiment: **evasion resilience** (the paper's Sec. VII
//! discussion, quantified).
//!
//! Applies each cloaking strategy a determined adversary might use —
//! fileless (in-memory) infection, direct infection without redirects,
//! silent or delayed C&C — to held-out infections and measures both the
//! offline classifier's detection rate and the live detector's alert
//! rate. The paper predicts graceful degradation: missing one kind of
//! dynamics is survivable because the ERF averages over substructures;
//! fileless + no-redirect + silent ("full cloaking") removes the most
//! revealing features and should evade.

use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use dynaminer::wcg::Wcg;
use synthtraffic::evasion::{self, Evasion};

fn main() {
    bench::banner("Extension: evasion resilience (Sec. VII quantified)");
    let train = bench::ground_truth_corpus();
    let classifier = bench::train_default(&train);

    let validation = bench::validation_corpus();
    let stride = (validation.len() / 500).max(1);
    let infections: Vec<_> = validation
        .into_iter()
        .step_by(stride)
        .filter(|e| e.is_infection())
        .collect();
    println!("{} held-out infections per variant\n", infections.len());

    println!(
        "{:<22} {:>18} {:>18} {:>12}",
        "Evasion", "offline detected", "live alerted", "mean score"
    );
    for evasion in Evasion::ALL {
        let mut offline = 0usize;
        let mut live = 0usize;
        let mut score_sum = 0.0f64;
        for ep in &infections {
            let cloaked = evasion::apply(evasion, ep.clone());
            let wcg = Wcg::from_transactions(&cloaked.transactions);
            let score = classifier.score_wcg(&wcg);
            score_sum += score;
            offline += usize::from(score >= 0.5);
            let mut det =
                OnTheWireDetector::new(classifier.clone(), DetectorConfig::default());
            for tx in &cloaked.transactions {
                det.observe(tx);
            }
            live += usize::from(!det.alerts().is_empty());
        }
        let n = infections.len();
        println!(
            "{:<22} {:>11}/{:<5} {:>12}/{:<5} {:>11.3}",
            evasion.label(),
            offline,
            n,
            live,
            n,
            score_sum / n as f64
        );
    }
    println!(
        "\nreading guide: single-stage cloaking should cost the attacker little\n\
         effectiveness but also buy limited evasion (the ERF's substructure\n\
         averaging); full cloaking defeats a payload-agnostic detector — the\n\
         limitation the paper concedes for fileless drive-bys. Note the live\n\
         detector depends on the clue gate: fileless infections without risky\n\
         downloads are only caught when their redirect chains trip it."
    );
}
