//! Extension experiment: **exploit-kit family attribution**.
//!
//! The paper classifies infection vs benign; Table I shows the families
//! differ sharply in host counts, redirect-chain lengths, and payload
//! mixes — enough structure to ask *which kit* infected the victim from
//! the same 37 payload-agnostic features. Ten-class ERF with stratified
//! 5-fold cross-validation over the infection ground truth.

use dynaminer::features;
use dynaminer::wcg::Wcg;
use mlearn::crossval::stratified_kfold;
use mlearn::dataset::Dataset;
use mlearn::forest::{ForestConfig, RandomForest};
use synthtraffic::{EkFamily, EpisodeLabel};

fn main() {
    bench::banner("Extension: exploit-kit family attribution (10-class ERF)");
    let corpus = bench::ground_truth_corpus();

    let mut data = Dataset::new(
        features::NAMES.iter().map(|s| s.to_string()).collect(),
        EkFamily::ALL.len(),
    );
    for ep in corpus.iter().filter(|e| e.is_infection()) {
        let EpisodeLabel::Infection(family) = ep.label else { unreachable!() };
        let class = EkFamily::ALL.iter().position(|&f| f == family).expect("known family");
        let fv = features::extract(&Wcg::from_transactions(&ep.transactions));
        data.push(fv.values().to_vec(), class);
    }
    println!("{} infection WCGs, {} families\n", data.len(), data.n_classes());

    let folds = stratified_kfold(data.labels(), 5, bench::EXPERIMENT_SEED);
    let mut predictions = vec![0usize; data.len()];
    for (i, fold) in folds.iter().enumerate() {
        let train = data.subset(&fold.train);
        let forest =
            RandomForest::fit(&train, &ForestConfig::default(), bench::EXPERIMENT_SEED + i as u64);
        for &idx in &fold.test {
            predictions[idx] = forest.predict(data.row(idx));
        }
    }

    let n_classes = data.n_classes();
    let mut confusion = vec![vec![0usize; n_classes]; n_classes];
    for (i, &pred) in predictions.iter().enumerate() {
        confusion[data.label(i)][pred] += 1;
    }

    println!("{:<12} {:>7} {:>8} {:>24}", "Family", "traces", "recall", "most confused with");
    let mut correct_total = 0usize;
    for (c, family) in EkFamily::ALL.iter().enumerate() {
        let total: usize = confusion[c].iter().sum();
        let correct = confusion[c][c];
        correct_total += correct;
        let worst = (0..n_classes)
            .filter(|&o| o != c)
            .max_by_key(|&o| confusion[c][o])
            .filter(|&o| confusion[c][o] > 0)
            .map(|o| format!("{} ({})", EkFamily::ALL[o].name(), confusion[c][o]))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<12} {:>7} {:>7.1}% {:>24}",
            family.name(),
            total,
            100.0 * correct as f64 / total.max(1) as f64,
            worst,
        );
    }
    println!(
        "\noverall attribution accuracy: {:.1}% (chance would be largest-class {:.1}%)",
        100.0 * correct_total as f64 / data.len() as f64,
        100.0 * 253.0 / 770.0 * (data.len() as f64 / data.len() as f64),
    );
    println!(
        "\nreading guide: download-heavy kits (Magnitude, FlashPack) and chain-heavy\n\
         kits (Goon, Neutrino) should attribute well; families with similar Table I\n\
         profiles (RIG vs Other Kits) should confuse with each other — the WCG\n\
         features carry family fingerprints beyond the binary verdict."
    );
}
