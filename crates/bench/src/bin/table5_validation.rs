//! Regenerates **Table V**: classifier performance on independent test
//! data — DynaMiner vs the VirusTotal-style comparator on a held-out
//! validation set (paper: 1500 benign + 7489 infection WCGs).
//!
//! DynaMiner classifies each conversation's WCG; the comparator scans
//! every downloaded payload and flags a conversation when any payload
//! reaches the 3-engine threshold.

use dynaminer::wcg::Wcg;
use synthtraffic::{BenignScenario, EpisodeLabel};
use vtsim::{ScanRequest, VirusTotalSim, DAY_SECS};

fn main() {
    bench::banner("Table V: independent validation, DynaMiner vs VirusTotal-sim");
    let train = bench::ground_truth_corpus();
    let classifier = bench::train_default(&train);
    let validation = bench::validation_corpus();
    let vt = VirusTotalSim::with_default_engines(bench::EXPERIMENT_SEED);
    // The paper submitted the archived test set to VirusTotal at analysis
    // time, months after capture.
    let analysis_ts = synthtraffic::corpus::INFECTION_WINDOW_END + 90.0 * DAY_SECS;

    let mut dm = Counts::default();
    let mut vt_counts = Counts::default();
    let mut vt_timeouts = 0usize;

    for ep in &validation {
        let infected = ep.is_infection();
        // --- DynaMiner ---------------------------------------------------
        let verdict = classifier.predict_wcg(&Wcg::from_transactions(&ep.transactions));
        dm.record(infected, verdict);

        // --- VirusTotal-sim ----------------------------------------------
        let unofficial = matches!(
            ep.label,
            EpisodeLabel::Benign(BenignScenario::UnofficialDownload)
                | EpisodeLabel::Benign(BenignScenario::TorrentSession)
        );
        let mut flagged = false;
        let mut any_scan = false;
        let mut all_timed_out = true;
        for tx in &ep.transactions {
            let scannable = tx.status / 100 == 2
                && tx.payload_size > 0
                && (tx.payload_class.is_exploit_type() || tx.payload_class.is_binary());
            if !scannable {
                continue;
            }
            any_scan = true;
            let report = vt.scan(
                &ScanRequest {
                    digest: tx.payload_digest,
                    truly_malicious: ep.malicious_digests.contains(&tx.payload_digest),
                    first_seen_ts: ep.start_ts,
                    unofficial_benign_source: unofficial,
                },
                analysis_ts,
            );
            if !report.timed_out {
                all_timed_out = false;
            }
            flagged |= report.is_flagged();
        }
        if infected && any_scan && all_timed_out {
            vt_timeouts += 1;
        }
        vt_counts.record(infected, flagged);
    }

    println!(
        "{:<12} {:>22} {:>24} {:>6} {:>6}",
        "System", "benign correct", "infection correct", "FP", "FN"
    );
    for (name, c) in [("DynaMiner", &dm), ("VirusTotal", &vt_counts)] {
        println!(
            "{:<12} {:>9}/{:<6} {:>4.1}% {:>10}/{:<6} {:>5.2}% {:>6} {:>6}",
            name,
            c.tn,
            c.tn + c.fp,
            100.0 * c.tn as f64 / (c.tn + c.fp).max(1) as f64,
            c.tp,
            c.tp + c.fn_,
            100.0 * c.tp as f64 / (c.tp + c.fn_).max(1) as f64,
            c.fp,
            c.fn_,
        );
    }
    println!("\nVirusTotal scan timeouts among missed infections: {vt_timeouts}");
    println!(
        "\npaper: DynaMiner benign 1471/1500 (98.1%), infection 7283/7489 (97.38%), 29 FP, 206 FN\n\
         paper: VirusTotal benign 1409/1500 (94.0%), infection 6310/7489 (84.3%), 91 FP, 1179 FN (110 timeouts)\n\
         headline: DynaMiner outperforms the content-based ensemble by ~11.5% on infections."
    );
    let dm_tpr = dm.tp as f64 / (dm.tp + dm.fn_).max(1) as f64;
    let vt_tpr = vt_counts.tp as f64 / (vt_counts.tp + vt_counts.fn_).max(1) as f64;
    println!("measured margin: {:.1}%", 100.0 * (dm_tpr - vt_tpr));
}

#[derive(Default)]
struct Counts {
    tp: usize,
    fp: usize,
    tn: usize,
    fn_: usize,
}

impl Counts {
    fn record(&mut self, infected: bool, verdict: bool) {
        match (infected, verdict) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }
}
