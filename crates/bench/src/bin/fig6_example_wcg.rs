//! Regenerates **Figure 6**: the example Angler WCG captured 12/21/2015 —
//! a bing.com origin, a compromised site A, a landing page B, an exploit
//! server C serving Flash, and post-download POSTs to three C&C IPs
//! serving CryptoWall. The paper's graph has 8 nodes and 31 edges.
//!
//! Prints the DOT rendering plus the node/edge/stage accounting.

use dynaminer::wcg::{Stage, Wcg};
use nettrace::http::{HeaderMap, Method};
use nettrace::payload::PayloadClass;
use nettrace::reassembly::Endpoint;
use nettrace::HttpTransaction;
use std::net::Ipv4Addr;

#[allow(clippy::too_many_arguments)]
fn tx(
    ts: f64,
    host: &str,
    uri: &str,
    method: Method,
    status: u16,
    class: PayloadClass,
    size: usize,
    referer: Option<&str>,
    location: Option<&str>,
) -> HttpTransaction {
    let mut req_headers = HeaderMap::new();
    req_headers.append("Host", host);
    req_headers.append("User-Agent", "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)");
    if let Some(r) = referer {
        req_headers.append("Referer", r);
    }
    let mut resp_headers = HeaderMap::new();
    resp_headers.append("Content-Type", "text/html");
    if let Some(l) = location {
        resp_headers.append("Location", l);
    }
    HttpTransaction {
        seq: 0,
        ts,
        resp_ts: ts + 0.08,
        client: Endpoint::new(Ipv4Addr::new(10, 1, 1, 20), 49500),
        server: Endpoint::new(Ipv4Addr::new(185, 14, 28, 6), 80),
        host: host.into(),
        method,
        uri: uri.into(),
        req_headers,
        status,
        resp_headers,
        payload_class: class,
        payload_size: size,
        body_preview: Vec::new(),
        payload_digest: (ts * 1000.0) as u64,
    }
}

fn main() {
    bench::banner("Figure 6: example Angler WCG (12/21/2015)");
    // Timestamps relative to 2015-12-21 00:00 UTC.
    let t0 = 1_450_656_000.0;
    use Method::{Get, Post};
    use PayloadClass as P;
    let g = |d: f64| t0 + d;
    let txs = vec![
        // Pre-download: bing (origin) referred the victim to compromised
        // site A, which bounces through landing B to exploit server C.
        tx(g(0.0), "compromised-a.com", "/blog/entry.html", Get, 302, P::Empty, 0,
            Some("http://www.bing.com/search?q=live+stream"),
            Some("http://landing-b.net/forum/view.php?id=9")),
        tx(g(0.4), "landing-b.net", "/forum/view.php?id=9", Get, 302, P::Empty, 0,
            Some("http://compromised-a.com/blog/entry.html"),
            Some("http://exploit-c.ru/gate.php?k=dGVzdA")),
        tx(g(0.9), "exploit-c.ru", "/gate.php?k=dGVzdA", Get, 200, P::Html, 38_221,
            Some("http://landing-b.net/forum/view.php?id=9"), None),
        // Fingerprinting probes on the exploit server.
        tx(g(1.4), "exploit-c.ru", "/check.js", Get, 200, P::Js, 4_412,
            Some("http://exploit-c.ru/gate.php?k=dGVzdA"), None),
        tx(g(1.8), "exploit-c.ru", "/viewtopic.js", Get, 200, P::Js, 2_007,
            Some("http://exploit-c.ru/gate.php?k=dGVzdA"), None),
        // Download dynamics: Flash exploit payloads.
        tx(g(2.4), "exploit-c.ru", "/media/player.swf", Get, 200, P::Swf, 91_337,
            Some("http://exploit-c.ru/gate.php?k=dGVzdA"), None),
        tx(g(3.1), "exploit-c.ru", "/media/loader.swf", Get, 200, P::Swf, 44_092,
            Some("http://exploit-c.ru/gate.php?k=dGVzdA"), None),
        tx(g(4.0), "exploit-c.ru", "/media/update.exe", Get, 200, P::Exe, 312_448,
            Some("http://exploit-c.ru/gate.php?k=dGVzdA"), None),
        // Stray asset fetches on A and B while the page rendered.
        tx(g(1.1), "compromised-a.com", "/wp-content/theme.css", Get, 200, P::Css, 8_114,
            Some("http://compromised-a.com/blog/entry.html"), None),
        tx(g(1.2), "landing-b.net", "/img/banner.png", Get, 200, P::Image, 17_551,
            Some("http://landing-b.net/forum/view.php?id=9"), None),
        // Post-download: CryptoWall C&C call-backs to hosts D, E, F.
        tx(g(22.0), "103.21.59.9", "/gate.php", Post, 200, P::Text, 52, None, None),
        tx(g(31.5), "91.223.88.14", "/gate.php", Post, 200, P::Text, 44, None, None),
        tx(g(47.2), "185.46.11.30", "/gate.php", Post, 404, P::Empty, 0, None, None),
        tx(g(55.0), "103.21.59.9", "/tasks.php", Post, 200, P::Text, 96, None, None),
    ];

    let wcg = Wcg::from_transactions(&txs);
    println!("{}", wcg.to_dot("angler_fig6"));
    println!(
        "nodes = {} (paper: 8), edges = {} (paper: 31)",
        wcg.graph.node_count(),
        wcg.graph.edge_count()
    );
    println!(
        "stage transactions: pre-download {}, download {}, post-download {}",
        wcg.stage_counts[0], wcg.stage_counts[1], wcg.stage_counts[2]
    );
    println!("max redirect chain: {}", wcg.redirects.max_chain);
    let origin = wcg.origin.map(|o| wcg.graph.node(o).name.clone());
    println!("origin node: {:?} (paper: bing.com)", origin);
    let post_edges = wcg
        .graph
        .edges()
        .filter(|(_, _, _, e)| e.stage == Stage::PostDownload)
        .count();
    println!("post-download edges: {post_edges} (paper: POSTs to 3 CryptoWall IPs)");
}
