//! Regenerates **Figures 7–9**: the distributions of average node
//! connectivity (Fig. 7), average betweenness centrality (Fig. 8), and
//! average closeness centrality (Fig. 9) for benign vs infection WCGs —
//! the figures the paper uses to show the discriminating power of its
//! graph features.
//!
//! Prints per-class decile summaries for each measure.

use dynaminer::features::{self, NAMES};
use dynaminer::wcg::Wcg;

const MEASURES: [(&str, &str); 3] = [
    ("avg-node-centrality", "Fig. 7: average node connectivity"),
    ("avg-betweenness-centrality", "Fig. 8: average betweenness centrality"),
    ("avg-closeness-centrality", "Fig. 9: average closeness centrality"),
];

fn deciles(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(f64::total_cmp);
    (0..=10)
        .map(|d| {
            let idx = ((values.len() - 1) * d) / 10;
            values[idx]
        })
        .collect()
}

fn main() {
    bench::banner("Figures 7-9: graph-feature distributions");
    let corpus = bench::ground_truth_corpus();
    let mut infection: Vec<Vec<f64>> = vec![Vec::new(); MEASURES.len()];
    let mut benign: Vec<Vec<f64>> = vec![Vec::new(); MEASURES.len()];
    for ep in &corpus {
        let fv = features::extract(&Wcg::from_transactions(&ep.transactions));
        for (i, (name, _)) in MEASURES.iter().enumerate() {
            let idx = NAMES.iter().position(|n| n == name).expect("known feature");
            let v = fv.values()[idx];
            if ep.is_infection() {
                infection[i].push(v);
            } else {
                benign[i].push(v);
            }
        }
    }
    for (i, (_, title)) in MEASURES.iter().enumerate() {
        println!("{title}");
        let inf_mean = infection[i].iter().sum::<f64>() / infection[i].len() as f64;
        let ben_mean = benign[i].iter().sum::<f64>() / benign[i].len() as f64;
        println!("  mean: infection {inf_mean:.4}  benign {ben_mean:.4}");
        let print_deciles = |label: &str, v: &[f64]| {
            let d = deciles(v.to_vec());
            print!("  {label:<10}");
            for x in d {
                print!(" {x:>7.4}");
            }
            println!();
        };
        print_deciles("infection", &infection[i]);
        print_deciles("benign", &benign[i]);
        println!();
    }
    println!("(columns are the 0th..100th percentile in steps of 10)");
}
