//! Ablation: the **infection-clue redirect threshold** *l* and the
//! trusted-vendor weed-out.
//!
//! Sweeps *l* over 1..=5 (with the high-likelihood download override both
//! on and off) and replays a mixed stream through the live detector,
//! measuring detection rate, classifier invocations (the cost the clue
//! gate exists to bound), and false alerts. Also reports the effect of
//! disabling the trusted-vendor weed-out.

use dynaminer::detector::{ClueConfig, DetectorConfig, OnTheWireDetector};
use dynaminer::trusted::TrustedHosts;
use synthtraffic::Episode;

fn run(
    episodes: &[(Episode, bool)],
    classifier: &dynaminer::Classifier,
    config: DetectorConfig,
) -> (usize, usize, usize) {
    let mut detected = 0usize;
    let mut false_alerts = 0usize;
    let mut classifier_calls = 0usize;
    for (ep, infected) in episodes {
        let mut det = OnTheWireDetector::new(classifier.clone(), config.clone());
        let mut calls = 0usize;
        for tx in &ep.transactions {
            // Each observe() on a watched conversation costs one WCG
            // rebuild + classification; count watched updates.
            det.observe(tx);
            calls += 1;
        }
        let _ = calls;
        classifier_calls += det
            .tracker()
            .conversations()
            .filter(|c| c.watched)
            .map(|c| c.transactions.len())
            .sum::<usize>();
        let alerted = !det.alerts().is_empty();
        if *infected {
            detected += usize::from(alerted);
        } else {
            false_alerts += usize::from(alerted);
        }
    }
    (detected, false_alerts, classifier_calls)
}

fn main() {
    bench::banner("Ablation: clue threshold l and trusted-vendor weed-out");
    let train = bench::ground_truth_corpus();
    let classifier = bench::train_default(&train);
    // Evaluation stream: held-out episodes.
    let validation = bench::validation_corpus();
    // The sweep replays every episode through the live detector twelve
    // times; cap the stream at ~400 episodes (deterministic stride) to
    // keep the sweep minutes-scale at full corpus size.
    let stride = (validation.len() / 400).max(1);
    let episodes: Vec<(Episode, bool)> = validation
        .into_iter()
        .step_by(stride)
        .map(|e| {
            let inf = e.is_infection();
            (e, inf)
        })
        .collect();
    let infections = episodes.iter().filter(|(_, i)| *i).count();
    let benign = episodes.len() - infections;
    println!("{} infection and {} benign episodes\n", infections, benign);

    println!(
        "{:<34} {:>10} {:>12} {:>12}",
        "Configuration", "detected", "false alerts", "clf calls"
    );
    for l in 1..=5usize {
        for high_override in [true, false] {
            let clue = ClueConfig {
                redirect_threshold: l,
                min_payload_likelihood: 0.5,
                high_payload_likelihood: if high_override { 0.8 } else { 2.0 },
            };
            let config = DetectorConfig { clue, ..DetectorConfig::default() };
            let (detected, false_alerts, calls) = run(&episodes, &classifier, config);
            println!(
                "l={l} download-override={:<5}        {:>6}/{:<4} {:>12} {:>12}",
                high_override, detected, infections, false_alerts, calls
            );
        }
    }

    // Trusted-vendor weed-out on/off.
    println!();
    for (label, trusted) in
        [("weed-out ON", TrustedHosts::default()), ("weed-out OFF", TrustedHosts::none())]
    {
        let config = DetectorConfig { trusted, ..DetectorConfig::default() };
        let (detected, false_alerts, calls) = run(&episodes, &classifier, config);
        println!(
            "{label:<34} {:>6}/{:<4} {:>12} {:>12}",
            detected, infections, false_alerts, calls
        );
    }
    println!(
        "\nexpected: raising l cuts classifier invocations but starts missing the\n\
         low-redirect families once the download override is disabled; the paper\n\
         used l=3 forensically and relies on the weed-out to suppress vendor noise."
    );
}
