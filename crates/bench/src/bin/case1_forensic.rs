//! Regenerates **Case Study 1** (Sec. VI-C): forensic detection on a
//! recorded free-live-streaming session.
//!
//! The paper's capture: a 90-minute EURO2016 stream with 18 open tabs,
//! three "out-of-date player" interruptions whose download links the user
//! followed, 32 downloaded payloads, longest redirect chain 4, 3011 HTTP
//! transactions; DynaMiner (redirect threshold 3) raised 5 alerts —
//! 3 Flash-player executables, a JAR, and a PDF. VirusTotal immediately
//! confirmed 4 of the 5; the PDF was flagged clean by all 56 engines and
//! only detected 11 days later by 3 engines.

use dynaminer::detector::{ClueConfig, DetectorConfig};
use dynaminer::forensic;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};
use vtsim::{ScanRequest, VirusTotalSim, DAY_SECS};

fn main() {
    bench::banner("Case study 1: forensic detection on a streaming session");
    let train = bench::ground_truth_corpus();
    let classifier = bench::train_default(&train);

    // Record the session: ~90 minutes of streaming/browsing tabs plus
    // five player-update infection conversations.
    let mut rng = StdRng::seed_from_u64(716); // July 2016
    let session_start = 1_468_166_400.0; // 2016-07-10
    let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
    for i in 0..18 {
        let scenario = if i % 3 == 0 { BenignScenario::Video } else { BenignScenario::AlexaBrowse };
        let ep = generate_benign(&mut rng, scenario, session_start + i as f64 * 280.0);
        stream.extend(ep.transactions);
    }
    let families =
        [EkFamily::Angler, EkFamily::Angler, EkFamily::FlashPack, EkFamily::Rig, EkFamily::Nuclear];
    let mut malicious = std::collections::BTreeSet::new();
    for (i, family) in families.iter().enumerate() {
        let ep = generate_infection(&mut rng, *family, session_start + 1000.0 + i as f64 * 850.0);
        malicious.extend(ep.malicious_digests.iter().copied());
        stream.extend(ep.transactions);
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    println!("session: {} transactions over {:.0} minutes", stream.len(),
        (stream.last().unwrap().ts - session_start) / 60.0);

    // Replay with the paper's forensic settings: redirect threshold 3.
    let config = DetectorConfig {
        clue: ClueConfig { redirect_threshold: 3, ..ClueConfig::default() },
        ..DetectorConfig::default()
    };
    let report = forensic::analyze_transactions(&stream, classifier, config);
    println!(
        "DynaMiner alerts: {} on {} conversations (paper: 5 alerts on 3011 transactions)",
        report.alerts,
        report.conversations.len()
    );
    println!("payload downloads observed: {} (paper: 32)", report.downloads.len());

    // Submit every downloaded payload to the comparator, at capture time
    // and again 11 days later (the paper's resubmission).
    let vt = VirusTotalSim::with_default_engines(bench::EXPERIMENT_SEED);
    let mut flagged_now = 0usize;
    let mut flagged_later = 0usize;
    let mut lag_examples: Vec<(String, usize)> = Vec::new();
    for d in &report.downloads {
        let req = ScanRequest {
            digest: d.digest,
            truly_malicious: malicious.contains(&d.digest),
            first_seen_ts: d.ts,
            unofficial_benign_source: false,
        };
        let now = vt.scan(&req, d.ts);
        let later = vt.scan(&req, d.ts + 11.0 * DAY_SECS);
        flagged_now += usize::from(now.is_flagged());
        flagged_later += usize::from(later.is_flagged());
        if !now.is_flagged() && later.is_flagged() {
            if let Some(days) = vt.days_until_flagged(&req, 30) {
                lag_examples.push((format!("{} ({})", d.host, d.class), days));
            }
        }
    }
    println!(
        "comparator at capture time: {flagged_now}/{} payloads flagged",
        report.downloads.len()
    );
    println!(
        "comparator 11 days later:   {flagged_later}/{} payloads flagged",
        report.downloads.len()
    );
    for (what, days) in lag_examples.iter().take(5) {
        println!("  {what}: first flagged after {days} day(s)");
    }
    println!(
        "\npaper: VirusTotal confirmed 4/5 alerted payloads immediately; the PDF\n\
         was flagged clean by all 56 engines and took 11 days to be detected\n\
         (prior work reports a 9.25-day average lag)."
    );
}
