//! Extension experiment: **stage-aware features (f38–f45)**.
//!
//! The paper annotates WCGs with graph-level properties — conversation
//! stages, cross-domain redirection, redirection length, TLD diversity,
//! the average delay between successive redirects, DNT — but its
//! classifier consumes only the 37 features of Table II. This bench adds
//! those annotations as eight extension features and measures what they
//! buy under 10-fold cross-validation, plus their gain-ratio ranks.

use dynaminer::features::{self, extended_names};
use dynaminer::wcg::Wcg;
use mlearn::crossval::cross_validate;
use mlearn::dataset::Dataset;
use mlearn::forest::ForestConfig;
use mlearn::rank;

fn main() {
    bench::banner("Extension: stage-aware features f38-f45");
    let corpus = bench::ground_truth_corpus();

    // 45-column dataset.
    let mut data = Dataset::new(extended_names(), 2);
    for ep in &corpus {
        let wcg = Wcg::from_transactions(&ep.transactions);
        data.push(features::extract_extended(&wcg), usize::from(ep.is_infection()));
    }

    let base_columns: Vec<usize> = (0..features::FEATURE_COUNT).collect();
    let all_columns: Vec<usize> = (0..features::EXTENDED_COUNT).collect();
    println!("{:<26} {:>7} {:>7} {:>9}", "Feature set", "TPR", "FPR", "ROC area");
    for (label, columns) in
        [("base 37 (paper)", &base_columns), ("extended 45", &all_columns)]
    {
        let projected = data.select_features(columns);
        let r = cross_validate(&projected, 10, &ForestConfig::default(), 1, bench::EXPERIMENT_SEED);
        println!(
            "{label:<26} {:>7.3} {:>7.3} {:>9.3}",
            r.confusion.tpr(),
            r.confusion.fpr(),
            r.roc_area
        );
    }

    println!("\nwhere the extension features land in the 45-feature ranking:");
    let ranking = rank::rank_features(&data, 10, bench::EXPERIMENT_SEED);
    for (pos, f) in ranking.iter().enumerate() {
        if f.column >= features::FEATURE_COUNT {
            println!(
                "  #{:<3} {:<26} gain {:.3} ± {:.3}",
                pos + 1,
                f.name,
                f.mean_gain,
                f.std_gain
            );
        }
    }
}
