//! Regenerates **Table IV**: the top-20 features ranked by gain ratio with
//! 10-fold cross-validation (mean ± std of both gain and rank).

use dynaminer::features::{FeatureGroup, NAMES};
use mlearn::rank;

/// Paper's top-20 (name, gain ratio, average rank) for reference.
const PAPER_TOP: [(&str, f64, f64); 20] = [
    ("avg-inter-trans-time", 0.484, 1.0),
    ("duration", 0.454, 2.0),
    ("order", 0.309, 4.3),
    ("avg-load-centrality", 0.309, 5.6),
    ("avg-closeness-centrality", 0.309, 5.9),
    ("avg-betweenness-centrality", 0.309, 6.2),
    ("avg-pagerank", 0.309, 6.8),
    ("avg-neighbor-degree", 0.306, 9.5),
    ("avg-k-nearest-neighbor", 0.306, 9.6),
    ("avg-degree-connectivity", 0.306, 10.7),
    ("avg-in-degree", 0.290, 11.4),
    ("avg-out-degree", 0.290, 11.6),
    ("convs-length", 0.302, 12.0),
    ("reciprocated-edges", 0.248, 14.4),
    ("graph-size", 0.245, 16.1),
    ("HTTP-20X", 0.251, 16.1),
    ("HTTP-GETs", 0.225, 16.8),
    ("avg-clustering-coeff", 0.255, 17.0),
    ("volume", 0.245, 17.1),
    ("degree", 0.209, 18.0),
];

fn main() {
    bench::banner("Table IV: top-20 feature ranking by gain ratio (10-fold CV)");
    let corpus = bench::ground_truth_corpus();
    let data = bench::corpus_dataset(&corpus);
    let ranking = rank::rank_features(&data, 10, bench::EXPERIMENT_SEED);

    println!("{:<30} {:>20} {:>18} {:>7}", "Feature", "Gain Ratio", "Average Rank", "Group");
    let mut graph_in_top20 = 0usize;
    for feature in ranking.iter().take(20) {
        let group = match FeatureGroup::of_column(feature.column) {
            FeatureGroup::Graph => {
                graph_in_top20 += 1;
                "GF"
            }
            FeatureGroup::HighLevel => "HLF",
            FeatureGroup::Header => "HF",
            FeatureGroup::Temporal => "TF",
        };
        println!(
            "{:<30} {:>11.3} ± {:<6.3} {:>10.1} ± {:<5.2} {:>5}",
            feature.name, feature.mean_gain, feature.std_gain, feature.mean_rank,
            feature.std_rank, group
        );
    }
    println!(
        "\ngraph features in top-20: {graph_in_top20} (paper: 15 of 20)\n"
    );
    println!("paper's top-20 for comparison:");
    for (name, gain, rank) in PAPER_TOP {
        println!("  {name:<30} gain {gain:.3}  rank {rank:.1}");
    }
    // Sanity: every ranked feature is one of the 37.
    assert_eq!(ranking.len(), NAMES.len());
}
