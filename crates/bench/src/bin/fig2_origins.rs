//! Regenerates **Figure 2**: per-family infection-origin distributions —
//! which enticement strategies each exploit-kit family relies on.

use synthtraffic::{EkFamily, Enticement, EpisodeLabel};

fn main() {
    bench::banner("Figure 2: infection origins per exploit-kit family");
    let corpus = bench::ground_truth_corpus();
    print!("{:<12}", "Family");
    for cat in Enticement::ALL {
        print!(" {:>10}", &cat.label()[..cat.label().len().min(10)]);
    }
    println!();
    for family in EkFamily::ALL {
        let members: Vec<_> = corpus
            .iter()
            .filter(|e| e.label == EpisodeLabel::Infection(family))
            .collect();
        if members.is_empty() {
            continue;
        }
        print!("{:<12}", family.name());
        for cat in Enticement::ALL {
            let count = members.iter().filter(|e| e.enticement == cat).count();
            print!(" {:>9.1}%", 100.0 * count as f64 / members.len() as f64);
        }
        println!();
    }
    println!(
        "\npaper: search engines and compromised sites consistently rank as the top\n\
         enticement strategies across all families (shared black-hat SEO)."
    );
}
