//! Regenerates **Figure 3**: average measures of graph properties for
//! infection vs benign WCGs — order, size, diameter, degree, volume,
//! centralities, connectivity, neighbor measures, and PageRank.
//!
//! The paper's qualitative findings (Sec. II-C): infection graphs have
//! more nodes/edges, higher diameter/degree/volume; lower degree-,
//! closeness-, and betweenness-centrality (except load); higher
//! degree-connectivity, neighbor measures, and PageRank mass spread.

use dynaminer::features::{self, NAMES};
use dynaminer::wcg::Wcg;

const PROPS: [&str; 14] = [
    "order",
    "size",
    "degree",
    "density",
    "volume",
    "diameter",
    "avg-degree-centrality",
    "avg-closeness-centrality",
    "avg-betweenness-centrality",
    "avg-load-centrality",
    "avg-node-centrality",
    "avg-neighbor-degree",
    "avg-degree-connectivity",
    "avg-pagerank",
];

fn main() {
    bench::banner("Figure 3: average graph properties (infection vs benign)");
    let corpus = bench::ground_truth_corpus();
    let mut sums = vec![(0.0f64, 0.0f64); PROPS.len()];
    let mut counts = (0usize, 0usize);
    for ep in &corpus {
        let wcg = Wcg::from_transactions(&ep.transactions);
        let fv = features::extract(&wcg);
        let infected = ep.is_infection();
        if infected {
            counts.0 += 1;
        } else {
            counts.1 += 1;
        }
        for (i, prop) in PROPS.iter().enumerate() {
            let idx = NAMES.iter().position(|n| n == prop).expect("known feature");
            if infected {
                sums[i].0 += fv.values()[idx];
            } else {
                sums[i].1 += fv.values()[idx];
            }
        }
    }
    println!("{:<28} {:>12} {:>12} {:>8}", "Property", "Infection", "Benign", "Ratio");
    for (i, prop) in PROPS.iter().enumerate() {
        let inf = sums[i].0 / counts.0 as f64;
        let ben = sums[i].1 / counts.1 as f64;
        let ratio = if ben.abs() > 1e-12 { inf / ben } else { f64::NAN };
        println!("{prop:<28} {inf:>12.4} {ben:>12.4} {ratio:>8.2}");
    }
    println!(
        "\npaper direction: infection > benign for order/size/diameter/degree/volume\n\
         and connectedness measures; infection < benign for degree/closeness/\n\
         betweenness centrality (load excepted)."
    );
}
