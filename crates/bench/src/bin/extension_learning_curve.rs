//! Extension experiment: **learning curve** — how much infection ground
//! truth does the approach need?
//!
//! Trains on growing fractions of the ground-truth corpus and evaluates on
//! a fixed held-out validation slice. Relevant for deployment: collecting
//! labelled infection traces is the expensive part of the paper's
//! methodology (3 years of intelligence).

use dynaminer::wcg::Wcg;
use synthtraffic::Episode;

fn main() {
    bench::banner("Extension: learning curve (training-set size sensitivity)");
    // Fixed evaluation slice, independent of training size.
    let validation = bench::validation_corpus();
    let stride = (validation.len() / 800).max(1);
    let eval: Vec<&Episode> = validation.iter().step_by(stride).collect();
    let eval_infections = eval.iter().filter(|e| e.is_infection()).count();
    println!(
        "evaluation slice: {} episodes ({} infections)\n",
        eval.len(),
        eval_infections
    );

    println!(
        "{:>8} {:>10} {:>7} {:>7}",
        "scale", "train size", "TPR", "FPR"
    );
    for scale in [0.05, 0.1, 0.2, 0.4, 0.7, 1.0] {
        let train = synthtraffic::ground_truth(bench::EXPERIMENT_SEED, scale * bench::scale());
        let classifier = bench::train_default(&train);
        let mut tp = 0usize;
        let mut fn_ = 0usize;
        let mut fp = 0usize;
        let mut tn = 0usize;
        for ep in &eval {
            let verdict = classifier.predict_wcg(&Wcg::from_transactions(&ep.transactions));
            match (ep.is_infection(), verdict) {
                (true, true) => tp += 1,
                (true, false) => fn_ += 1,
                (false, true) => fp += 1,
                (false, false) => tn += 1,
            }
        }
        println!(
            "{:>8.2} {:>10} {:>7.3} {:>7.3}",
            scale,
            train.len(),
            tp as f64 / (tp + fn_).max(1) as f64,
            fp as f64 / (fp + tn).max(1) as f64,
        );
    }
    println!(
        "\nreading guide: the knee of the curve shows the label budget at which the\n\
         WCG features saturate — useful when deciding how much infection\n\
         intelligence a deployment must accumulate before going live."
    );
}
