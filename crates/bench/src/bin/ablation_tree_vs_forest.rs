//! Ablation: **single decision tree vs the ensemble** (Sec. V-A).
//!
//! The paper motivates the ERF by arguing that "a tree-based classifier
//! such as a decision tree seems a natural choice … however, decision
//! trees tend to overfit training data that exhibits internal
//! variability." This bench quantifies that: a single fully-grown CART
//! tree vs the 20-tree ERF, comparing training-set accuracy against
//! cross-validated accuracy (the gap is the overfit).

use mlearn::crossval::cross_validate;
use mlearn::forest::{ForestConfig, MaxFeatures};
use mlearn::metrics::Confusion;
use mlearn::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    bench::banner("Ablation: single decision tree vs ensemble random forest");
    let corpus = bench::ground_truth_corpus();
    let data = bench::corpus_dataset(&corpus);
    println!("{} WCGs\n", data.len());

    // --- Single tree -----------------------------------------------------
    // Train-set fit (no bootstrap, all features — the classic overfitting
    // setting) and its cross-validated counterpart via a 1-tree forest.
    let mut rng = StdRng::seed_from_u64(bench::EXPERIMENT_SEED);
    let all: Vec<usize> = (0..data.len()).collect();
    let tree = DecisionTree::fit(&data, &all, &TreeConfig::default(), &mut rng);
    let train_preds: Vec<usize> = (0..data.len()).map(|i| tree.predict(data.row(i))).collect();
    let train_conf = Confusion::from_predictions(data.labels(), &train_preds, 1);

    let single_config = ForestConfig {
        n_trees: 1,
        bootstrap: false,
        max_features: MaxFeatures::All,
        ..ForestConfig::default()
    };
    let single_cv = cross_validate(&data, 10, &single_config, 1, bench::EXPERIMENT_SEED);

    // --- Ensemble ---------------------------------------------------------
    let erf_cv = cross_validate(&data, 10, &ForestConfig::default(), 1, bench::EXPERIMENT_SEED);

    println!(
        "{:<28} {:>7} {:>7} {:>9} {:>9}",
        "Model", "TPR", "FPR", "F-score", "ROC area"
    );
    println!(
        "{:<28} {:>7.3} {:>7.3} {:>9.3} {:>9}",
        "tree, resubstitution",
        train_conf.tpr(),
        train_conf.fpr(),
        train_conf.f1(),
        "-"
    );
    println!(
        "{:<28} {:>7.3} {:>7.3} {:>9.3} {:>9.3}",
        "tree, 10-fold CV",
        single_cv.confusion.tpr(),
        single_cv.confusion.fpr(),
        single_cv.confusion.f1(),
        single_cv.roc_area,
    );
    println!(
        "{:<28} {:>7.3} {:>7.3} {:>9.3} {:>9.3}",
        "ERF (20 trees), 10-fold CV",
        erf_cv.confusion.tpr(),
        erf_cv.confusion.fpr(),
        erf_cv.confusion.f1(),
        erf_cv.roc_area,
    );
    let overfit_gap = train_conf.f1() - single_cv.confusion.f1();
    println!(
        "\nsingle-tree overfit gap (resubstitution F1 − CV F1): {overfit_gap:.3}\n\
         ensemble advantage over the tree (CV ROC area): {:+.3}\n\
         — the variance reduction the paper's probability-averaging ERF buys.",
        erf_cv.roc_area - single_cv.roc_area,
    );
}
