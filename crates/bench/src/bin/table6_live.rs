//! Regenerates **Table VI / Case Study 2** (Sec. VI-D): 48 hours of live
//! on-the-wire detection in a 3-host mini-enterprise (Windows + IE,
//! Ubuntu + Firefox, macOS + Chrome) with DynaMiner deployed as a proxy.
//!
//! The paper's outcome: 62 downloads total; 8 alerts (Windows 4 — three
//! after Flash-player executables and one after a JAR; Ubuntu 3 — JARs;
//! macOS 1 — a `.dmg`); the comparator confirmed all 8 and additionally
//! flagged 2 PDFs with embedded Flash on the Windows host that the
//! payload-agnostic DynaMiner did not alert on.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use nettrace::payload::PayloadClass;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::{BenignScenario, EkFamily};
use vtsim::{ScanRequest, VirusTotalSim, DAY_SECS};

const HOSTS: [(&str, u8); 3] = [("Windows", 11), ("Ubuntu", 12), ("MacOS", 13)];

fn rebind(txs: &mut [nettrace::HttpTransaction], addr: Ipv4Addr) {
    for tx in txs {
        tx.client = nettrace::reassembly::Endpoint::new(addr, tx.client.port);
    }
}

fn main() {
    bench::banner("Table VI: live detection in a 3-host mini-enterprise (48 h)");
    let train = bench::ground_truth_corpus();
    let classifier = bench::train_default(&train);
    let mut detector = OnTheWireDetector::new(classifier, DetectorConfig::default());

    let t0 = 1_470_000_000.0;
    let mut rng = StdRng::seed_from_u64(4849);
    let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();

    // 48 hours of routine browsing per host.
    for (i, (_, last_octet)) in HOSTS.iter().enumerate() {
        let addr = Ipv4Addr::new(10, 2, 0, *last_octet);
        for k in 0..16 {
            let scenario = BenignScenario::WEIGHTED[(i + k) % 8].0;
            let mut ep = generate_benign(&mut rng, scenario, t0 + k as f64 * 10_500.0);
            rebind(&mut ep.transactions, addr);
            stream.extend(ep.transactions);
        }
    }
    // Injected infections: Windows 4 (3 Flash-exe-ish + 1 JAR-ish kits),
    // Ubuntu 3 (JAR-heavy kits), macOS 1.
    let injections: [(usize, EkFamily, f64); 8] = [
        (0, EkFamily::Angler, 9_000.0),
        (0, EkFamily::FlashPack, 48_000.0),
        (0, EkFamily::Angler, 90_000.0),
        (0, EkFamily::Rig, 132_000.0),
        (1, EkFamily::Rig, 21_000.0),
        (1, EkFamily::Fiesta, 70_000.0),
        (1, EkFamily::Neutrino, 120_000.0),
        (2, EkFamily::SweetOrange, 60_000.0),
    ];
    let mut malicious = std::collections::BTreeSet::new();
    for (host_idx, family, offset) in injections {
        let addr = Ipv4Addr::new(10, 2, 0, HOSTS[host_idx].1);
        let mut ep = generate_infection(&mut rng, family, t0 + offset);
        rebind(&mut ep.transactions, addr);
        malicious.extend(ep.malicious_digests.iter().copied());
        stream.extend(ep.transactions);
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));

    // Live replay.
    for tx in &stream {
        detector.observe(tx);
    }

    // Per-host accounting (downloads by type, redirect chains, alerts).
    let mut rows: BTreeMap<&str, HostRow> = BTreeMap::new();
    for (name, last_octet) in HOSTS {
        let addr = Ipv4Addr::new(10, 2, 0, last_octet);
        let mut row = HostRow::default();
        for tx in stream.iter().filter(|t| t.client.addr == addr) {
            if tx.status / 100 == 2 && tx.payload_size > 0 {
                match tx.payload_class {
                    PayloadClass::Pdf => row.pdf += 1,
                    PayloadClass::Exe | PayloadClass::Crypt => row.executable += 1,
                    PayloadClass::Swf => row.flash += 1,
                    PayloadClass::Xap => row.silverlight += 1,
                    PayloadClass::Jar => row.jar += 1,
                    PayloadClass::Dmg => row.executable += 1,
                    _ => {}
                }
            }
        }
        let chains: Vec<usize> = detector
            .tracker()
            .conversations()
            .filter(|c| c.transactions.first().is_some_and(|t| t.client.addr == addr))
            .map(|c| c.redirects_seen)
            .collect();
        row.avg_chain =
            chains.iter().sum::<usize>() as f64 / chains.len().max(1) as f64;
        row.max_chain = chains.iter().copied().max().unwrap_or(0);
        row.alerts = detector.alerts().iter().filter(|a| a.client == addr).count();
        rows.insert(name, row);
    }

    println!(
        "{:<22} {:>9} {:>8} {:>7}",
        "", "Windows", "Ubuntu", "MacOS"
    );
    let get = |f: fn(&HostRow) -> String| {
        (
            f(&rows["Windows"]),
            f(&rows["Ubuntu"]),
            f(&rows["MacOS"]),
        )
    };
    for (label, f) in [
        ("PDF", (|r: &HostRow| r.pdf.to_string()) as fn(&HostRow) -> String),
        ("Executable", |r| r.executable.to_string()),
        ("Flash", |r| r.flash.to_string()),
        ("Silverlight", |r| r.silverlight.to_string()),
        ("JAR", |r| r.jar.to_string()),
        ("Avg. redirect chain", |r| format!("{:.1}", r.avg_chain)),
        ("Max. redirect chain", |r| r.max_chain.to_string()),
        ("DynaMiner alerts", |r| r.alerts.to_string()),
    ] {
        let (w, u, m) = get(f);
        println!("{label:<22} {w:>9} {u:>8} {m:>7}");
    }
    let total_alerts: usize = rows.values().map(|r| r.alerts).sum();
    println!("\ntotal alerts: {total_alerts} (paper: 8 = 4 Windows + 3 Ubuntu + 1 MacOS)");

    // Comparator cross-check at +30 days (the paper submitted all 62
    // downloads): every alerted conversation's exploit payloads should be
    // confirmed; content-embedded maliciousness (Flash inside PDFs) is
    // visible only to content engines.
    let vt = VirusTotalSim::with_default_engines(bench::EXPERIMENT_SEED);
    let mut confirmed = 0usize;
    let mut alerted_payloads = 0usize;
    for conv in detector.tracker().conversations().filter(|c| c.alerted) {
        for tx in &conv.transactions {
            if tx.status / 100 == 2 && tx.payload_class.is_exploit_type() && tx.payload_size > 0 {
                alerted_payloads += 1;
                let report = vt.scan(
                    &ScanRequest {
                        digest: tx.payload_digest,
                        truly_malicious: malicious.contains(&tx.payload_digest),
                        first_seen_ts: tx.ts,
                        unofficial_benign_source: false,
                    },
                    tx.ts + 30.0 * DAY_SECS,
                );
                confirmed += usize::from(report.is_flagged());
            }
        }
    }
    println!(
        "comparator confirmed {confirmed}/{alerted_payloads} exploit payloads in alerted \
         conversations (paper: 8/8, plus 2 Flash-embedding PDFs only content engines caught)"
    );
}

#[derive(Default)]
struct HostRow {
    pdf: usize,
    executable: usize,
    flash: usize,
    silverlight: usize,
    jar: usize,
    avg_chain: f64,
    max_chain: usize,
    alerts: usize,
}
