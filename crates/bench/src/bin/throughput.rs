//! `throughput` — the perf-trajectory benchmark suite.
//!
//! Measures the pipeline's production hot paths with the criterion shim
//! and persists the numbers to `BENCH_throughput.json` (at the current
//! working directory — run from the repo root):
//!
//! * pcap ingest (parse + transaction extraction), MB/s,
//! * WCG construction from conversations, conversations/s,
//! * 37-feature extraction, WCGs/s,
//! * end-to-end live-detector replay, incremental vs from-scratch WCGs,
//!   transactions/s,
//! * sharded replay through the `streamd` engine at 1 and 4 shards,
//!   transactions/s — with the speedups over the single-threaded replay
//!   recorded explicitly (the 1-shard ratio isolates the queue-handoff
//!   cost and must stay ≥ 0.95; the 4-shard ratio scales with cores),
//! * a scaling-curve section: one measured engine pass per shard count
//!   with wall-clock *and* per-shard CPU time (`CLOCK_THREAD_CPUTIME_ID`,
//!   surfaced by `EngineReport`), so core-starved hosts still show
//!   whether the work itself was partitioned without duplication,
//! * steady-state allocation counts for `extract_37_features` via the
//!   counting global allocator (`bench::alloc_count`) — pinned at 0,
//! * forest training, sequential and parallel, fits/s — wall-clock plus
//!   process-CPU time per fit, with `parallel_fit_speedup` derived from
//!   CPU time (projected speedup on `threads` unconstrained cores), which
//!   stays meaningful on a single-core container where the wall-clock
//!   ratio is pinned at ~1.0 by time-slicing,
//! * forest prediction, per-row and batched, rows/s — with the batched
//!   speedup recorded explicitly.
//!
//! Usage: `throughput [--baseline <report.json>]` — with a baseline, the
//! run additionally prints per-entry rate deltas against the older report
//! and writes the comparison to `BENCH_compare.json`.
//!
//! Environment:
//!
//! * `DYNAMINER_BENCH_QUICK=1` — reduced warm-up/measurement budget for
//!   CI smoke runs (numbers are noisier but the harness still proves the
//!   paths run and the artifact schema holds).
//! * `DYNAMINER_BENCH_OUT` — output path (default `BENCH_throughput.json`).
//! * `DYNAMINER_BENCH_COMPARE_OUT` — baseline-comparison output path
//!   (default `BENCH_compare.json`; only written with `--baseline`).
//! * `DYNAMINER_THREADS` — worker threads for the parallel measurements
//!   (default: available parallelism).

use std::time::{Duration, Instant};

use criterion::{Criterion, Throughput};
use dynaminer::classifier::{build_dataset, build_dataset_parallel, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use dynaminer::features;
use dynaminer::wcg::Wcg;
use mlearn::forest::{ForestConfig, RandomForest};
use nettrace::TransactionExtractor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use streamd::{StreamConfig, StreamEngine};
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::pcapgen;
use synthtraffic::wire::{drive_episodes, merged_wire_transactions, wire_episode_set, OriginServer};
use synthtraffic::{BenignScenario, EkFamily};

/// Every allocation in this binary goes through the counting wrapper, so
/// the steady-state allocation entries are measured, not asserted.
#[global_allocator]
static ALLOC: bench::alloc_count::CountingAllocator = bench::alloc_count::CountingAllocator;

/// The total measurement budget per entry is floored at this regardless
/// of the configured mode, so numbers aren't dominated by timer
/// resolution and scheduler jitter on fast entries.
const MIN_MEASUREMENT_TIME: Duration = Duration::from_millis(250);
/// Warm-up must complete at least this many iterations, so entries whose
/// single iteration exceeds the warm-up *time* budget still measure
/// against warmed caches.
const MIN_WARMUP_ITERS: usize = 2;

#[derive(Debug, Serialize, Deserialize)]
struct BenchEntry {
    /// Stable benchmark identifier.
    name: String,
    /// Median wall-clock time per iteration, nanoseconds.
    per_iter_ns: f64,
    /// Derived rate in `unit`.
    rate: f64,
    /// Unit of `rate`.
    unit: String,
}

/// One shard count of the scaling curve: a single measured engine pass
/// with wall-clock and kernel CPU-time accounting. Wall-clock speedups
/// on a core-starved or shared host say nothing; the CPU columns show
/// whether the work was actually partitioned without duplication
/// (`sum(per_shard_cpu_ns)` should track the single-threaded replay's
/// thread CPU regardless of how many cores the host grants).
#[derive(Debug, Serialize)]
struct ScalingPoint {
    shards: usize,
    /// Wall-clock for the pass, nanoseconds.
    wall_ns: u64,
    /// Transactions per wall-clock second for this pass.
    txns_per_sec: f64,
    /// CPU time each shard worker burned (`CLOCK_THREAD_CPUTIME_ID`).
    per_shard_cpu_ns: Vec<u64>,
    /// CPU time the feeder thread burned partitioning and pushing.
    feeder_cpu_ns: u64,
    /// `sum(per_shard_cpu_ns) + feeder_cpu_ns`.
    cpu_total_ns: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    quick: bool,
    threads: usize,
    entries: Vec<BenchEntry>,
    /// Batched predict throughput over per-row predict throughput —
    /// the headline win of allocation-free batched scoring.
    batched_predict_speedup: f64,
    /// Parallel-fit speedup **derived from CPU time**: the projected
    /// throughput gain on `threads` unconstrained cores,
    /// `threads × cpu_seq / cpu_par`. Unlike the wall-clock ratio (kept
    /// in `parallel_fit_wall_speedup`), this stays meaningful on a
    /// single-core container where time-slicing pins wall-clock at
    /// ~1.0×: it degrades only with genuine parallel overhead
    /// (duplicated or coordination work), not with core starvation.
    /// Falls back to the wall ratio when the CPU clock is unreadable.
    parallel_fit_speedup: f64,
    /// Raw wall-clock ratio of parallel over sequential fit. ~1.0 on a
    /// single-core host by construction.
    parallel_fit_wall_speedup: f64,
    /// Process-CPU nanoseconds for one sequential fit.
    fit_cpu_ns_1_thread: u64,
    /// Process-CPU nanoseconds for one parallel fit (all workers).
    fit_cpu_ns_parallel: u64,
    /// Fractional slowdown of lenient ingest when per-capture telemetry
    /// recording is folded in (0.01 = 1% slower; negative = noise).
    /// Target: under 0.03.
    telemetry_overhead_ingest: f64,
    /// Incremental live-replay throughput over the from-scratch rebuild
    /// path (the tentpole win of per-conversation `WcgBuilder`s plus
    /// memoized topology features).
    live_replay_speedup: f64,
    /// 4-shard `streamd` engine replay throughput over the
    /// single-threaded live replay. Scales with cores; on a single-core
    /// host the shard workers time-slice one core, so the ratio only
    /// exposes the queue-handoff overhead and sits at or below 1.0.
    sharded_replay_speedup: f64,
    /// 1-shard engine replay over the single-threaded live replay: the
    /// pure cost of the ring-buffer handoff with zero parallelism to
    /// hide it. Target: ≥ 0.95.
    sharded_replay_speedup_1shard: f64,
    /// Thread-CPU nanoseconds of one single-threaded live replay — the
    /// reference the scaling curve's per-shard CPU sums compare against.
    single_thread_replay_cpu_ns: u64,
    /// One measured engine pass per shard count (see [`ScalingPoint`]).
    scaling: Vec<ScalingPoint>,
    /// Steady-state heap acquisitions per `extract_37_features` call
    /// with a reused `FeatureExtractor`. Target: exactly 0.
    allocs_per_extraction_steady: f64,
}

/// The subset of a bench report `--baseline` comparison needs. Only
/// `entries` is extracted, so baselines written by older revisions (with
/// fewer top-level fields) still parse.
#[derive(Debug, Deserialize)]
struct BaselineReport {
    entries: Vec<BenchEntry>,
}

#[derive(Debug, Serialize)]
struct CompareEntry {
    name: String,
    baseline_rate: f64,
    current_rate: f64,
    /// Rate change in percent (+10 = 10% faster than baseline).
    rate_delta_pct: f64,
    unit: String,
}

#[derive(Debug, Serialize)]
struct CompareReport {
    schema: String,
    baseline_path: String,
    entries: Vec<CompareEntry>,
    /// Entries present only in the current run.
    new_entries: Vec<String>,
    /// Entries present only in the baseline.
    removed_entries: Vec<String>,
}

/// One pass of the span pipeline's per-packet stage (capture walk →
/// spans → TCP decode → span reassembly → stream gather) against
/// caller-owned reusable buffers. Returns the packet count. The
/// steady-state allocation entry runs this repeatedly; everything it
/// touches must reuse capacity after the first pass.
fn span_packet_stage(
    capture: &[u8],
    spans: &mut Vec<nettrace::arena::PacketSpan>,
    reassembler: &mut nettrace::reassembly::SpanReassembler,
    streams: &mut nettrace::reassembly::StreamBuf,
    gaps: &mut u64,
) -> usize {
    use nettrace::ether::{EtherFrame, ETHERTYPE_IPV4};
    use nettrace::ipv4::{Ipv4Packet, PROTO_TCP};
    use nettrace::reassembly::{Endpoint, FlowKey};
    use nettrace::tcp::TcpSegment;
    let mut report = nettrace::IngestReport::new();
    spans.clear();
    nettrace::capture::read_packet_spans_lenient(capture, &mut report, spans);
    for span in spans.iter() {
        let data = &capture[span.range.clone()];
        let Ok(eth) = EtherFrame::parse(data) else { continue };
        if eth.ethertype != ETHERTYPE_IPV4 {
            continue;
        }
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else { continue };
        if ip.protocol != PROTO_TCP {
            continue;
        }
        let Ok(tcp) = TcpSegment::parse(ip.payload) else { continue };
        let key = FlowKey::new(
            Endpoint::new(ip.src, tcp.src_port),
            Endpoint::new(ip.dst, tcp.dst_port),
        );
        reassembler.push_span(span.ts, key, &tcp, nettrace::arena::subslice_range(capture, tcp.payload));
    }
    reassembler.gather_streams(capture, gaps, streams);
    spans.len()
}

fn entry(name: &str, per_iter: Duration, work: f64, unit: &str) -> BenchEntry {
    let secs = per_iter.as_secs_f64();
    BenchEntry {
        name: name.to_string(),
        per_iter_ns: secs * 1e9,
        rate: if secs > 0.0 { work / secs } else { 0.0 },
        unit: unit.to_string(),
    }
}

fn main() {
    let quick = std::env::var("DYNAMINER_BENCH_QUICK").is_ok_and(|v| v == "1");
    let threads = std::env::var("DYNAMINER_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or_else(mlearn::parallel::default_threads, mlearn::parallel::resolve_threads);
    let out_path = std::env::var("DYNAMINER_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let baseline_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--baseline").map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--baseline requires a file path"))
                .clone()
        })
    };

    let measurement = if quick { Duration::from_millis(300) } else { Duration::from_secs(2) };
    let mut c = Criterion::default()
        .sample_size(if quick { 3 } else { 10 })
        .measurement_time(measurement.max(MIN_MEASUREMENT_TIME))
        .warm_up_time(if quick {
            Duration::from_millis(100)
        } else {
            Duration::from_millis(500)
        })
        .warm_up_iterations(MIN_WARMUP_ITERS);
    println!(
        "throughput bench: quick={quick} threads={threads} → {out_path}"
    );

    // Shared fixtures: a mixed corpus and one infection pcap.
    let mut rng = StdRng::seed_from_u64(77);
    let mut episodes = Vec::new();
    let pairs = if quick { 6 } else { 24 };
    for i in 0..pairs {
        episodes.push(generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9));
        episodes.push(generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9));
    }
    let pcap = {
        let mut prng = StdRng::seed_from_u64(3);
        let ep = generate_infection(&mut prng, EkFamily::Nuclear, 1.4e9);
        pcapgen::episode_pcap(&ep).unwrap()
    };
    let conversations: Vec<&[nettrace::HttpTransaction]> =
        episodes.iter().map(|e| e.transactions.as_slice()).collect();
    let labelled: Vec<(&[nettrace::HttpTransaction], bool)> =
        episodes.iter().map(|e| (e.transactions.as_slice(), e.is_infection())).collect();
    let wcgs: Vec<Wcg> = conversations.iter().map(|txs| Wcg::from_transactions(txs)).collect();

    let mut entries = Vec::new();

    // 1. pcap ingest: parse + transaction extraction, MB/s.
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Bytes(pcap.len() as u64));
    let t = group.bench_function("pcap_parse_and_extract", |b| {
        b.iter(|| {
            let packets = nettrace::capture::read_packets(&pcap).unwrap();
            TransactionExtractor::extract(&packets).unwrap().len()
        })
    });
    entries.push(entry("ingest/pcap_parse_and_extract", t, pcap.len() as f64 / 1e6, "MB/s"));

    // 1b. Lenient ingest with and without telemetry recording: the
    // delta bounds what per-capture metrics cost on the hot path. Runs
    // the zero-copy span pipeline (the production lenient path), with
    // the pipeline's buffers reused across iterations as a long-lived
    // service would.
    let mut pipeline = nettrace::SpanPipeline::new();
    let t_lenient = group.bench_function("pcap_lenient", |b| {
        b.iter(|| {
            let mut report = nettrace::IngestReport::new();
            pipeline.extract_lenient(&pcap, &mut report).len()
        })
    });
    entries.push(entry("ingest/pcap_lenient", t_lenient, pcap.len() as f64 / 1e6, "MB/s"));
    let registry = telemetry::Registry::new();
    let ingest_metrics = nettrace::metrics::IngestMetrics::new(&registry);
    let t_lenient_telemetry = group.bench_function("pcap_lenient_telemetry", |b| {
        b.iter(|| {
            let mut report = nettrace::IngestReport::new();
            let n = pipeline.extract_lenient(&pcap, &mut report).len();
            ingest_metrics.record(&report);
            n
        })
    });
    group.finish();
    entries.push(entry(
        "ingest/pcap_lenient_telemetry",
        t_lenient_telemetry,
        pcap.len() as f64 / 1e6,
        "MB/s",
    ));

    // 1c. Steady-state allocations per packet of the span ingest stage:
    // capture walk → packet spans → span reassembly → stream gather,
    // with every buffer reused across passes. This is the per-*packet*
    // portion of the pipeline; downstream transaction materialization
    // (header/URI strings, previews) is owned-API boundary work that
    // scales per transaction, not per packet, and is excluded. After the
    // first warm-up pass the stage must run allocation-free. Counted by
    // the registered counting allocator, so the 0 is measured.
    let packets_steady_allocs = {
        let mut spans = Vec::new();
        let mut reassembler = nettrace::reassembly::SpanReassembler::new();
        let mut streams = nettrace::reassembly::StreamBuf::new();
        let mut gaps = 0u64;
        // Two warm-up passes: the first grows buffers to the capture's
        // high-water mark, the second lets pool free-lists settle.
        let n_packets =
            span_packet_stage(&pcap, &mut spans, &mut reassembler, &mut streams, &mut gaps);
        span_packet_stage(&pcap, &mut spans, &mut reassembler, &mut streams, &mut gaps);
        const PASSES: usize = 5;
        let before = bench::alloc_count::allocations();
        for _ in 0..PASSES {
            std::hint::black_box(span_packet_stage(
                &pcap,
                &mut spans,
                &mut reassembler,
                &mut streams,
                &mut gaps,
            ));
        }
        let delta = bench::alloc_count::allocations() - before;
        delta as f64 / (PASSES * n_packets.max(1)) as f64
    };
    entries.push(BenchEntry {
        name: "ingest/packets_steady_allocs".to_string(),
        per_iter_ns: 0.0,
        rate: packets_steady_allocs,
        unit: "allocs/packet".to_string(),
    });
    println!("steady-state allocations per packet (span ingest stage): {packets_steady_allocs}");

    // 2. WCG construction.
    let mut group = c.benchmark_group("wcg");
    group.throughput(Throughput::Elements(conversations.len() as u64));
    let t = group.bench_function("construct", |b| {
        b.iter(|| {
            conversations
                .iter()
                .map(|txs| Wcg::from_transactions(txs).graph.edge_count())
                .sum::<usize>()
        })
    });
    entries.push(entry("wcg/construct", t, conversations.len() as f64, "conversations/s"));

    // 3. 37-feature extraction (graph analytics dominate).
    let t = group.bench_function("extract_37_features", |b| {
        b.iter(|| wcgs.iter().map(|w| features::extract(w).values()[0]).sum::<f64>())
    });
    group.finish();
    entries.push(entry("wcg/extract_37_features", t, wcgs.len() as f64, "WCGs/s"));

    // 3b. End-to-end live detection: replay a merged multi-episode
    // stream through the detector with alerting disabled (threshold
    // above 1), so watched conversations keep growing and every
    // transaction exercises the classify path. `replay_live` uses the
    // incremental per-conversation WCG builders with memoized topology
    // features; `replay_live_scratch` rebuilds each WCG from scratch per
    // classification (the pre-incremental behaviour). Both produce
    // bit-identical verdicts (asserted in the detector's tests).
    let live_clf = {
        let live_data = build_dataset(labelled.iter().copied());
        Classifier::fit_default(&live_data, 7)
    };
    let stream = {
        let mut stream: Vec<nettrace::HttpTransaction> =
            episodes.iter().flat_map(|e| e.transactions.iter().cloned()).collect();
        stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        stream
    };
    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Elements(stream.len() as u64));
    let replay = |incremental: bool| {
        let config = DetectorConfig {
            alert_threshold: 1.1,
            incremental,
            ..DetectorConfig::default()
        };
        let mut det = OnTheWireDetector::new(live_clf.clone(), config);
        for tx in &stream {
            det.observe(tx);
        }
        det.classification_count()
    };
    let t_live = group.bench_function("replay_live", |b| b.iter(|| replay(true)));
    entries.push(entry("detector/replay_live", t_live, stream.len() as f64, "transactions/s"));
    let t_live_scratch =
        group.bench_function("replay_live_scratch", |b| b.iter(|| replay(false)));
    entries.push(entry(
        "detector/replay_live_scratch",
        t_live_scratch,
        stream.len() as f64,
        "transactions/s",
    ));

    // 3c. Sharded replay: the same stream through a 4-shard
    // `streamd::StreamEngine` (one detector per shard, hash-partitioned
    // by client, blocking backpressure). Numbered with `assign_seq`
    // because the engine merges alerts in (ts, ingest seq) order. A
    // fresh engine per iteration, mirroring the fresh detector above.
    let shard_stream = {
        let mut s = stream.clone();
        nettrace::assign_seq(&mut s);
        s
    };
    const BENCH_SHARDS: usize = 4;
    let sharded_replay = |shards: usize| {
        let config = DetectorConfig { alert_threshold: 1.1, ..DetectorConfig::default() };
        let mut engine = StreamEngine::new(
            live_clf.clone(),
            config,
            StreamConfig { shards, ..StreamConfig::default() },
        );
        engine.process(shard_stream.iter().cloned())
    };
    let t_sharded = group.bench_function("replay_sharded", |b| {
        b.iter(|| sharded_replay(BENCH_SHARDS).processed)
    });
    entries.push(entry(
        "detector/replay_sharded",
        t_sharded,
        shard_stream.len() as f64,
        "transactions/s",
    ));
    // 1 shard: one worker, zero parallelism — the ratio against
    // `replay_live` is the pure ring-buffer handoff cost and the
    // acceptance bar for the SPSC queue (≥ 0.95).
    let t_sharded_1 = group.bench_function("replay_sharded_1", |b| {
        b.iter(|| sharded_replay(1).processed)
    });
    entries.push(entry(
        "detector/replay_sharded_1",
        t_sharded_1,
        shard_stream.len() as f64,
        "transactions/s",
    ));

    // 3d. Durable-tier snapshot round trip: serialize a loaded engine's
    // full state (DESIGN.md §13), parse it back, and restore it into a
    // fresh engine — the complete crash/restart path minus the disk.
    let loaded = {
        let config = DetectorConfig { alert_threshold: 1.1, ..DetectorConfig::default() };
        let mut engine = StreamEngine::new(
            live_clf.clone(),
            config,
            StreamConfig { shards: BENCH_SHARDS, ..StreamConfig::default() },
        );
        engine.process(shard_stream.iter().cloned());
        engine
    };
    let snapshot_bytes = loaded.snapshot().to_bytes().unwrap().len();
    let t_snapshot = group.bench_function("snapshot_roundtrip", |b| {
        b.iter(|| {
            let bytes = loaded.snapshot().to_bytes().unwrap();
            let snap = streamd::EngineSnapshot::from_bytes(&bytes).unwrap();
            let config = DetectorConfig { alert_threshold: 1.1, ..DetectorConfig::default() };
            let restored = StreamEngine::restore(
                live_clf.clone(),
                config,
                StreamConfig { shards: BENCH_SHARDS, ..StreamConfig::default() },
                &telemetry::Registry::new(),
                snap,
            );
            restored.fed()
        })
    });
    group.finish();
    entries.push(entry(
        "detector/snapshot_roundtrip",
        t_snapshot,
        snapshot_bytes as f64 / 1e6,
        "MB/s",
    ));

    // 3e. Scaling curve: one measured engine pass per shard count, with
    // per-shard CPU time from the engine's own `CLOCK_THREAD_CPUTIME_ID`
    // accounting. The single-threaded replay's thread CPU is measured
    // first as the reference: on any host, honest partitioning means
    // `sum(per_shard_cpu_ns)` stays close to that reference while
    // wall-clock shrinks with the cores actually granted.
    let single_thread_replay_cpu_ns = {
        let cpu0 = telemetry::thread_cpu_ns();
        std::hint::black_box(replay(true));
        telemetry::thread_cpu_ns().saturating_sub(cpu0)
    };
    let scaling: Vec<ScalingPoint> = [1usize, 2, 4]
        .iter()
        .map(|&shards| {
            let wall0 = Instant::now();
            let report = sharded_replay(shards);
            let wall = wall0.elapsed();
            let wall_ns = wall.as_nanos() as u64;
            let cpu_total_ns =
                report.per_shard_cpu_ns.iter().sum::<u64>() + report.feeder_cpu_ns;
            ScalingPoint {
                shards,
                wall_ns,
                txns_per_sec: if wall_ns > 0 {
                    shard_stream.len() as f64 / wall.as_secs_f64()
                } else {
                    0.0
                },
                per_shard_cpu_ns: report.per_shard_cpu_ns,
                feeder_cpu_ns: report.feeder_cpu_ns,
                cpu_total_ns,
            }
        })
        .collect();
    for p in &scaling {
        println!(
            "scaling: shards={} wall={:.1}ms cpu_total={:.1}ms (shards {:?}, feeder {:.1}ms)",
            p.shards,
            p.wall_ns as f64 / 1e6,
            p.cpu_total_ns as f64 / 1e6,
            p.per_shard_cpu_ns.iter().map(|&c| (c as f64 / 1e6 * 10.0).round() / 10.0).collect::<Vec<_>>(),
            p.feeder_cpu_ns as f64 / 1e6,
        );
    }

    // 3f. Steady-state allocations of the 37-feature extraction with a
    // reused `FeatureExtractor`: the first pass grows the CSR view and
    // traversal scratch to the largest conversation, then every further
    // pass must acquire no heap at all. Counted by the registered
    // counting allocator, so the 0 is measured, not asserted.
    let allocs_per_extraction_steady = {
        let mut extractor = features::FeatureExtractor::new();
        for w in &wcgs {
            std::hint::black_box(extractor.extract(w).values()[0]);
        }
        const PASSES: usize = 5;
        let before = bench::alloc_count::allocations();
        for _ in 0..PASSES {
            for w in &wcgs {
                std::hint::black_box(extractor.extract(w).values()[0]);
            }
        }
        let delta = bench::alloc_count::allocations() - before;
        delta as f64 / (PASSES * wcgs.len()) as f64
    };
    entries.push(BenchEntry {
        name: "wcg/extract_37_features_steady_allocs".to_string(),
        per_iter_ns: 0.0,
        rate: allocs_per_extraction_steady,
        unit: "allocs/extraction".to_string(),
    });
    println!("steady-state allocations per extraction: {allocs_per_extraction_steady}");

    // 3g. Real-wire ingress: episodes driven as real loopback client
    // connections through the inline forward proxy (PROXY protocol +
    // replay-timestamp parity config), measured socket-to-transaction.
    // Each iteration binds a fresh proxy against a persistent replay
    // origin, drives every transaction sequentially, and pumps until
    // the tap has synthesized them all.
    {
        use nettrace::source::TrafficSource;
        let wire_episodes = wire_episode_set(5, 1, 1);
        let wire_txs = merged_wire_transactions(&wire_episodes);
        let origin = OriginServer::start(&wire_txs).expect("start replay origin");
        let mut group = c.benchmark_group("wirefront");
        let t = group.bench_function("proxy_loopback", |b| {
            b.iter(|| {
                let mut config = wirefront::ProxyConfig::new(origin.addr());
                config.proxy_protocol = true;
                config.tap.honor_replay_ts = true;
                let mut source = wirefront::ProxySource::bind(
                    "127.0.0.1:0".parse().unwrap(),
                    config,
                )
                .expect("bind proxy");
                let addr = source.local_addr();
                // Pump until the driver has seen every connection
                // close AND the tap has synthesized every transaction
                // — the final close is relayed by a pump, so stopping
                // at the transaction count alone would strand the last
                // client in its read.
                let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let driver = {
                    let txs = wire_txs.clone();
                    let done = done.clone();
                    std::thread::spawn(move || {
                        let n = drive_episodes(addr, &txs, true).unwrap();
                        done.store(true, std::sync::atomic::Ordering::SeqCst);
                        n
                    })
                };
                let mut out = Vec::new();
                while !done.load(std::sync::atomic::Ordering::SeqCst)
                    || (source.stats().transactions as usize) < wire_txs.len()
                {
                    source.pump(&mut out).expect("pump");
                    source.wait(1);
                }
                driver.join().unwrap();
                source.shutdown(&mut out);
                out.len()
            })
        });
        group.finish();
        entries.push(entry("wirefront/proxy_loopback", t, wire_txs.len() as f64, "transactions/s"));
        origin.stop();
    }

    // 4. Corpus featurization, sequential vs pooled (dataset build).
    let mut group = c.benchmark_group("dataset");
    let t = group.bench_function("build_sequential", |b| {
        b.iter(|| build_dataset(labelled.iter().copied()).len())
    });
    entries.push(entry("dataset/build_sequential", t, labelled.len() as f64, "conversations/s"));
    let t = group.bench_function("build_parallel", |b| {
        b.iter(|| build_dataset_parallel(&labelled, threads).len())
    });
    group.finish();
    entries.push(entry("dataset/build_parallel", t, labelled.len() as f64, "conversations/s"));

    // 5. Forest fit, sequential vs parallel (bit-identical models).
    // Trained on a production-sized corpus — tree depth (and therefore
    // per-prediction traversal cost) scales with the training set, so a
    // toy corpus would make the predict numbers meaningless.
    let fit_pairs = if quick { 40 } else { 400 };
    let mut fit_rng = StdRng::seed_from_u64(99);
    let mut fit_episodes = Vec::new();
    for i in 0..fit_pairs {
        fit_episodes.push(generate_infection(&mut fit_rng, EkFamily::ALL[i % 10], 1.4e9));
        fit_episodes
            .push(generate_benign(&mut fit_rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9));
    }
    let fit_labelled: Vec<(&[nettrace::HttpTransaction], bool)> = fit_episodes
        .iter()
        .map(|e| (e.transactions.as_slice(), e.is_infection()))
        .collect();
    let data = build_dataset_parallel(&fit_labelled, threads);
    let config = ForestConfig::default();
    let mut group = c.benchmark_group("forest");
    let t_fit_seq = group.bench_function("fit_1_thread", |b| {
        b.iter(|| RandomForest::fit_threaded(&data, &config, 1, 1).n_trees())
    });
    entries.push(entry("forest/fit_1_thread", t_fit_seq, 1.0, "fits/s"));
    let t_fit_par = group.bench_function("fit_parallel", |b| {
        b.iter(|| RandomForest::fit_threaded(&data, &config, 1, threads).n_trees())
    });
    entries.push(entry("forest/fit_parallel", t_fit_par, 1.0, "fits/s"));
    // Process-CPU time per fit (one measured pass each): the total CPU
    // all workers burn. On a time-sliced single-core host the wall
    // ratio above is pinned at ~1.0 and says nothing; the CPU ratio
    // exposes genuine parallel overhead instead, and the projected
    // speedup `threads × cpu_seq / cpu_par` is what an unconstrained
    // `threads`-core host would see.
    let fit_cpu = |fit_threads: usize| {
        let cpu0 = telemetry::process_cpu_ns();
        std::hint::black_box(RandomForest::fit_threaded(&data, &config, 1, fit_threads).n_trees());
        telemetry::process_cpu_ns().saturating_sub(cpu0)
    };
    let fit_cpu_ns_1_thread = fit_cpu(1);
    let fit_cpu_ns_parallel = fit_cpu(threads);
    for (name, cpu_ns) in [
        ("forest/fit_1_thread_cpu", fit_cpu_ns_1_thread),
        ("forest/fit_parallel_cpu", fit_cpu_ns_parallel),
    ] {
        entries.push(BenchEntry {
            name: name.to_string(),
            per_iter_ns: cpu_ns as f64,
            rate: if cpu_ns > 0 { 1e9 / cpu_ns as f64 } else { 0.0 },
            unit: "fits/cpu-s".to_string(),
        });
    }

    // 6. Prediction: per-row vs batched (flat-accumulator) scoring. Score
    // many replicas of the corpus rows so the batch has production-like
    // depth.
    let reps = if quick { 20 } else { 12 };
    let rows: Vec<Vec<f64>> = (0..reps)
        .flat_map(|_| (0..data.len()).map(|i| data.row(i).to_vec()))
        .collect();
    let forest = RandomForest::fit(&data, &config, 1);
    group.throughput(Throughput::Elements(rows.len() as u64));
    let t_single = group.bench_function("predict_per_row", |b| {
        b.iter(|| rows.iter().map(|r| forest.score(r, 1)).sum::<f64>())
    });
    entries.push(entry("forest/predict_per_row", t_single, rows.len() as f64, "rows/s"));
    let t_batched = group.bench_function("predict_batched", |b| {
        b.iter(|| forest.score_batch(&rows, 1, 1).iter().sum::<f64>())
    });
    entries.push(entry("forest/predict_batched", t_batched, rows.len() as f64, "rows/s"));
    let t_batched_mt = group.bench_function("predict_batched_threaded", |b| {
        b.iter(|| forest.score_batch(&rows, 1, threads).iter().sum::<f64>())
    });
    group.finish();
    entries.push(entry(
        "forest/predict_batched_threaded",
        t_batched_mt,
        rows.len() as f64,
        "rows/s",
    ));

    let speedup = |fast: Duration, slow: Duration| {
        if fast > Duration::ZERO {
            slow.as_secs_f64() / fast.as_secs_f64()
        } else {
            0.0
        }
    };
    // Sharded speedups are derived from the recorded entries by name, so
    // a renamed or dropped entry degrades to an explicit 0.0 (with a
    // warning) instead of silently comparing the wrong measurements.
    let rate_of =
        |es: &[BenchEntry], name: &str| es.iter().find(|e| e.name == name).map(|e| e.rate);
    let entry_ratio = |es: &[BenchEntry], num: &str, den: &str| match (
        rate_of(es, num),
        rate_of(es, den),
    ) {
        (Some(n), Some(d)) if d > 0.0 => n / d,
        _ => {
            println!("warning: bench entry missing for {num} / {den}; recording ratio 0.0");
            0.0
        }
    };
    let sharded_replay_speedup =
        entry_ratio(&entries, "detector/replay_sharded", "detector/replay_live");
    let sharded_replay_speedup_1shard =
        entry_ratio(&entries, "detector/replay_sharded_1", "detector/replay_live");
    // With one core, the "parallel" fit resolves to the identical inline
    // code path as the sequential fit (run_indexed inlines at threads
    // <= 1), so any measured ratio is pure noise; report the identity.
    let parallel_fit_wall_speedup =
        if threads <= 1 { 1.0 } else { speedup(t_fit_par, t_fit_seq) };
    let parallel_fit_speedup = if threads <= 1 {
        1.0
    } else if fit_cpu_ns_1_thread > 0 && fit_cpu_ns_parallel > 0 {
        threads as f64 * fit_cpu_ns_1_thread as f64 / fit_cpu_ns_parallel as f64
    } else {
        // CPU clock unreadable on this platform: fall back to wall.
        parallel_fit_wall_speedup
    };
    let report = BenchReport {
        schema: "dynaminer-bench-throughput-v2".to_string(),
        quick,
        threads,
        entries,
        batched_predict_speedup: speedup(t_batched, t_single),
        parallel_fit_speedup,
        parallel_fit_wall_speedup,
        fit_cpu_ns_1_thread,
        fit_cpu_ns_parallel,
        telemetry_overhead_ingest: if t_lenient > Duration::ZERO {
            t_lenient_telemetry.as_secs_f64() / t_lenient.as_secs_f64() - 1.0
        } else {
            0.0
        },
        live_replay_speedup: speedup(t_live, t_live_scratch),
        sharded_replay_speedup,
        sharded_replay_speedup_1shard,
        single_thread_replay_cpu_ns,
        scaling,
        allocs_per_extraction_steady,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    println!(
        "\nbatched predict speedup: {:.2}x over per-row; parallel fit speedup: {:.2}x \
         (CPU-projected on {} threads; wall ratio {:.2}x)",
        report.batched_predict_speedup,
        report.parallel_fit_speedup,
        report.threads,
        report.parallel_fit_wall_speedup
    );
    if threads <= 1 {
        println!("(single core: parallel fit is the same inline code path; speedup is 1.0 by identity)");
    }
    println!(
        "telemetry overhead on lenient ingest: {:+.2}%",
        report.telemetry_overhead_ingest * 100.0
    );
    println!(
        "live replay speedup (incremental over from-scratch): {:.2}x",
        report.live_replay_speedup
    );
    println!(
        "sharded replay speedup: {:.2}x at 4 shards, {:.2}x at 1 shard (handoff cost only; \
         target ≥ 0.95) over single-threaded",
        report.sharded_replay_speedup, report.sharded_replay_speedup_1shard
    );
    if std::thread::available_parallelism().map_or(1, |n| n.get()) <= 1 {
        println!(
            "(single core: 4 shard workers time-slice one core, so the wall ratio only \
             measures queue-handoff overhead; the scaling section's CPU columns carry \
             the partitioning evidence)"
        );
    }
    println!("wrote {out_path}");

    if let Some(baseline_path) = baseline_path {
        compare_to_baseline(&report, &baseline_path);
    }
}

/// Prints per-entry rate deltas against an older report and writes the
/// comparison artifact for CI upload.
fn compare_to_baseline(report: &BenchReport, baseline_path: &str) {
    let raw = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline: BaselineReport = serde_json::from_str(&raw)
        .unwrap_or_else(|e| panic!("parse baseline {baseline_path}: {e}"));
    let compare_out = std::env::var("DYNAMINER_BENCH_COMPARE_OUT")
        .unwrap_or_else(|_| "BENCH_compare.json".to_string());

    println!("\ncomparison against {baseline_path}:");
    let mut entries = Vec::new();
    let mut new_entries = Vec::new();
    for e in &report.entries {
        match baseline.entries.iter().find(|b| b.name == e.name) {
            Some(b) => {
                // A zero baseline rate is legitimate for count-style
                // entries (e.g. steady-state allocations pinned at 0):
                // equal zeros diff to 0%, any regression from 0 shows as
                // +100%.
                let delta = if b.rate > 0.0 {
                    (e.rate / b.rate - 1.0) * 100.0
                } else if e.rate == 0.0 {
                    0.0
                } else {
                    100.0
                };
                println!(
                    "  {:<34} {:>12.0} → {:>12.0} {}  ({:+.1}%)",
                    e.name, b.rate, e.rate, e.unit, delta
                );
                entries.push(CompareEntry {
                    name: e.name.clone(),
                    baseline_rate: b.rate,
                    current_rate: e.rate,
                    rate_delta_pct: delta,
                    unit: e.unit.clone(),
                });
            }
            _ => {
                println!("  {:<34} {:>12} → {:>12.0} {}  (new)", e.name, "-", e.rate, e.unit);
                new_entries.push(e.name.clone());
            }
        }
    }
    let removed_entries: Vec<String> = baseline
        .entries
        .iter()
        .filter(|b| report.entries.iter().all(|e| e.name != b.name))
        .map(|b| b.name.clone())
        .collect();
    for name in &removed_entries {
        println!("  {name:<34} (removed)");
    }
    let comparison = CompareReport {
        schema: "dynaminer-bench-compare-v1".to_string(),
        baseline_path: baseline_path.to_string(),
        entries,
        new_entries,
        removed_entries,
    };
    let json = serde_json::to_string_pretty(&comparison).expect("comparison serializes");
    std::fs::write(&compare_out, json + "\n").expect("write comparison report");
    println!("wrote {compare_out}");
}
