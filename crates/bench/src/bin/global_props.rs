//! Regenerates the **Sec. III-D global properties** and the **Sec. II-D
//! call-back statistics** of the infection ground truth:
//!
//! * 10 nodes on average per infection WCG (min 2, max 404),
//! * 46 edges on average (range 2–1778),
//! * mean lifetime 123 s (range 0.5–4061 s),
//! * 708 of 770 traces (92 %) contain at least one post-download
//!   call-back, always to hosts never seen before the download stage,
//! * 92 % of infection WCGs contain at least one post-download edge.

use dynaminer::wcg::Wcg;

fn main() {
    bench::banner("Sec. III-D global properties / Sec. II-D call-backs");
    let corpus = bench::ground_truth_corpus();
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut lifetimes = Vec::new();
    let mut with_callback = 0usize;
    let mut infections = 0usize;
    for ep in corpus.iter().filter(|e| e.is_infection()) {
        infections += 1;
        let wcg = Wcg::from_transactions(&ep.transactions);
        nodes.push(wcg.graph.node_count());
        edges.push(wcg.graph.edge_count());
        lifetimes.push(wcg.duration());
        with_callback += usize::from(wcg.has_post_download());
    }
    let summary = |v: &[usize]| {
        (
            v.iter().copied().min().unwrap_or(0),
            v.iter().copied().max().unwrap_or(0),
            v.iter().sum::<usize>() as f64 / v.len().max(1) as f64,
        )
    };
    let (nmin, nmax, navg) = summary(&nodes);
    let (emin, emax, eavg) = summary(&edges);
    let lmin = lifetimes.iter().copied().fold(f64::INFINITY, f64::min);
    let lmax = lifetimes.iter().copied().fold(0.0f64, f64::max);
    let lavg = lifetimes.iter().sum::<f64>() / lifetimes.len().max(1) as f64;

    println!("infection WCGs analyzed: {infections}");
    println!("nodes:    avg {navg:.1} range {nmin}..{nmax}   (paper: avg 10, range 2..404)");
    println!("edges:    avg {eavg:.1} range {emin}..{emax}   (paper: avg 46, range 2..1778)");
    println!(
        "lifetime: avg {lavg:.0}s range {lmin:.1}s..{lmax:.0}s (paper: avg 123s, range 0.5..4061s)"
    );
    println!(
        "call-backs: {}/{} = {:.1}% of infection WCGs have ≥1 post-download edge \
         (paper: 708/770 = 92%)",
        with_callback,
        infections,
        100.0 * with_callback as f64 / infections.max(1) as f64
    );
}
