//! Reproduces the paper's hyper-parameter selection (Sec. VI-A): "the
//! training was ran by varying the number of trees (N_t) and number of
//! features (N_f) to get the best balance between true positive and false
//! positive rates. The best performance … is with N_t = 20 and
//! N_f = log2(NumFeatures)+1."
//!
//! Sweeps N_t ∈ {5, 10, 20, 50, 100} × N_f ∈ {log2+1, sqrt, all} with
//! 10-fold cross-validation.

use mlearn::crossval::cross_validate;
use mlearn::forest::{ForestConfig, MaxFeatures};

fn main() {
    bench::banner("Hyper-parameter sweep: N_t × N_f (Sec. VI-A)");
    let corpus = bench::ground_truth_corpus();
    let data = bench::corpus_dataset(&corpus);
    println!("{} WCGs\n", data.len());
    println!(
        "{:>5} {:>14} {:>7} {:>7} {:>9} {:>9}",
        "N_t", "N_f", "TPR", "FPR", "F-score", "ROC area"
    );
    for n_trees in [5usize, 10, 20, 50, 100] {
        for (label, max_features) in [
            ("log2(F)+1", MaxFeatures::Log2PlusOne),
            ("sqrt(F)", MaxFeatures::Sqrt),
            ("all", MaxFeatures::All),
        ] {
            let config = ForestConfig { n_trees, max_features, ..ForestConfig::default() };
            let r = cross_validate(&data, 10, &config, 1, bench::EXPERIMENT_SEED);
            let marker = if n_trees == 20 && label == "log2(F)+1" { "  ← paper's pick" } else { "" };
            println!(
                "{:>5} {:>14} {:>7.3} {:>7.3} {:>9.3} {:>9.3}{marker}",
                n_trees,
                label,
                r.confusion.tpr(),
                r.confusion.fpr(),
                r.confusion.f1(),
                r.roc_area,
            );
        }
    }
    println!(
        "\nexpected: quality saturates around N_t ≈ 20; narrow feature subsets\n\
         (log2/sqrt) match or beat 'all' thanks to tree decorrelation — the\n\
         balance the paper selected."
    );
}
