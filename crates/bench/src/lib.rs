//! Shared support for the experiment binaries.
//!
//! Every paper table and figure has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md's per-experiment index). All binaries
//! honor the `DYNAMINER_SCALE` environment variable (default `1.0` =
//! paper-sized corpora; use e.g. `0.2` for a quick pass) and print the
//! paper's reported values next to the measured ones.

use dynaminer::classifier::Classifier;
use mlearn::dataset::Dataset;
use synthtraffic::Episode;

/// Seed used by every experiment binary so tables regenerate identically.
pub const EXPERIMENT_SEED: u64 = 42;

/// Corpus scale factor from `DYNAMINER_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("DYNAMINER_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.001, 10.0)
}

/// The ground-truth corpus at the configured scale.
pub fn ground_truth_corpus() -> Vec<Episode> {
    synthtraffic::ground_truth(EXPERIMENT_SEED, scale())
}

/// The held-out validation corpus at the configured scale.
pub fn validation_corpus() -> Vec<Episode> {
    synthtraffic::validation_set(EXPERIMENT_SEED, scale())
}

/// Featurizes a corpus into a 37-column dataset (benign = 0, infection = 1),
/// extracting in parallel across available cores.
pub fn corpus_dataset(corpus: &[Episode]) -> Dataset {
    let items: Vec<(&[nettrace::HttpTransaction], bool)> =
        corpus.iter().map(|e| (e.transactions.as_slice(), e.is_infection())).collect();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    dynaminer::classifier::build_dataset_parallel(&items, threads)
}

/// Trains the paper's default classifier on a corpus.
pub fn train_default(corpus: &[Episode]) -> Classifier {
    Classifier::fit_default(&corpus_dataset(corpus), EXPERIMENT_SEED)
}

/// Prints the standard experiment banner.
pub fn banner(what: &str) {
    println!("=== {what} ===");
    println!("(corpus scale {}; set DYNAMINER_SCALE to change)\n", scale());
}

/// Formats a measured-vs-paper comparison cell.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:>7.3} (paper {paper:.3})")
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_is_positive_by_default() {
        assert!(super::scale() > 0.0);
    }

    #[test]
    fn vs_formats_both_numbers() {
        let s = super::vs(0.5, 0.973);
        assert!(s.contains("0.500") && s.contains("0.973"));
    }
}
