//! Shared support for the experiment binaries.
//!
//! Every paper table and figure has a binary under `src/bin/` that
//! regenerates it (see DESIGN.md's per-experiment index). All binaries
//! honor the `DYNAMINER_SCALE` environment variable (default `1.0` =
//! paper-sized corpora; use e.g. `0.2` for a quick pass) and print the
//! paper's reported values next to the measured ones.

use dynaminer::classifier::Classifier;
use mlearn::dataset::Dataset;
use synthtraffic::Episode;

/// Seed used by every experiment binary so tables regenerate identically.
pub const EXPERIMENT_SEED: u64 = 42;

/// Heap-allocation counting for bench builds.
///
/// Binaries and tests that want allocation counts register the wrapper as
/// their global allocator:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: bench::alloc_count::CountingAllocator = bench::alloc_count::CountingAllocator;
/// ```
///
/// and read [`alloc_count::allocations`] deltas around the region of
/// interest. Counting is a single relaxed atomic increment per
/// `alloc`/`realloc`, cheap enough to leave on for whole bench runs; it
/// exists so "allocation-free in steady state" claims are pinned by a
/// measured zero rather than prose.
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Total heap acquisitions (`alloc` + `realloc` calls, process-wide)
    /// since start. Frees are not counted: the steady-state claims are
    /// about *acquiring* memory on the hot path.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// `std::alloc::System` wrapper that counts heap acquisitions.
    pub struct CountingAllocator;

    // SAFETY: delegates every operation unchanged to `System`; the only
    // addition is a relaxed counter bump, which allocates nothing.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

/// Corpus scale factor from `DYNAMINER_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("DYNAMINER_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.001, 10.0)
}

/// The ground-truth corpus at the configured scale.
pub fn ground_truth_corpus() -> Vec<Episode> {
    synthtraffic::ground_truth(EXPERIMENT_SEED, scale())
}

/// The held-out validation corpus at the configured scale.
pub fn validation_corpus() -> Vec<Episode> {
    synthtraffic::validation_set(EXPERIMENT_SEED, scale())
}

/// Featurizes a corpus into a 37-column dataset (benign = 0, infection = 1),
/// extracting in parallel across available cores.
pub fn corpus_dataset(corpus: &[Episode]) -> Dataset {
    let items: Vec<(&[nettrace::HttpTransaction], bool)> =
        corpus.iter().map(|e| (e.transactions.as_slice(), e.is_infection())).collect();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    dynaminer::classifier::build_dataset_parallel(&items, threads)
}

/// Trains the paper's default classifier on a corpus.
pub fn train_default(corpus: &[Episode]) -> Classifier {
    Classifier::fit_default(&corpus_dataset(corpus), EXPERIMENT_SEED)
}

/// Prints the standard experiment banner.
pub fn banner(what: &str) {
    println!("=== {what} ===");
    println!("(corpus scale {}; set DYNAMINER_SCALE to change)\n", scale());
}

/// Formats a measured-vs-paper comparison cell.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:>7.3} (paper {paper:.3})")
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_is_positive_by_default() {
        assert!(super::scale() > 0.0);
    }

    #[test]
    fn vs_formats_both_numbers() {
        let s = super::vs(0.5, 0.973);
        assert!(s.contains("0.500") && s.contains("0.973"));
    }
}
