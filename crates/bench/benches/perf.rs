//! Criterion performance benches for the DynaMiner pipeline: pcap
//! parsing, WCG construction, feature extraction (incl. the expensive
//! graph analytics), forest training/prediction, and end-to-end detector
//! throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dynaminer::classifier::{build_dataset, Classifier};
use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
use dynaminer::features;
use dynaminer::wcg::Wcg;
use mlearn::forest::{ForestConfig, RandomForest};
use nettrace::TransactionExtractor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use synthtraffic::benign::generate_benign;
use synthtraffic::episode::generate_infection;
use synthtraffic::pcapgen;
use synthtraffic::{BenignScenario, EkFamily};
use wcgraph::{algo, DiGraph};

fn sample_episodes() -> Vec<synthtraffic::Episode> {
    let mut rng = StdRng::seed_from_u64(77);
    let mut eps = Vec::new();
    for i in 0..12 {
        eps.push(generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9));
        eps.push(generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9));
    }
    eps
}

fn random_graph(n: usize, e: usize) -> DiGraph<(), ()> {
    let mut rng = StdRng::seed_from_u64(5);
    let mut g = DiGraph::new();
    let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
    use rand::Rng;
    for _ in 0..e {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        g.add_edge(ids[a], ids[b], ());
    }
    g
}

fn bench_pcap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ep = generate_infection(&mut rng, EkFamily::Nuclear, 1.4e9);
    let pcap = pcapgen::episode_pcap(&ep).unwrap();
    let mut group = c.benchmark_group("pcap");
    group.throughput(Throughput::Bytes(pcap.len() as u64));
    group.bench_function("parse_and_extract_transactions", |b| {
        b.iter(|| {
            let packets = nettrace::pcap::PcapReader::new(pcap.as_slice())
                .unwrap()
                .collect_packets()
                .unwrap();
            TransactionExtractor::extract(&packets).unwrap().len()
        })
    });
    group.finish();
}

fn bench_wcg(c: &mut Criterion) {
    let episodes = sample_episodes();
    let mut group = c.benchmark_group("wcg");
    let total_txs: usize = episodes.iter().map(|e| e.transactions.len()).sum();
    group.throughput(Throughput::Elements(total_txs as u64));
    group.bench_function("construct_24_conversations", |b| {
        b.iter(|| {
            episodes
                .iter()
                .map(|e| Wcg::from_transactions(&e.transactions).graph.edge_count())
                .sum::<usize>()
        })
    });
    let wcgs: Vec<Wcg> =
        episodes.iter().map(|e| Wcg::from_transactions(&e.transactions)).collect();
    group.bench_function("extract_features_24_wcgs", |b| {
        b.iter(|| {
            wcgs.iter().map(|w| features::extract(w).values()[0]).sum::<f64>()
        })
    });
    group.finish();
}

fn bench_graph_algorithms(c: &mut Criterion) {
    let small = random_graph(10, 46); // paper's average infection WCG
    let large = random_graph(120, 600);
    let mut group = c.benchmark_group("graph_algorithms");
    group.bench_function("betweenness_avg_wcg", |b| {
        b.iter(|| algo::centrality::betweenness_centrality(&small))
    });
    group.bench_function("betweenness_120n", |b| {
        b.iter(|| algo::centrality::betweenness_centrality(&large))
    });
    group.bench_function("node_connectivity_avg_wcg", |b| {
        b.iter(|| algo::connectivity::average_node_connectivity(&small))
    });
    group.bench_function("node_connectivity_120n_sampled", |b| {
        b.iter(|| algo::connectivity::average_node_connectivity(&large))
    });
    group.bench_function("pagerank_120n", |b| {
        b.iter(|| algo::pagerank::pagerank_default(&large))
    });
    group.bench_function("diameter_120n", |b| b.iter(|| algo::paths::diameter(&large)));
    group.finish();
}

fn bench_forest(c: &mut Criterion) {
    let episodes = sample_episodes();
    let data = build_dataset(
        episodes.iter().map(|e| (e.transactions.as_slice(), e.is_infection())),
    );
    let mut group = c.benchmark_group("forest");
    group.bench_function("train_erf_20_trees", |b| {
        b.iter(|| RandomForest::fit_threaded(&data, &ForestConfig::default(), 1, 1).n_trees())
    });
    group.bench_function("train_erf_20_trees_parallel", |b| {
        b.iter(|| RandomForest::fit(&data, &ForestConfig::default(), 1).n_trees())
    });
    let forest = RandomForest::fit(&data, &ForestConfig::default(), 1);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("predict_proba", |b| {
        b.iter(|| {
            (0..data.len()).map(|i| forest.predict_proba(data.row(i))[1]).sum::<f64>()
        })
    });
    let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i).to_vec()).collect();
    group.bench_function("predict_batched", |b| {
        b.iter(|| forest.score_batch(&rows, 1, 1).iter().sum::<f64>())
    });
    group.finish();
}

fn bench_flate(c: &mut Criterion) {
    // A typical gzipped HTML landing page body.
    let mut rng = StdRng::seed_from_u64(21);
    let body: Vec<u8> = {
        use rand::Rng;
        let mut v = b"<!DOCTYPE html><html>".to_vec();
        while v.len() < 64 * 1024 {
            v.push(rng.gen_range(b' '..b'~'));
        }
        v
    };
    let gz = nettrace::flate::gzip_compress(&body);
    let mut group = c.benchmark_group("flate");
    group.throughput(Throughput::Bytes(body.len() as u64));
    group.bench_function("gzip_decompress_64k", |b| {
        b.iter(|| nettrace::flate::gzip_decompress(&gz).unwrap().len())
    });
    group.finish();
}

fn bench_detector(c: &mut Criterion) {
    let episodes = sample_episodes();
    let data = build_dataset(
        episodes.iter().map(|e| (e.transactions.as_slice(), e.is_infection())),
    );
    let classifier = Classifier::fit_default(&data, 3);
    let mut rng = StdRng::seed_from_u64(11);
    let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
    for i in 0..6 {
        stream.extend(
            generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
        );
        stream.extend(generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.43e9).transactions);
    }
    stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("on_the_wire_stream", |b| {
        b.iter_batched(
            || OnTheWireDetector::new(classifier.clone(), DetectorConfig::default()),
            |mut det| {
                for tx in &stream {
                    det.observe(tx);
                }
                det.alerts().len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Keep the full `cargo bench --workspace` run in the minutes range:
    // the heaviest case (sampled all-pairs node connectivity at 120
    // nodes) runs ~300 ms per iteration.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_pcap, bench_wcg, bench_graph_algorithms, bench_forest, bench_flate, bench_detector
}
criterion_main!(benches);
