//! A VirusTotal-style multi-engine comparator.
//!
//! The paper compares DynaMiner against VirusTotal (56 signature/content
//! engines) in Table V and both case studies. Real VirusTotal is a hosted
//! service, so this crate models the two mechanisms those experiments
//! depend on:
//!
//! 1. **Signature coverage gaps** — content-based engines miss morphed and
//!    previously unseen payloads; each engine has a per-payload detection
//!    probability derived deterministically from the payload digest,
//! 2. **Detection lag** — a signature only exists some days after a payload
//!    first appears in the wild. The paper observes an 11-day lag on a PDF
//!    payload and cites prior work measuring a 9.25-day average.
//!
//! Everything is deterministic: the same payload digest and engine set
//! always produce the same verdict at the same query time.
//!
//! # Example
//!
//! ```
//! use vtsim::{ScanRequest, VirusTotalSim, DAY_SECS};
//!
//! let vt = VirusTotalSim::with_default_engines(7);
//! let req = ScanRequest {
//!     digest: 0x1234_5678,
//!     truly_malicious: true,
//!     first_seen_ts: 0.0,
//!     unofficial_benign_source: false,
//! };
//! // Scanning long after first appearance: most engines know it.
//! let report = vt.scan(&req, 365.0 * DAY_SECS);
//! assert!(report.positives > 3);
//! ```

use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const DAY_SECS: f64 = 86_400.0;

/// Default detector count (matching the paper's "all the 56 VirusTotal
/// detectors").
pub const DEFAULT_ENGINE_COUNT: usize = 56;

/// Minimum engine positives for a payload to count as flagged — the
/// paper's "at least 3 of the detectors" convention.
pub const FLAG_THRESHOLD: usize = 3;

/// One signature engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Engine {
    /// Engine display name.
    pub name: String,
    /// Probability this engine ever obtains a signature for a given
    /// malicious payload (coverage of its signature feed).
    pub coverage: f64,
    /// Probability this engine false-positives on a benign payload from an
    /// ordinary source.
    pub fp_rate: f64,
    /// Days after a payload's first appearance before this engine's
    /// signature ships (scaled per payload; see [`VirusTotalSim::scan`]).
    pub lag_days: f64,
}

/// A payload scan request.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScanRequest {
    /// Payload identity (content digest).
    pub digest: u64,
    /// Ground truth: is this payload actually malicious?
    pub truly_malicious: bool,
    /// When the payload first appeared in the wild (epoch seconds).
    pub first_seen_ts: f64,
    /// Whether a benign payload was served from an unofficial source
    /// (raises content-engine false positives slightly).
    pub unofficial_benign_source: bool,
}

/// The outcome of scanning one payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Number of engines that flagged the payload.
    pub positives: usize,
    /// Number of engines consulted.
    pub total_engines: usize,
    /// Whether the scan timed out (no verdict; the paper saw 110 timeouts
    /// in 1179 missed infections).
    pub timed_out: bool,
}

impl ScanReport {
    /// Whether the payload counts as flagged (≥ [`FLAG_THRESHOLD`]
    /// positives and no timeout).
    pub fn is_flagged(&self) -> bool {
        !self.timed_out && self.positives >= FLAG_THRESHOLD
    }
}

/// Deterministic multi-engine scanner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirusTotalSim {
    engines: Vec<Engine>,
    seed: u64,
    /// Probability that a malicious payload is "morphed" well enough that
    /// content engines never develop a signature for this exact sample.
    morph_evasion: f64,
    /// Scan timeout probability.
    timeout_rate: f64,
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl VirusTotalSim {
    /// Builds a simulator with [`DEFAULT_ENGINE_COUNT`] engines whose
    /// coverage/lag parameters are spread deterministically from `seed`.
    pub fn with_default_engines(seed: u64) -> Self {
        let engines = (0..DEFAULT_ENGINE_COUNT)
            .map(|i| {
                let h = mix(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                Engine {
                    name: format!("engine-{i:02}"),
                    // Coverage 0.35–0.95: the big engines see most feeds,
                    // niche ones far fewer.
                    coverage: 0.35 + 0.60 * unit(h),
                    // Content engines rarely FP on mainstream payloads.
                    fp_rate: 0.006 + 0.015 * unit(mix(h ^ 1)),
                    // Signature lag 2–14 days (mean ≈ 8, near the 9.25-day
                    // average the paper cites from prior work).
                    lag_days: 2.0 + 12.0 * unit(mix(h ^ 2)),
                }
            })
            .collect();
        VirusTotalSim { engines, seed, morph_evasion: 0.145, timeout_rate: 0.012 }
    }

    /// Builds a simulator from explicit engines (for tests and ablations).
    pub fn with_engines(engines: Vec<Engine>, seed: u64) -> Self {
        VirusTotalSim { engines, seed, morph_evasion: 0.145, timeout_rate: 0.012 }
    }

    /// Overrides the morphing-evasion probability.
    pub fn set_morph_evasion(&mut self, p: f64) {
        self.morph_evasion = p.clamp(0.0, 1.0);
    }

    /// Number of engines.
    pub fn engine_count(&self) -> usize {
        self.engines.len()
    }

    /// Scans a payload at `query_ts` (epoch seconds).
    ///
    /// A malicious payload is flagged by engine `i` iff all of:
    /// * the payload is not morph-evasive for the whole ecosystem (a
    ///   per-payload coin with probability `morph_evasion`),
    /// * the engine's per-payload coverage coin lands inside
    ///   `engine.coverage`,
    /// * the signature has shipped: `query_ts ≥ first_seen_ts + lag`,
    ///   where `lag` is the engine's `lag_days` scaled by a per-payload
    ///   factor in `[0.5, 1.5]`.
    ///
    /// Benign payloads draw per-engine false-positive coins (tripled for
    /// unofficial sources).
    pub fn scan(&self, req: &ScanRequest, query_ts: f64) -> ScanReport {
        let payload_h = mix(req.digest ^ self.seed);
        if unit(mix(payload_h ^ 0xdead)) < self.timeout_rate {
            return ScanReport { positives: 0, total_engines: self.engines.len(), timed_out: true };
        }
        // Morphing is a *campaign* property: exploit kits repack every
        // payload of a campaign with the same packer, so all payloads
        // sharing a first-seen time evade (or not) together. This is what
        // produces whole-conversation misses in Table V.
        let campaign_h = mix(req.first_seen_ts.to_bits() ^ self.seed ^ 0xbeef);
        let morphed = req.truly_malicious && unit(campaign_h) < self.morph_evasion;
        let lag_factor = 0.5 + unit(mix(payload_h ^ 0xfeed));
        // Per-payload signature rarity: most samples hit the mainstream
        // feeds, but a squared-uniform tail is only ever covered by a few
        // engines — those are the payloads that take many days to reach
        // the 3-engine flag threshold (the paper's 11-day PDF).
        let rarity = 0.15 + 0.85 * unit(mix(payload_h ^ 0xcafe)).powi(2);
        let mut positives = 0usize;
        for (i, engine) in self.engines.iter().enumerate() {
            let h = mix(payload_h ^ (i as u64 + 1).wrapping_mul(0xa24b_aed4_963e_e407));
            let flagged = if req.truly_malicious {
                if morphed {
                    false
                } else {
                    let covered = unit(h) < engine.coverage * rarity;
                    let available =
                        query_ts >= req.first_seen_ts + engine.lag_days * lag_factor * DAY_SECS;
                    covered && available
                }
            } else {
                let fp = if req.unofficial_benign_source {
                    engine.fp_rate * 4.0
                } else {
                    engine.fp_rate
                };
                unit(mix(h ^ 0xfa15e)) < fp
            };
            positives += usize::from(flagged);
        }
        ScanReport { positives, total_engines: self.engines.len(), timed_out: false }
    }

    /// Days until the payload in `req` is first flagged (≥ threshold),
    /// searched in whole days up to `horizon_days`. Returns `None` when it
    /// is never flagged within the horizon — morph-evasive samples stay
    /// invisible to content engines.
    pub fn days_until_flagged(&self, req: &ScanRequest, horizon_days: usize) -> Option<usize> {
        (0..=horizon_days).find(|&d| {
            self.scan(req, req.first_seen_ts + d as f64 * DAY_SECS).is_flagged()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(digest: u64, malicious: bool) -> ScanRequest {
        ScanRequest {
            digest,
            truly_malicious: malicious,
            // Each sample is its own campaign (first-seen drives the
            // campaign-level morphing coin).
            first_seen_ts: 1_400_000_000.0 + digest as f64 * 13.7,
            unofficial_benign_source: false,
        }
    }

    #[test]
    fn deterministic_scans() {
        let vt = VirusTotalSim::with_default_engines(3);
        let req = request(42, true);
        let t = 1_400_000_000.0 + 30.0 * DAY_SECS;
        assert_eq!(vt.scan(&req, t), vt.scan(&req, t));
    }

    #[test]
    fn old_malware_is_widely_detected() {
        let vt = VirusTotalSim::with_default_engines(3);
        let mut detected = 0usize;
        let n = 500;
        for d in 0..n {
            let req = request(d as u64 * 7 + 1, true);
            let report = vt.scan(&req, req.first_seen_ts + 400.0 * DAY_SECS);
            detected += usize::from(report.is_flagged());
        }
        let rate = detected as f64 / n as f64;
        // Bounded by campaign morph evasion (14.5 %) plus timeouts (~1 %).
        assert!(rate > 0.78 && rate < 0.92, "rate {rate}");
    }

    #[test]
    fn fresh_malware_is_mostly_missed() {
        let vt = VirusTotalSim::with_default_engines(3);
        let mut detected = 0usize;
        let n = 500;
        for d in 0..n {
            let req = request(d as u64 * 13 + 5, true);
            let report = vt.scan(&req, req.first_seen_ts + 0.5 * DAY_SECS);
            detected += usize::from(report.is_flagged());
        }
        let rate = detected as f64 / n as f64;
        assert!(rate < 0.10, "rate {rate}"); // min lag is ~1 day
    }

    #[test]
    fn benign_payloads_rarely_flagged() {
        let vt = VirusTotalSim::with_default_engines(3);
        let n = 2000;
        let flagged = (0..n)
            .filter(|&d| {
                vt.scan(&request(d as u64 * 3 + 2, false), 1_500_000_000.0).is_flagged()
            })
            .count();
        let rate = flagged as f64 / n as f64;
        assert!(rate < 0.05, "benign flag rate {rate}");
    }

    #[test]
    fn unofficial_sources_raise_benign_positives() {
        let vt = VirusTotalSim::with_default_engines(3);
        let n = 4000;
        let count = |unofficial: bool| {
            (0..n)
                .map(|d| {
                    let mut req = request(d as u64 * 11 + 3, false);
                    req.unofficial_benign_source = unofficial;
                    vt.scan(&req, 1_500_000_000.0).positives
                })
                .sum::<usize>()
        };
        assert!(count(true) > count(false) * 2);
    }

    #[test]
    fn detection_lag_exists_and_spreads() {
        let vt = VirusTotalSim::with_default_engines(3);
        let mut lags = Vec::new();
        for d in 0..300u64 {
            if let Some(days) = vt.days_until_flagged(&request(d * 31 + 7, true), 60) {
                lags.push(days);
            }
        }
        assert!(!lags.is_empty());
        let mean = lags.iter().sum::<usize>() as f64 / lags.len() as f64;
        // Mean lag should be in the single-digit-days region the paper and
        // prior work report (9.25 days average, 11-day case study).
        assert!(mean > 2.0 && mean < 15.0, "mean lag {mean}");
        assert!(lags.iter().any(|&l| l >= 11), "some payloads take ≥11 days");
    }

    #[test]
    fn morph_evasive_samples_never_flagged() {
        let vt = VirusTotalSim::with_default_engines(3);
        let evasive: Vec<u64> = (0..5000u64)
            .filter(|&d| {
                vt.days_until_flagged(&request(d * 17 + 9, true), 120).is_none()
            })
            .collect();
        let rate = evasive.len() as f64 / 5000.0;
        // ≈ morph_evasion (0.145) plus the small timeout slice.
        assert!(rate > 0.10 && rate < 0.21, "evasive rate {rate}");
    }

    #[test]
    fn timeouts_occur_at_configured_rate() {
        let vt = VirusTotalSim::with_default_engines(3);
        let n = 20_000;
        let timeouts = (0..n)
            .filter(|&d| vt.scan(&request(d as u64 + 1, true), 2_000_000_000.0).timed_out)
            .count();
        let rate = timeouts as f64 / n as f64;
        assert!((rate - 0.012).abs() < 0.005, "timeout rate {rate}");
    }

    #[test]
    fn flag_threshold_respected() {
        let report = ScanReport { positives: 2, total_engines: 56, timed_out: false };
        assert!(!report.is_flagged());
        let report = ScanReport { positives: 3, total_engines: 56, timed_out: false };
        assert!(report.is_flagged());
        let report = ScanReport { positives: 30, total_engines: 56, timed_out: true };
        assert!(!report.is_flagged());
    }
}
