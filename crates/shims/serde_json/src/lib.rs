//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the serde shim's [`serde::Value`]
//! data model: [`to_string`], [`to_string_pretty`], and [`from_str`].
//! Signed/unsigned 64-bit integers are preserved exactly; floats use
//! Rust's shortest round-trip `Display` form.

use std::fmt;

use serde::{de::DeserializeOwned, Serialize, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Returns [`Error`] when the value refuses serialization or contains a
/// non-finite float (JSON cannot represent NaN/infinity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let value = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &value, None, 0)?;
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON text.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let value = serde::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &value, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any owned-deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse(text)?;
    serde::from_value(value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {v}")));
            }
            // Shortest round-trip form; force a decimal point so the value
            // re-parses as a float rather than an integer when exact.
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (name, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, name);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let name = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                other => {
                    return Err(Error(format!(
                        "unterminated or invalid string near offset {} ({other:?})",
                        self.pos
                    )));
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrips_exactly() {
        let v = u64::MAX;
        let json = to_string(&v).unwrap();
        assert_eq!(json, "18446744073709551615");
        assert_eq!(from_str::<u64>(&json).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip() {
        for v in [0.1f64, -2.5, 1e300, 3.0, f64::MIN_POSITIVE] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "{json}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\te\u{1}f unicode: Ω 💡";
        let json = to_string(s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<(String, Vec<u32>)> =
            vec![("a".into(), vec![1, 2]), ("b".into(), vec![])];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, Vec<u32>)>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, Vec<u32>)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }
}
