//! Offline stand-in for the `criterion` crate.
//!
//! Provides the types and macros this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter`/`iter_batched`,
//! [`Throughput`], [`BatchSize`], `criterion_group!`, `criterion_main!` —
//! backed by a simple wall-clock timer: warm-up, then `sample_size` timed
//! samples, reporting median per-iteration time (and derived throughput)
//! to stdout. No statistics engine, plotting, or result persistence.

use std::time::{Duration, Instant};

/// Declared work-per-iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many logical elements.
    Elements(u64),
}

/// How batched setup output is sized (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input: one setup per measured call.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    warm_up_iterations: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            warm_up_iterations: 1,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the minimum number of warm-up iterations per benchmark
    /// (workspace extension, not in real criterion). Warm-up runs until
    /// *both* the warm-up time has elapsed and this many iterations have
    /// completed, so long-iteration benches are measured against warmed
    /// caches and lazily-initialized state even when one iteration
    /// exceeds the warm-up budget.
    #[must_use]
    pub fn warm_up_iterations(mut self, n: usize) -> Self {
        self.warm_up_iterations = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput context.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of following benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark, prints its timing line, and returns the
    /// measured median per-iteration time so harnesses (the `bench`
    /// crate's throughput bin) can persist results programmatically.
    /// (Real criterion returns `&mut Self`; no bench in this workspace
    /// chains calls, and the measured value is strictly more useful.)
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> Duration {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up_time,
            warm_up_iters: self.criterion.warm_up_iterations,
            measurement: self.criterion.measurement_time,
            samples: self.criterion.sample_size,
            per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        report(&self.name, id, bencher.per_iter, self.throughput);
        bencher.per_iter
    }

    /// Ends the group (purely cosmetic here).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    warm_up_iters: usize,
    measurement: Duration,
    samples: usize,
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly, recording the median sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Times `routine` over fresh `setup` output each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run until the warm-up budget elapses AND the minimum
        // iteration count is met (at least once either way).
        let warm_start = Instant::now();
        let mut warm_iters = 0usize;
        loop {
            let input = setup();
            let _ = std::hint::black_box(routine(std::hint::black_box(input)));
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up && warm_iters >= self.warm_up_iters {
                break;
            }
        }

        let budget_per_sample = self.measurement / self.samples as u32;
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            // Run as many iterations as fit the per-sample budget.
            let sample_start = Instant::now();
            let mut iters = 0u32;
            let mut busy = Duration::ZERO;
            loop {
                let input = setup();
                let t = Instant::now();
                let _ = std::hint::black_box(routine(std::hint::black_box(input)));
                busy += t.elapsed();
                iters += 1;
                if sample_start.elapsed() >= budget_per_sample {
                    break;
                }
            }
            durations.push(busy / iters);
        }
        durations.sort_unstable();
        self.per_iter = durations[durations.len() / 2];
    }
}

fn report(group: &str, id: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let mbps = n as f64 / per_iter.as_secs_f64() / 1e6;
            format!("  {mbps:.1} MB/s")
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let eps = n as f64 / per_iter.as_secs_f64();
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{group}/{id}: {per_iter:?}/iter{rate}");
}

/// Declares a benchmark harness entry: a `Criterion` config plus targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        let mut ran = 0u64;
        let per_iter = group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
        assert!(per_iter > Duration::ZERO, "measured time is returned");
    }

    #[test]
    fn warm_up_iteration_floor_is_respected() {
        // Zero warm-up time but a 5-iteration floor: the routine must run
        // at least 5 warm-up iterations plus one measured iteration.
        let mut c = Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_nanos(1))
            .warm_up_time(Duration::ZERO)
            .warm_up_iterations(5);
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function("floor", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 6, "ran {ran} iterations");
    }
}
