//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the input `TokenStream` is hand-parsed just far enough to
//! recover the type's name, generic parameters, and field/variant layout,
//! and the impls are emitted as source strings targeting the serde shim's
//! `Value` data model. Supported shapes — everything this workspace
//! derives on: named/tuple/unit structs (including generics) and enums
//! with unit, tuple, and named-field variants, encoded externally tagged
//! like real serde (`"Variant"`, `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed layout of the deriving type.
struct Input {
    name: String,
    /// Type-parameter names, in declaration order (lifetimes and const
    /// generics are not used by any derived type in this workspace).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` by rendering into the shim's `Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive shim emitted invalid Serialize impl")
}

/// Derives `serde::Deserialize` by destructuring the shim's `Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive shim emitted invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };

    let generics = parse_generics(&mut iter);

    // Scan past an optional `where` clause to the body. The body is either
    // a brace group (named struct / enum), a paren group immediately
    // followed (possibly after a where clause) by `;` (tuple struct), or a
    // bare `;` (unit struct).
    let mut tuple_group: Option<TokenStream> = None;
    let mut body: Option<TokenStream> = None;
    let mut is_unit = false;
    for tok in iter.by_ref() {
        match tok {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis && tuple_group.is_none() =>
            {
                tuple_group = Some(g.stream());
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                if tuple_group.is_none() {
                    is_unit = true;
                }
                break;
            }
            _ => {}
        }
    }

    let kind = match keyword.as_str() {
        "struct" => {
            if is_unit {
                Kind::UnitStruct
            } else if let Some(fields) = tuple_group {
                Kind::TupleStruct(count_tuple_fields(fields))
            } else {
                Kind::NamedStruct(parse_named_fields(
                    body.expect("serde_derive shim: struct body not found"),
                ))
            }
        }
        "enum" => Kind::Enum(parse_variants(
            body.expect("serde_derive shim: enum body not found"),
        )),
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };

    Input { name, generics, kind }
}

fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // `(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn parse_generics(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Vec<String> {
    let mut params = Vec::new();
    match iter.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            iter.next();
        }
        _ => return params,
    }
    let mut depth = 1u32;
    let mut expect_param = true;
    let mut skip_next_ident = false;
    while depth > 0 {
        match iter
            .next()
            .expect("serde_derive shim: unbalanced generics angle brackets")
        {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expect_param = true,
                ':' | '=' if depth == 1 => expect_param = false,
                '\'' if depth == 1 => skip_next_ident = true,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                if skip_next_ident {
                    skip_next_ident = false; // lifetime name
                } else if id.to_string() != "const" {
                    params.push(id.to_string());
                    expect_param = false;
                }
            }
            _ => {}
        }
    }
    params
}

/// Splits a brace-group field list on top-level commas (tracking `<...>`
/// depth, since generic argument commas appear at the same token level)
/// and records each field's name.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => strip_raw(&id.to_string()),
            Some(other) => panic!("serde_derive shim: expected field name, found {other:?}"),
            None => break,
        };
        fields.push(name);
        // Skip the `: Type` tail up to the next top-level comma.
        let mut angle = 0u32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts the comma-separated fields of a paren group (tuple struct or
/// tuple variant), again tracking angle depth.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle = 0u32;
    let mut in_field = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    in_field = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_field {
            in_field = true;
            count += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => strip_raw(&id.to_string()),
            Some(other) => panic!("serde_derive shim: expected variant name, found {other:?}"),
            None => break,
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` tail and the separating comma.
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

fn strip_raw(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_string()
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// `Foo` or `Foo<N, E>`.
fn self_ty(input: &Input) -> String {
    if input.generics.is_empty() {
        input.name.clone()
    } else {
        format!("{}<{}>", input.name, input.generics.join(", "))
    }
}

fn impl_generics(input: &Input, bound: &str, extra_lifetime: Option<&str>) -> String {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        params.push(lt.to_string());
    }
    for p in &input.generics {
        params.push(format!("{p}: {bound}"));
    }
    if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let self_ty = self_ty(input);
    let generics = impl_generics(input, "serde::Serialize", None);
    let to_val = "serde::to_value";
    let map_err = "map_err(<__S::Error as serde::ser::Error>::custom)?";

    let body = match &input.kind {
        Kind::UnitStruct => "__serializer.serialize_value(serde::Value::Null)".to_string(),
        Kind::TupleStruct(1) => format!(
            "__serializer.serialize_value({to_val}(&self.0).{map_err})"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("{to_val}(&self.{i}).{map_err}"))
                .collect();
            format!(
                "__serializer.serialize_value(serde::Value::Array(vec![{}]))",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), {to_val}(&self.{f}).{map_err}));\n"
                ));
            }
            s.push_str("__serializer.serialize_value(serde::Value::Object(__fields))");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_value(\
                         serde::Value::String(\"{vname}\".to_string())),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => __serializer.serialize_value(\
                         serde::Value::Object(vec![(\"{vname}\".to_string(), \
                         {to_val}(__f0).{map_err})])),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("{to_val}({b}).{map_err}"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => __serializer.serialize_value(\
                             serde::Value::Object(vec![(\"{vname}\".to_string(), \
                             serde::Value::Array(vec![{}]))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __b_{f}")).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), {to_val}(__b_{f}).{map_err})"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => __serializer.serialize_value(\
                             serde::Value::Object(vec![(\"{vname}\".to_string(), \
                             serde::Value::Object(vec![{}]))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{generics} serde::Serialize for {self_ty} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
             -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let self_ty = self_ty(input);
    let generics = impl_generics(input, "serde::de::DeserializeOwned", Some("'de"));
    let from_val = "serde::from_value";
    let map_err = "map_err(<__D::Error as serde::de::Error>::custom)?";
    let err = "<__D::Error as serde::de::Error>";

    let body = match &input.kind {
        Kind::UnitStruct => format!("let _ = __value; Ok({name})"),
        Kind::TupleStruct(1) => format!("Ok({name}({from_val}(__value).{map_err}))"),
        Kind::TupleStruct(n) => format!(
            "match __value {{\n\
                 serde::Value::Array(__items) => {{\n\
                     if __items.len() != {n} {{\n\
                         return Err({err}::invalid_length(__items.len(), &{n}usize));\n\
                     }}\n\
                     let mut __iter = __items.into_iter();\n\
                     Ok({name}({fields}))\n\
                 }}\n\
                 __other => Err({err}::custom(format_args!(\n\
                     \"expected array for tuple struct {name}, found {{__other:?}}\"))),\n\
             }}",
            fields = (0..*n)
                .map(|_| format!(
                    "{from_val}(__iter.next().expect(\"length checked\")).{map_err}"
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Kind::NamedStruct(fields) => {
            let mut s = String::from("match __value {\nserde::Value::Object(mut __fields) => {\n");
            for f in fields {
                s.push_str(&format!(
                    "let __v_{f} = match serde::__private::take_field(&mut __fields, \"{f}\") {{\n\
                         Some(__v) => {from_val}(__v).{map_err},\n\
                         None => return Err({err}::missing_field(\"{f}\")),\n\
                     }};\n"
                ));
            }
            let inits: Vec<String> = fields.iter().map(|f| format!("{f}: __v_{f}")).collect();
            s.push_str(&format!("Ok({name} {{ {} }})\n}}\n", inits.join(", ")));
            s.push_str(&format!(
                "__other => Err({err}::custom(format_args!(\n\
                     \"expected object for struct {name}, found {{__other:?}}\"))),\n}}"
            ));
            s
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}({from_val}(__inner).{map_err})),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let fields: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "{from_val}(__iter.next().expect(\"length checked\")).{map_err}"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 serde::Value::Array(__items) => {{\n\
                                     if __items.len() != {n} {{\n\
                                         return Err({err}::invalid_length(\
                                             __items.len(), &{n}usize));\n\
                                     }}\n\
                                     let mut __iter = __items.into_iter();\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}\n\
                                 __other => Err({err}::custom(format_args!(\n\
                                     \"expected array for variant {name}::{vname}, \
                                      found {{__other:?}}\"))),\n\
                             }},\n",
                            fields.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut takes = String::new();
                        for f in fields {
                            takes.push_str(&format!(
                                "let __v_{f} = match serde::__private::take_field(\
                                     &mut __vfields, \"{f}\") {{\n\
                                     Some(__v) => {from_val}(__v).{map_err},\n\
                                     None => return Err({err}::missing_field(\"{f}\")),\n\
                                 }};\n"
                            ));
                        }
                        let inits: Vec<String> =
                            fields.iter().map(|f| format!("{f}: __v_{f}")).collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                                 serde::Value::Object(mut __vfields) => {{\n\
                                     {takes}\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}\n\
                                 __other => Err({err}::custom(format_args!(\n\
                                     \"expected object for variant {name}::{vname}, \
                                      found {{__other:?}}\"))),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => Err({err}::custom(format_args!(\n\
                             \"unknown unit variant {{__other}} for enum {name}\"))),\n\
                     }},\n\
                     serde::Value::Object(mut __tag_fields) if __tag_fields.len() == 1 => {{\n\
                         let (__tag, __inner) = __tag_fields.remove(0);\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => Err({err}::custom(format_args!(\n\
                                 \"unknown variant {{__other}} for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err({err}::custom(format_args!(\n\
                         \"expected enum {name}, found {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl{generics} serde::Deserialize<'de> for {self_ty} {{\n\
             #[allow(unused_variables, unused_mut)]\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
             -> ::core::result::Result<Self, __D::Error> {{\n\
                 let __value = serde::Deserializer::deserialize_value(__deserializer)?;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
