//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the strategy combinators and macros this workspace's property tests use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, [`Just`], ranges, tuples,
//! [`collection::vec`], [`any`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each test runs [`NUM_CASES`] deterministic cases seeded from the
//! test's module path and name, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Number of deterministic cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 32;

pub mod test_runner {
    //! Deterministic random source for strategy sampling.

    /// SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary label (FNV-1a hash).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A recipe for producing values of one type from a random source.
///
/// Object-safe: `Box<dyn Strategy<Value = V>>` works (used by `prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produces a dependent strategy from each value and samples it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Starts a union from one option (pins the value type for inference).
    pub fn of<S: Strategy<Value = V> + 'static>(option: S) -> Self {
        Union { options: vec![Box::new(option)] }
    }

    /// Adds another equally weighted option.
    #[must_use]
    pub fn or<S: Strategy<Value = V> + 'static>(mut self, option: S) -> Self {
        self.options.push(Box::new(option));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Uniform sampling of a whole type (the `Standard` analogue).
pub trait Arbitrary: Sized {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy producing uniform values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec()`] (`min..max` exclusive above).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy yielding vectors of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Any, Arbitrary, Just, Strategy, Union};
}

/// Runs each contained `#[test] fn name(pat in strategy, ...) { body }`
/// over [`NUM_CASES`] deterministically seeded cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..$crate::NUM_CASES {
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
}

/// Uniformly picks one of the given strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::Union::of($first)$(.or($rest))*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`: {:?} vs {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "{}: {:?} vs {:?}", format!($($fmt)+), __l, __r,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sizes_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        let strat = vec(3usize..9, 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..9).contains(x)));
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = crate::test_runner::TestRng::deterministic("union");
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #[test]
        fn flat_map_dependent_sampling(pair in (1usize..5).prop_flat_map(|n| {
            vec(0..n, 1..4).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|x| *x < n), "value out of range of {n}");
            prop_assert_eq!(v.is_empty(), false);
        }
    }
}
