//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! compatible-enough subset of serde's API for this workspace: the
//! [`Serialize`]/[`Deserialize`] traits, [`Serializer`]/[`Deserializer`]
//! with associated `Ok`/`Error` types, `de::Error`/`ser::Error`, and the
//! derive macros (re-exported from the sibling `serde_derive` shim).
//!
//! Unlike real serde's visitor-based zero-copy data model, everything here
//! funnels through an owned [`Value`] tree (the JSON data model plus exact
//! 64-bit integers). That is sufficient — and exact — for the workspace's
//! use: JSON round-trips of models, graphs, and reports via the
//! `serde_json` shim.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model every serialization funnels through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also unit and `None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (exact).
    Int(i64),
    /// Unsigned integer (exact; used when the value exceeds `i64::MAX`
    /// or originated from an unsigned type).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map with string keys (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Error type used by the built-in [`Value`] serializer and deserializer.
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

pub mod ser {
    //! Serialization half of the data model.

    use std::fmt;

    use super::Value;

    /// A sink that consumes one [`Value`] tree.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Consumes the fully built value.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
    }

    /// Error construction interface for serializers.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization half of the data model.

    use std::fmt;

    use super::Value;

    /// A source that yields one [`Value`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Produces the self-describing value to destructure.
        fn deserialize_value(self) -> Result<Value, Self::Error>;
    }

    /// Error construction interface for deserializers.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: fmt::Display>(msg: T) -> Self;

        /// A sequence had the wrong number of elements.
        fn invalid_length(len: usize, expected: &dyn fmt::Display) -> Self {
            Self::custom(format_args!("invalid length {len}, expected {expected}"))
        }

        /// A required field was absent.
        fn missing_field(field: &'static str) -> Self {
            Self::custom(format_args!("missing field `{field}`"))
        }
    }

    /// Owned deserialization (every lifetime), mirroring serde's
    /// `DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::Deserializer;
pub use ser::Serializer;

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    ///
    /// # Errors
    ///
    /// Returns the serializer's error when the value cannot be represented.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given deserializer.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error on shape or type mismatches.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------
// Value-backed serializer/deserializer and entry points.
// ---------------------------------------------------------------------

/// Serializer producing an owned [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer reading from an owned [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Renders any serializable type to a [`Value`] tree.
///
/// # Errors
///
/// Returns [`ValueError`] when a component refuses serialization.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Rebuilds any owned-deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`ValueError`] on shape or type mismatches.
pub fn from_value<T: de::DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------
// Serialize implementations for primitives and std containers.
// ---------------------------------------------------------------------

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Int(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.deserialize_value()? {
                    Value::Int(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format_args!("integer {v} out of range"))),
                    Value::UInt(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format_args!("integer {v} out of range"))),
                    other => Err(D::Error::custom(format_args!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::UInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.deserialize_value()? {
                    Value::UInt(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format_args!("integer {v} out of range"))),
                    Value::Int(v) => u64::try_from(v)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| D::Error::custom(format_args!("integer {v} out of range"))),
                    other => Err(D::Error::custom(format_args!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Float(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.deserialize_value()? {
                    Value::Float(v) => Ok(v as $t),
                    Value::Int(v) => Ok(v as $t),
                    Value::UInt(v) => Ok(v as $t),
                    other => Err(D::Error::custom(format_args!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format_args!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Null)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value().map(|_| ())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(S::Error::custom)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format_args!("expected array, found {other:?}"))),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                use ser::Error;
                let items = vec![$(to_value(&self.$idx).map_err(S::Error::custom)?),+];
                s.serialize_value(Value::Array(items))
            }
        }
        impl<'de, $($name: de::DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                use de::Error as _;
                match d.deserialize_value()? {
                    Value::Array(items) => {
                        const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                        if items.len() != LEN {
                            return Err(__D::Error::invalid_length(items.len(), &LEN));
                        }
                        let mut iter = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            from_value::<$name>(iter.next().expect("length checked"))
                                .map_err(|e| __D::Error::custom(e))?
                        },)+))
                    }
                    other => Err(__D::Error::custom(format_args!(
                        "expected array, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Renders a map key as a JSON object-member name. Strings pass through;
/// unit-enum keys use their variant name; integer keys are stringified
/// (matching real serde_json's behaviour).
fn key_to_string<K: Serialize>(key: &K) -> Result<String, ValueError> {
    match to_value(key)? {
        Value::String(s) => Ok(s),
        Value::Int(v) => Ok(v.to_string()),
        Value::UInt(v) => Ok(v.to_string()),
        other => Err(ValueError(format!("map key must be string-like, got {other:?}"))),
    }
}

/// Rebuilds a map key from an object-member name: first as a string-shaped
/// value (strings, unit enums), then as an integer.
fn key_from_string<K: de::DeserializeOwned>(name: String) -> Result<K, ValueError> {
    let as_int = name.parse::<i64>().map(Value::Int).ok();
    let as_uint = name.parse::<u64>().map(Value::UInt).ok();
    match from_value(Value::String(name)) {
        Ok(k) => Ok(k),
        Err(e) => as_int
            .and_then(|v| from_value(v).ok())
            .or_else(|| as_uint.and_then(|v| from_value(v).ok()))
            .ok_or(e),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        let mut fields = Vec::with_capacity(self.len());
        for (k, v) in self {
            fields.push((
                key_to_string(k).map_err(S::Error::custom)?,
                to_value(v).map_err(S::Error::custom)?,
            ));
        }
        s.serialize_value(Value::Object(fields))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: de::DeserializeOwned + Ord,
    V: de::DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(k, v)| {
                    let key = key_from_string(k).map_err(D::Error::custom)?;
                    let value = from_value(v).map_err(D::Error::custom)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!("expected object, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(S::Error::custom)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<'de, T: de::DeserializeOwned + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format_args!("expected array, found {other:?}"))),
        }
    }
}

impl<'de, T: de::DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        let items: Vec<T> = Vec::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::invalid_length(len, &N))
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        // The Value model is owned, so borrowed strings are materialized by
        // leaking. Only calibration tables (&'static str display names)
        // round-trip through this; the leak is tiny and bounded.
        String::deserialize(d).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.deserialize_value()? {
            Value::String(s) => s
                .parse()
                .map_err(|e| D::Error::custom(format_args!("bad ipv4 address {s:?}: {e}"))),
            other => Err(D::Error::custom(format_args!(
                "expected ipv4 string, found {other:?}"
            ))),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}

pub mod __private {
    //! Support helpers for the code emitted by the derive macros.

    use super::Value;

    /// Removes and returns the named field of an object's field list.
    pub fn take_field(fields: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
        let idx = fields.iter().position(|(n, _)| n == name)?;
        Some(fields.remove(idx).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(from_value::<u64>(to_value(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_value::<i32>(to_value(&-5i32).unwrap()).unwrap(), -5);
        assert_eq!(from_value::<String>(to_value("hi").unwrap()).unwrap(), "hi");
        assert_eq!(
            from_value::<Vec<f64>>(to_value(&vec![1.5f64, -2.0]).unwrap()).unwrap(),
            vec![1.5, -2.0]
        );
        assert_eq!(from_value::<Option<u8>>(Value::Null).unwrap(), None);
        assert_eq!(from_value::<Option<u8>>(Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn ipv4_roundtrips() {
        let addr: std::net::Ipv4Addr = "203.0.113.9".parse().unwrap();
        assert_eq!(from_value::<std::net::Ipv4Addr>(to_value(&addr).unwrap()).unwrap(), addr);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(from_value::<u8>(Value::UInt(300)).is_err());
        assert!(from_value::<u32>(Value::Int(-1)).is_err());
    }
}
