//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate re-implements the (small) slice of the `rand` 0.8 API the
//! workspace actually uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! and [`seq::SliceRandom`]. The generator is SplitMix64 — statistically
//! solid for simulation/test workloads and fully deterministic per seed,
//! which is all the synthetic-traffic calibration needs. It is **not** the
//! upstream ChaCha12 `StdRng`, so seeded streams differ from real `rand`.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution in upstream `rand`).
pub trait RandomValue {
    /// Draws one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled to produce a `T` (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as RandomValue>::random_from(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed ^ 0x5555_5555_5555_5555 };
            // Warm up so near-identical seeds decorrelate.
            let _ = rng.next_u64();
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{RngCore, SampleRange};

    /// Slice shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_from(rng);
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
            let inc: i64 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
