//! Bounded per-shard handoff queue.
//!
//! Transactions travel in batches (`Vec<HttpTransaction>`) so one
//! handoff moves up to `batch_size` transactions. The bound is
//! expressed in *transactions*, not batches, so backpressure reacts to
//! actual buffered work.
//!
//! The queue is a lock-free SPSC ring buffer of batch slots: the feeder
//! is the only producer (owns `tail`), the shard worker the only
//! consumer (owns `head`), so a push and a pop never contend on a lock.
//! The uncontended path is a couple of atomic operations; only a
//! genuinely full (producer) or empty (consumer) queue parks the
//! thread, and the other side unparks it directly — no condvar, no
//! broadcast wakeups. The ring holds `capacity` slots: while the
//! transaction bound admits more work there is always a free slot
//! (every buffered batch holds at least one transaction), so the slot
//! count never rejects a push the transaction bound would admit.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;

use nettrace::HttpTransaction;

/// One side's park/unpark slot: the waiting thread registers its handle
/// and raises `waiting` before re-checking the queue and parking; the
/// other side only pays the handle lock + unpark syscall when the flag
/// is up. A stale unpark token at worst costs one extra loop iteration.
#[derive(Default)]
struct Waiter {
    waiting: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    /// Registers the current thread and raises the waiting flag. The
    /// caller MUST re-check its wake condition after this and before
    /// parking — that ordering (flag up, then re-check) is what closes
    /// the lost-wakeup race against [`Waiter::notify`].
    fn prepare(&self) {
        {
            let mut slot = self.thread.lock().expect("waiter poisoned");
            if slot.as_ref().is_none_or(|t| t.id() != std::thread::current().id()) {
                *slot = Some(std::thread::current());
            }
        }
        self.waiting.store(true, Ordering::SeqCst);
    }

    fn park(&self) {
        std::thread::park();
        self.waiting.store(false, Ordering::SeqCst);
    }

    fn cancel(&self) {
        self.waiting.store(false, Ordering::SeqCst);
    }

    /// Unparks the registered thread if it announced it may be parked.
    fn notify(&self) {
        if self.waiting.load(Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().expect("waiter poisoned").as_ref() {
                t.unpark();
            }
        }
    }
}

/// A cache-line-aligned atomic counter. `head` and `tail` are each
/// written by exactly one side of the queue; padding them to separate
/// 64-byte lines stops a producer-side store from invalidating the line
/// the consumer spins on (false sharing) — each side's uncontended
/// fast-path load stays a cache hit.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomicU64(AtomicU64);

/// A bounded SPSC queue (one feeder, one worker) of transaction batches
/// with blocking and rejecting push variants.
pub(crate) struct ShardQueue {
    /// Ring of batch slots. Slot `i % slots.len()` is written by the
    /// producer at ring position `i` and taken by the consumer.
    slots: Box<[UnsafeCell<Option<Vec<HttpTransaction>>>]>,
    /// Next ring position to pop (monotone; consumer-advanced).
    head: PaddedAtomicU64,
    /// Next ring position to push (monotone; producer-advanced).
    tail: PaddedAtomicU64,
    /// Transactions buffered across all queued batches.
    len: AtomicUsize,
    closed: AtomicBool,
    capacity: usize,
    producer: Waiter,
    consumer: Waiter,
}

// SAFETY: slot `p` is written exactly once by the single producer
// before `tail` advances past `p` (release), and taken exactly once by
// the single consumer after observing `tail > p` (acquire), before
// `head` advances past `p`. The producer never touches a slot until
// `head` has moved past its previous occupancy. One mutator per slot at
// any time ⇒ the `UnsafeCell` accesses never alias mutably.
unsafe impl Send for ShardQueue {}
unsafe impl Sync for ShardQueue {}

impl ShardQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // One slot per admissible transaction: a buffered batch holds
        // ≥ 1 transaction, so `capacity` slots can never fill while the
        // transaction bound still admits work. Capped so a huge bound
        // doesn't balloon the ring (beyond the cap, a push can block on
        // slots — still bounded-queue semantics, just a tighter bound).
        let slots = capacity.clamp(1, 65_536);
        ShardQueue {
            slots: (0..slots).map(|_| UnsafeCell::new(None)).collect(),
            head: PaddedAtomicU64::default(),
            tail: PaddedAtomicU64::default(),
            len: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            capacity,
            producer: Waiter::default(),
            consumer: Waiter::default(),
        }
    }

    /// Whether the queue can admit `n` more transactions. An empty
    /// queue admits any batch — even one larger than the capacity — so
    /// an oversized batch makes progress instead of deadlocking both
    /// sides.
    fn admits(&self, n: usize) -> bool {
        let len = self.len.load(Ordering::SeqCst);
        len == 0 || len + n <= self.capacity
    }

    /// Producer-only: publishes `batch` if both the transaction bound
    /// and the ring admit it.
    fn try_push(&self, batch: Vec<HttpTransaction>) -> Result<(), Vec<HttpTransaction>> {
        let n = batch.len();
        if !self.admits(n) {
            return Err(batch);
        }
        let tail = self.tail.0.load(Ordering::Relaxed); // producer-owned
        let head = self.head.0.load(Ordering::Acquire);
        if tail - head >= self.slots.len() as u64 {
            return Err(batch); // ring full (oversized-batch regimes only)
        }
        // `len` grows before the batch is visible so the consumer's
        // decrement can never race it below zero.
        self.len.fetch_add(n, Ordering::SeqCst);
        let slot = &self.slots[(tail % self.slots.len() as u64) as usize];
        // SAFETY: see the `Sync` impl — the consumer does not read this
        // slot until `tail` advances past it below.
        unsafe { *slot.get() = Some(batch) };
        self.tail.0.store(tail + 1, Ordering::SeqCst);
        self.consumer.notify();
        Ok(())
    }

    /// Consumer-only: takes the next batch if one is published.
    fn try_pop(&self) -> Option<Vec<HttpTransaction>> {
        let head = self.head.0.load(Ordering::Relaxed); // consumer-owned
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        // SAFETY: `tail > head` proves the producer published this slot
        // and will not touch it again until `head` advances past it.
        let batch = unsafe { (*slot.get()).take() }.expect("published slot holds a batch");
        self.head.0.store(head + 1, Ordering::SeqCst);
        self.len.fetch_sub(batch.len(), Ordering::SeqCst);
        self.producer.notify();
        Some(batch)
    }

    /// Pushes a batch, blocking (parked) while the queue is over
    /// capacity. Returns the number of times the caller had to wait
    /// (the backpressure signal). Empty batches are a no-op.
    pub(crate) fn push_blocking(&self, batch: Vec<HttpTransaction>) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        let mut waits = 0u64;
        let mut batch = batch;
        loop {
            match self.try_push(batch) {
                Ok(()) => return waits,
                Err(back) => batch = back,
            }
            waits += 1;
            self.producer.prepare();
            // Re-check after raising the flag: a pop that happened in
            // between either freed room now or left an unpark token.
            match self.try_push(batch) {
                Ok(()) => {
                    self.producer.cancel();
                    return waits;
                }
                Err(back) => batch = back,
            }
            self.producer.park();
        }
    }

    /// Pushes a batch unless it would overflow the queue; the rejected
    /// batch is handed back so the caller can account the drop. Empty
    /// batches are a no-op.
    pub(crate) fn push_or_reject(
        &self,
        batch: Vec<HttpTransaction>,
    ) -> Result<(), Vec<HttpTransaction>> {
        if batch.is_empty() {
            return Ok(());
        }
        self.try_push(batch)
    }

    /// Marks the stream finished: workers drain what is buffered, then
    /// [`ShardQueue::pop`] returns `None`.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.consumer.notify();
        self.producer.notify();
    }

    /// Blocks (parked) for the next batch; `None` once the queue is
    /// closed *and* fully drained — close never discards buffered
    /// transactions.
    pub(crate) fn pop(&self) -> Option<Vec<HttpTransaction>> {
        loop {
            if let Some(batch) = self.try_pop() {
                return Some(batch);
            }
            if self.closed.load(Ordering::SeqCst) {
                // A push may have landed between the failed pop and the
                // closed check; close never loses it.
                return self.try_pop();
            }
            self.consumer.prepare();
            // Re-check after raising the flag (lost-wakeup guard).
            if let Some(batch) = self.try_pop() {
                self.consumer.cancel();
                return Some(batch);
            }
            if self.closed.load(Ordering::SeqCst) {
                self.consumer.cancel();
                continue;
            }
            self.consumer.park();
        }
    }

    /// Transactions currently buffered.
    pub(crate) fn depth(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(seq: u64) -> HttpTransaction {
        use nettrace::http::{HeaderMap, Method};
        use nettrace::payload::PayloadClass;
        use nettrace::reassembly::Endpoint;
        use std::net::Ipv4Addr;
        HttpTransaction {
            seq,
            ts: seq as f64,
            resp_ts: seq as f64 + 0.1,
            client: Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 50000),
            server: Endpoint::new(Ipv4Addr::new(203, 0, 113, 1), 80),
            host: "h.example".to_string(),
            method: Method::Get,
            uri: "/".to_string(),
            req_headers: HeaderMap::new(),
            status: 200,
            resp_headers: HeaderMap::new(),
            payload_class: PayloadClass::Html,
            payload_size: 0,
            payload_digest: 0,
            body_preview: Vec::new(),
        }
    }

    #[test]
    fn fifo_and_close_drains_everything() {
        let q = ShardQueue::new(100);
        q.push_blocking(vec![tx(0), tx(1)]);
        q.push_blocking(vec![tx(2)]);
        q.close();
        let a = q.pop().unwrap();
        assert_eq!(a.iter().map(|t| t.seq).collect::<Vec<_>>(), vec![0, 1]);
        let b = q.pop().unwrap();
        assert_eq!(b[0].seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reject_when_full_but_admit_when_empty() {
        let q = ShardQueue::new(2);
        // Oversized batch into an empty queue is admitted (no deadlock).
        assert!(q.push_or_reject(vec![tx(0), tx(1), tx(2)]).is_ok());
        // Now non-empty and over capacity: reject.
        let back = q.push_or_reject(vec![tx(3)]).unwrap_err();
        assert_eq!(back.len(), 1);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        use std::sync::Arc;
        let q = Arc::new(ShardQueue::new(1));
        q.push_blocking(vec![tx(0)]);
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut got = Vec::new();
            while let Some(batch) = q2.pop() {
                got.extend(batch.into_iter().map(|t| t.seq));
            }
            got
        });
        let waits = q.push_blocking(vec![tx(1)]);
        assert!(waits >= 1, "full queue must block the producer");
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![0, 1]);
    }

    #[test]
    fn ring_wraps_many_times_without_reordering() {
        use std::sync::Arc;
        // Tiny ring, long stream: head/tail wrap the slot array dozens
        // of times while producer and consumer run concurrently.
        let q = Arc::new(ShardQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(batch) = q2.pop() {
                got.extend(batch.into_iter().map(|t| t.seq));
            }
            got
        });
        for i in 0..500u64 {
            q.push_blocking(vec![tx(2 * i), tx(2 * i + 1)]);
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let q = ShardQueue::new(2);
        assert_eq!(q.push_blocking(Vec::new()), 0);
        assert!(q.push_or_reject(Vec::new()).is_ok());
        assert_eq!(q.depth(), 0);
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn close_after_push_never_loses_the_batch() {
        // Stress the close/pop race: the consumer must always see a
        // batch pushed before close, at any interleaving.
        for _ in 0..200 {
            use std::sync::Arc;
            let q = Arc::new(ShardQueue::new(16));
            let q2 = Arc::clone(&q);
            let consumer = std::thread::spawn(move || {
                let mut n = 0usize;
                while let Some(batch) = q2.pop() {
                    n += batch.len();
                }
                n
            });
            q.push_blocking(vec![tx(0), tx(1), tx(2)]);
            q.close();
            assert_eq!(consumer.join().unwrap(), 3);
        }
    }
}
