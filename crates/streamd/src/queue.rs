//! Bounded per-shard handoff queue.
//!
//! Transactions travel in batches (`Vec<HttpTransaction>`) to amortize
//! the mutex round-trip: one lock acquisition hands over up to
//! `batch_size` transactions. The bound is expressed in *transactions*,
//! not batches, so backpressure reacts to actual buffered work.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use nettrace::HttpTransaction;

struct State {
    batches: VecDeque<Vec<HttpTransaction>>,
    /// Transactions buffered across all queued batches.
    len: usize,
    closed: bool,
}

/// A bounded MPSC-ish queue (one feeder, one worker) of transaction
/// batches with blocking and rejecting push variants.
pub(crate) struct ShardQueue {
    state: Mutex<State>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ShardQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        ShardQueue {
            state: Mutex::new(State { batches: VecDeque::new(), len: 0, closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Whether `state` can admit `n` more transactions. An empty queue
    /// admits any batch — even one larger than the capacity — so an
    /// oversized batch makes progress instead of deadlocking both sides.
    fn admits(&self, state: &State, n: usize) -> bool {
        state.len == 0 || state.len + n <= self.capacity
    }

    /// Pushes a batch, blocking while the queue is over capacity.
    /// Returns the number of times the caller had to wait (the
    /// backpressure signal).
    pub(crate) fn push_blocking(&self, batch: Vec<HttpTransaction>) -> u64 {
        let mut waits = 0u64;
        let mut state = self.state.lock().expect("shard queue poisoned");
        while !self.admits(&state, batch.len()) {
            waits += 1;
            state = self.not_full.wait(state).expect("shard queue poisoned");
        }
        state.len += batch.len();
        state.batches.push_back(batch);
        self.not_empty.notify_one();
        waits
    }

    /// Pushes a batch unless it would overflow the queue; the rejected
    /// batch is handed back so the caller can account the drop.
    pub(crate) fn push_or_reject(
        &self,
        batch: Vec<HttpTransaction>,
    ) -> Result<(), Vec<HttpTransaction>> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        if !self.admits(&state, batch.len()) {
            return Err(batch);
        }
        state.len += batch.len();
        state.batches.push_back(batch);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Marks the stream finished: workers drain what is buffered, then
    /// [`ShardQueue::pop`] returns `None`.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("shard queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
    }

    /// Blocks for the next batch; `None` once the queue is closed *and*
    /// fully drained — close never discards buffered transactions.
    pub(crate) fn pop(&self) -> Option<Vec<HttpTransaction>> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        loop {
            if let Some(batch) = state.batches.pop_front() {
                state.len -= batch.len();
                self.not_full.notify_one();
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("shard queue poisoned");
        }
    }

    /// Transactions currently buffered.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("shard queue poisoned").len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(seq: u64) -> HttpTransaction {
        use nettrace::http::{HeaderMap, Method};
        use nettrace::payload::PayloadClass;
        use nettrace::reassembly::Endpoint;
        use std::net::Ipv4Addr;
        HttpTransaction {
            seq,
            ts: seq as f64,
            resp_ts: seq as f64 + 0.1,
            client: Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 50000),
            server: Endpoint::new(Ipv4Addr::new(203, 0, 113, 1), 80),
            host: "h.example".to_string(),
            method: Method::Get,
            uri: "/".to_string(),
            req_headers: HeaderMap::new(),
            status: 200,
            resp_headers: HeaderMap::new(),
            payload_class: PayloadClass::Html,
            payload_size: 0,
            payload_digest: 0,
            body_preview: Vec::new(),
        }
    }

    #[test]
    fn fifo_and_close_drains_everything() {
        let q = ShardQueue::new(100);
        q.push_blocking(vec![tx(0), tx(1)]);
        q.push_blocking(vec![tx(2)]);
        q.close();
        let a = q.pop().unwrap();
        assert_eq!(a.iter().map(|t| t.seq).collect::<Vec<_>>(), vec![0, 1]);
        let b = q.pop().unwrap();
        assert_eq!(b[0].seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn reject_when_full_but_admit_when_empty() {
        let q = ShardQueue::new(2);
        // Oversized batch into an empty queue is admitted (no deadlock).
        assert!(q.push_or_reject(vec![tx(0), tx(1), tx(2)]).is_ok());
        // Now non-empty and over capacity: reject.
        let back = q.push_or_reject(vec![tx(3)]).unwrap_err();
        assert_eq!(back.len(), 1);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        use std::sync::Arc;
        let q = Arc::new(ShardQueue::new(1));
        q.push_blocking(vec![tx(0)]);
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut got = Vec::new();
            while let Some(batch) = q2.pop() {
                got.extend(batch.into_iter().map(|t| t.seq));
            }
            got
        });
        let waits = q.push_blocking(vec![tx(1)]);
        assert!(waits >= 1, "full queue must block the producer");
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![0, 1]);
    }
}
