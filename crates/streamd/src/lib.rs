//! `streamd` — sharded stream processing for on-the-wire detection.
//!
//! The paper's deployment model is a single detector instance on the
//! wire; [`OnTheWireDetector`](dynaminer::detector::OnTheWireDetector)
//! mirrors that and is single-threaded by construction. This crate
//! scales it across cores the way ISP-scale web-request classifiers do:
//! partition the stream *per client*. Every piece of detector state —
//! conversations, clue windows, WCG builders — is keyed by client
//! address, so a client-sharded stream needs zero cross-shard
//! coordination.
//!
//! * [`StreamEngine`] — N per-shard detectors behind one facade:
//!   hash-partitioned bounded queues with batched handoff, one worker
//!   thread per shard, configurable backpressure ([`BackpressurePolicy`]),
//!   graceful drain, per-shard telemetry, and a merged alert stream in
//!   `(ts, ingest seq)` order.
//! * [`analyze_transactions_sharded`] — the forensic replay path on top
//!   of the engine; with `retention: None` and non-binding caps its
//!   [`ForensicReport`] is identical to the single-threaded
//!   [`analyze_transactions`](dynaminer::forensic::analyze_transactions)
//!   at any shard count.
//!
//! See DESIGN.md §12 for the architecture and the exact determinism
//! contract (including what changes in the capped regime).

mod engine;
mod queue;

pub use engine::{shard_of, BackpressurePolicy, EngineReport, StreamConfig, StreamEngine};

use dynaminer::classifier::Classifier;
use dynaminer::detector::{Conversation, DetectorConfig};
use dynaminer::forensic::{ConversationVerdict, DownloadRecord, ForensicReport};
use nettrace::HttpTransaction;
use telemetry::Registry;

/// Sharded forensic replay: like
/// [`analyze_transactions`](dynaminer::forensic::analyze_transactions)
/// but run through a [`StreamEngine`] of `config.shards` workers.
///
/// Conversation ids are client-scoped and verdicts are reassembled in
/// id order (== the single tracker's client-major iteration order), so
/// with `retention: None` and non-binding caps the report matches the
/// single-threaded one field for field at any shard count.
pub fn analyze_transactions_sharded(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
) -> ForensicReport {
    analyze_sharded_with(transactions, classifier, detector_config, config, None)
}

/// Like [`analyze_transactions_sharded`], with engine metrics registered
/// in `registry`, per-shard detector metrics aggregated into it at the
/// end, and the final snapshot attached as `stats`.
pub fn analyze_transactions_sharded_telemetry(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
    registry: &Registry,
) -> ForensicReport {
    analyze_sharded_with(transactions, classifier, detector_config, config, Some(registry))
}

fn analyze_sharded_with(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
    registry: Option<&Registry>,
) -> ForensicReport {
    let threads = mlearn::parallel::resolve_threads(detector_config.scoring_threads);
    let own_registry;
    let reg = match registry {
        Some(r) => r,
        None => {
            own_registry = Registry::new();
            &own_registry
        }
    };
    let mut engine = StreamEngine::with_telemetry(classifier, detector_config, config, reg);

    // Same feed order and download scan as the single-threaded path:
    // (ts, seq) is a total order over a numbered stream.
    let mut order: Vec<&HttpTransaction> = transactions.iter().collect();
    order.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.seq.cmp(&b.seq)));
    let mut downloads = Vec::new();
    for tx in &order {
        if tx.status / 100 == 2 && tx.payload_size > 0 && tx.payload_class.is_exploit_type() {
            downloads.push(DownloadRecord {
                host: tx.host.clone(),
                class: tx.payload_class,
                size: tx.payload_size,
                digest: tx.payload_digest,
                ts: tx.ts,
            });
        }
    }
    let report = engine.process(order.into_iter().cloned());

    // Final verdict pass, shard by shard. Batched conversation scoring
    // is bit-identical at any thread count and conversations are
    // independent, so scoring them per shard and reassembling by id
    // reproduces the single tracker's scores in its iteration order
    // (client-scoped ids sort client-major, like its BTreeMap).
    let mut conversations: Vec<ConversationVerdict> = Vec::new();
    for detector in engine.detectors() {
        let convs: Vec<&Conversation> = detector.tracker().conversations().collect();
        let slices: Vec<&[HttpTransaction]> =
            convs.iter().map(|c| c.transactions.as_slice()).collect();
        let started = std::time::Instant::now();
        let scores = detector.classifier().score_conversations_batch(&slices, threads);
        detector.metrics().scoring_ns.observe_since(started);
        conversations.extend(convs.iter().zip(scores).map(|(c, score)| ConversationVerdict {
            id: c.id,
            transactions: c.transactions.len(),
            score,
            alerted: c.alerted,
            hosts: c.hosts().count(),
        }));
    }
    conversations.sort_by_key(|v| v.id);

    let stats = registry.map(|r| {
        r.absorb(&engine.detector_stats());
        r.snapshot()
    });
    ForensicReport {
        transactions: engine.detectors().iter().map(|d| d.transactions_seen()).sum(),
        conversations,
        downloads,
        alerts: report.alerts.len(),
        ingest: None,
        stats,
    }
}
