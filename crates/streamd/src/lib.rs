//! `streamd` — sharded stream processing for on-the-wire detection.
//!
//! The paper's deployment model is a single detector instance on the
//! wire; [`OnTheWireDetector`](dynaminer::detector::OnTheWireDetector)
//! mirrors that and is single-threaded by construction. This crate
//! scales it across cores the way ISP-scale web-request classifiers do:
//! partition the stream *per client*. Every piece of detector state —
//! conversations, clue windows, WCG builders — is keyed by client
//! address, so a client-sharded stream needs zero cross-shard
//! coordination.
//!
//! * [`StreamEngine`] — N per-shard detectors behind one facade:
//!   hash-partitioned bounded queues with batched handoff, one worker
//!   thread per shard, configurable backpressure ([`BackpressurePolicy`]),
//!   graceful drain, per-shard telemetry, and a merged alert stream in
//!   `(ts, ingest seq)` order.
//! * [`analyze_transactions_sharded`] — the forensic replay path on top
//!   of the engine; with `retention: None` and non-binding caps its
//!   [`ForensicReport`] is identical to the single-threaded
//!   [`analyze_transactions`](dynaminer::forensic::analyze_transactions)
//!   at any shard count.
//! * [`analyze_transactions_durable`] — the same replay with a durable
//!   state tier: periodic [`EngineSnapshot`] checkpoints, resume from a
//!   snapshot at a *different* shard count, and an atomic mid-stream
//!   model hot-reload. An interrupted-and-resumed replay produces the
//!   byte-identical report of an uninterrupted one.
//!
//! See DESIGN.md §12 for the architecture and the exact determinism
//! contract (including what changes in the capped regime), and §13 for
//! the snapshot format and restore semantics.

mod engine;
mod queue;
pub mod snapshot;

pub use engine::{
    shard_of, BackpressurePolicy, EngineReport, FeedHandle, StreamConfig, StreamEngine,
};
pub use snapshot::{
    read_snapshot, write_snapshot_atomic, EngineSnapshot, Watermark, SNAPSHOT_FORMAT_VERSION,
};

use dynaminer::classifier::Classifier;
use dynaminer::detector::{Conversation, DetectorConfig};
use dynaminer::forensic::{ConversationVerdict, DownloadRecord, ForensicReport};
use nettrace::HttpTransaction;
use telemetry::Registry;

/// Sharded forensic replay: like
/// [`analyze_transactions`](dynaminer::forensic::analyze_transactions)
/// but run through a [`StreamEngine`] of `config.shards` workers.
///
/// Conversation ids are client-scoped and verdicts are reassembled in
/// id order (== the single tracker's client-major iteration order), so
/// with `retention: None` and non-binding caps the report matches the
/// single-threaded one field for field at any shard count.
pub fn analyze_transactions_sharded(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
) -> ForensicReport {
    analyze_sharded_with(transactions, classifier, detector_config, config, None)
}

/// Like [`analyze_transactions_sharded`], with engine metrics registered
/// in `registry`, per-shard detector metrics aggregated into it at the
/// end, and the final snapshot attached as `stats`.
pub fn analyze_transactions_sharded_telemetry(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
    registry: &Registry,
) -> ForensicReport {
    analyze_sharded_with(transactions, classifier, detector_config, config, Some(registry))
}

fn analyze_sharded_with(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
    registry: Option<&Registry>,
) -> ForensicReport {
    let threads = mlearn::parallel::resolve_threads(detector_config.scoring_threads);
    let own_registry;
    let reg = match registry {
        Some(r) => r,
        None => {
            own_registry = Registry::new();
            &own_registry
        }
    };
    let mut engine = StreamEngine::with_telemetry(classifier, detector_config, config, reg);

    // Same feed order and download scan as the single-threaded path:
    // (ts, seq) is a total order over a numbered stream.
    let (order, downloads) = order_and_downloads(transactions);
    engine.process(order.into_iter().cloned());
    finish_report(&mut engine, downloads, threads, registry)
}

/// Sorts a stream into `(ts, seq)` order and scans it for exploit-type
/// downloads (the scan is a pure function of the input stream, so a
/// resumed replay re-scans the full stream and reproduces the
/// uninterrupted run's download list exactly).
///
/// Public so external replay harnesses (the drift lab feeds an engine
/// epoch by epoch) can build the same download ledger the one-shot
/// replay paths use.
pub fn order_and_downloads(
    transactions: &[HttpTransaction],
) -> (Vec<&HttpTransaction>, Vec<DownloadRecord>) {
    let mut order: Vec<&HttpTransaction> = transactions.iter().collect();
    order.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.seq.cmp(&b.seq)));
    let mut downloads = Vec::new();
    for tx in &order {
        if tx.status / 100 == 2 && tx.payload_size > 0 && tx.payload_class.is_exploit_type() {
            downloads.push(DownloadRecord {
                host: tx.host.clone(),
                class: tx.payload_class,
                size: tx.payload_size,
                digest: tx.payload_digest,
                ts: tx.ts,
            });
        }
    }
    (order, downloads)
}

/// Final verdict pass and report assembly, shard by shard. Batched
/// conversation scoring is bit-identical at any thread count and
/// conversations are independent, so scoring them per shard and
/// reassembling by id reproduces the single tracker's scores in its
/// iteration order (client-scoped ids sort client-major, like its
/// BTreeMap). Spilled conversations are rehydrated first so the sweep
/// sees every conversation, frozen or not.
///
/// Public so harnesses that drive a long-lived engine across several
/// `process` calls (epoch-by-epoch drift replay) can close it out with
/// the exact report the one-shot replay paths produce.
pub fn finish_report(
    engine: &mut StreamEngine,
    downloads: Vec<DownloadRecord>,
    threads: usize,
    registry: Option<&Registry>,
) -> ForensicReport {
    engine.rehydrate_all();
    let mut conversations: Vec<ConversationVerdict> = Vec::new();
    for detector in engine.detectors() {
        let convs: Vec<&Conversation> = detector.tracker().conversations().collect();
        let slices: Vec<&[HttpTransaction]> =
            convs.iter().map(|c| c.transactions.as_slice()).collect();
        let started = std::time::Instant::now();
        let scores = detector.classifier().score_conversations_batch(&slices, threads);
        detector.metrics().scoring_ns.observe_since(started);
        conversations.extend(convs.iter().zip(scores).map(|(c, score)| ConversationVerdict {
            id: c.id,
            transactions: c.transactions.len(),
            score,
            alerted: c.alerted,
            hosts: c.hosts().count(),
        }));
    }
    conversations.sort_by_key(|v| v.id);

    let stats = registry.map(|r| {
        r.absorb(&engine.detector_stats());
        r.snapshot()
    });
    ForensicReport {
        transactions: engine.detectors().iter().map(|d| d.transactions_seen()).sum(),
        conversations,
        downloads,
        alerts: engine.total_alerts(),
        ingest: None,
        stats,
    }
}

/// A checkpoint consumer: receives each snapshot, errs to abort.
pub type SnapshotSink<'a> = &'a mut dyn FnMut(&EngineSnapshot) -> Result<(), String>;

/// Durability knobs for [`analyze_transactions_durable`].
#[derive(Default)]
pub struct DurableReplayOptions<'a> {
    /// Resume from this snapshot: restore the engine (re-partitioning
    /// into the configured shard count) and skip every transaction the
    /// snapshot's watermark already covers.
    pub resume: Option<EngineSnapshot>,
    /// Checkpoint cadence, in transactions fed between snapshots.
    /// `0` snapshots once, after the whole stream.
    pub checkpoint_every: u64,
    /// Receives every checkpoint (and the final snapshot). An `Err`
    /// aborts the replay — a sink that cannot persist must not let the
    /// run outlive its recoverability.
    pub snapshot_sink: Option<SnapshotSink<'a>>,
    /// Sleep between checkpoint chunks (lets crash-recovery harnesses
    /// kill a replay mid-stream deterministically).
    pub pace: Option<std::time::Duration>,
    /// Hot-reload `(model, at)`: atomically swap in `model` once the
    /// lifetime fed count reaches `at` transactions. Applied between
    /// checkpoint chunks; no transaction is dropped or reordered.
    pub reload: Option<(Classifier, u64)>,
}

/// Sharded forensic replay with a durable state tier: periodic
/// engine snapshots, resume-from-snapshot (including into a different
/// shard count), and an optional atomic model hot-reload mid-stream.
///
/// An interrupted replay resumed from its last checkpoint produces the
/// byte-identical [`ForensicReport`] of an uninterrupted run: restore
/// rebuilds every conversation, the watermark skips exactly the
/// transactions the interrupted run already fed, and the download scan
/// is a pure function of the full input stream.
///
/// # Errors
///
/// Returns the snapshot sink's error when persisting a checkpoint
/// fails (the replay is aborted at that point).
pub fn analyze_transactions_durable(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    detector_config: DetectorConfig,
    config: StreamConfig,
    registry: Option<&Registry>,
    mut opts: DurableReplayOptions<'_>,
) -> Result<ForensicReport, String> {
    let threads = mlearn::parallel::resolve_threads(detector_config.scoring_threads);
    let own_registry;
    let reg = match registry {
        Some(r) => r,
        None => {
            own_registry = Registry::new();
            &own_registry
        }
    };
    let mut engine = match opts.resume.take() {
        Some(snap) => StreamEngine::restore(classifier, detector_config, config, reg, snap),
        None => StreamEngine::with_telemetry(classifier, detector_config, config, reg),
    };

    let (order, downloads) = order_and_downloads(transactions);
    let watermark = engine.watermark();
    let remaining: Vec<&HttpTransaction> = order
        .into_iter()
        .filter(|tx| !watermark.is_some_and(|wm| wm.covers(tx)))
        .collect();

    let chunk_len = match opts.checkpoint_every {
        0 => remaining.len().max(1),
        n => usize::try_from(n).unwrap_or(usize::MAX).max(1),
    };
    let mut reload = opts.reload.take();
    let mut sink = opts.snapshot_sink.take();
    let mut chunks = remaining.chunks(chunk_len).peekable();
    if chunks.peek().is_none() {
        // Nothing left to feed (fully-covered resume): still emit one
        // snapshot so the caller's checkpoint file reflects this run.
        if let Some(sink) = &mut sink {
            sink(&engine.snapshot())?;
        }
    }
    while let Some(chunk) = chunks.next() {
        if let Some((_, at)) = &reload {
            if engine.fed() >= *at {
                let (model, _) = reload.take().expect("checked above");
                engine.reload_model(model);
            }
        }
        engine.process(chunk.iter().map(|tx| (*tx).clone()));
        if let Some(sink) = &mut sink {
            sink(&engine.snapshot())?;
        }
        if let (Some(pace), true) = (opts.pace, chunks.peek().is_some()) {
            std::thread::sleep(pace);
        }
    }
    if let Some((model, _)) = reload {
        // The threshold was past the end of the stream: deploy before
        // the verdict pass so the requested model still lands.
        engine.reload_model(model);
    }
    Ok(finish_report(&mut engine, downloads, threads, registry))
}
