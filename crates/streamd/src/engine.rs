//! The sharded stream engine.

use std::net::Ipv4Addr;
use std::time::Instant;

use dynaminer::classifier::Classifier;
use dynaminer::detector::{Alert, DetectorConfig, DetectorState, OnTheWireDetector};
use mlearn::slot::ModelSlot;
use nettrace::HttpTransaction;
use telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};

use crate::queue::ShardQueue;
use crate::snapshot::{EngineSnapshot, Watermark};

/// What the feeder does when a shard queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the feeder until the worker catches up. Nothing is lost;
    /// ingest slows to the speed of the slowest shard.
    Block,
    /// Drop the whole offered batch and count it. Ingest never stalls;
    /// the drop counters say what the verdict is worth.
    DropNewest,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of shards (detector instances + worker threads), >= 1.
    pub shards: usize,
    /// Per-shard queue bound, in buffered transactions. Clamped to at
    /// least `batch_size` so a full batch always fits an empty queue.
    pub queue_capacity: usize,
    /// Transactions handed over per queue operation. Larger batches
    /// amortize synchronization; smaller ones reduce alert latency.
    pub batch_size: usize,
    /// Full-queue behavior.
    pub backpressure: BackpressurePolicy,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            queue_capacity: 4096,
            // 256 amortizes the (already cheap) ring handoff to well
            // under a nanosecond per transaction while keeping worst
            // case alert latency to a quarter of the queue bound.
            batch_size: 256,
            backpressure: BackpressurePolicy::Block,
        }
    }
}

/// Fixed base for the shard hash. The client→shard mapping must be a
/// pure function of the client address so that replaying a capture
/// shards identically across runs and machines.
const SHARD_HASH_SEED: u64 = 0x7a3c_9f21_0b5d_e711;

/// Shard index for a client address: SplitMix64-finalized hash of the
/// IPv4 address, reduced modulo the shard count. All detector state is
/// keyed by client, so this is the *only* partitioning decision in the
/// engine — everything downstream is per-shard-local.
pub fn shard_of(client: Ipv4Addr, shards: usize) -> usize {
    (mlearn::parallel::derive_seed(SHARD_HASH_SEED, u64::from(u32::from(client)))
        % shards.max(1) as u64) as usize
}

/// Outcome of one [`StreamEngine::process`] call.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Alerts from all shards, merged into `(ts, ingest seq)` order —
    /// the same total order a single-threaded detector fed the
    /// `(ts, seq)`-sorted stream emits them in.
    pub alerts: Vec<Alert>,
    /// Transactions offered to shard queues.
    pub enqueued: u64,
    /// Transactions consumed by shard workers.
    pub processed: u64,
    /// Transactions dropped by the `DropNewest` policy. The drain
    /// invariant is `enqueued == processed + dropped`, with
    /// `dropped == 0` under `Block`.
    pub dropped: u64,
    /// Times the feeder blocked on a full queue (`Block` policy).
    pub backpressure_waits: u64,
    /// Transactions processed per shard, for imbalance inspection.
    pub per_shard_processed: Vec<u64>,
    /// CPU time each shard worker burned inside this call
    /// (`CLOCK_THREAD_CPUTIME_ID` delta), nanoseconds. All zeros on
    /// platforms without a per-thread CPU clock. This is the honest
    /// scaling denominator: wall-clock speedup on a busy or single-core
    /// host is noise, but `sum(per_shard_cpu_ns)` versus a
    /// single-thread run shows whether sharding duplicates work.
    pub per_shard_cpu_ns: Vec<u64>,
    /// CPU time the feeder thread burned inside this call (partitioning,
    /// batching, queue pushes), nanoseconds; 0 when unmeasured.
    pub feeder_cpu_ns: u64,
}

impl EngineReport {
    /// Max-over-mean shard load, in permille (1000 = perfectly even;
    /// `shards * 1000` = everything on one shard). 1000 when idle.
    pub fn imbalance_permille(&self) -> u64 {
        let n = self.per_shard_processed.len().max(1) as u64;
        if self.processed == 0 {
            return 1000;
        }
        let max = self.per_shard_processed.iter().copied().max().unwrap_or(0);
        max * n * 1000 / self.processed
    }
}

/// Per-shard engine metrics, named `streamd_shard<i>_*` (the registry
/// has no label support, so the shard index rides in the name).
struct ShardMetrics {
    queue_depth: Gauge,
    enqueued: Counter,
    processed: Counter,
    dropped: Counter,
    backpressure_waits: Counter,
    alerts: Counter,
    evictions: Counter,
}

impl ShardMetrics {
    fn new(registry: &Registry, shard: usize) -> Self {
        let name = |suffix: &str| format!("streamd_shard{shard}_{suffix}");
        ShardMetrics {
            queue_depth: registry
                .gauge(&name("queue_depth"), "Transactions buffered in this shard's queue"),
            enqueued: registry
                .counter(&name("enqueued_total"), "Transactions offered to this shard"),
            processed: registry
                .counter(&name("processed_total"), "Transactions consumed by this shard"),
            dropped: registry.counter(
                &name("dropped_total"),
                "Transactions dropped at this shard's full queue (DropNewest)",
            ),
            backpressure_waits: registry.counter(
                &name("backpressure_waits_total"),
                "Feeder blocks on this shard's full queue (Block)",
            ),
            alerts: registry
                .counter(&name("alerts_total"), "Alerts raised by this shard's detector"),
            evictions: counter_evictions(registry, &name("evictions_total")),
        }
    }
}

fn counter_evictions(registry: &Registry, name: &str) -> Counter {
    registry.counter(name, "Conversations evicted by this shard's tracker (retention + caps)")
}

/// Engine-wide totals.
struct EngineMetrics {
    enqueued: Counter,
    processed: Counter,
    dropped: Counter,
    backpressure_waits: Counter,
    model_reloads: Counter,
    shards: Gauge,
    imbalance_permille: Gauge,
    snapshot_write_ns: Histogram,
    snapshot_restore_ns: Histogram,
    shard_cpu_ns: Histogram,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        EngineMetrics {
            enqueued: registry
                .counter("streamd_enqueued_total", "Transactions offered to shard queues"),
            processed: registry
                .counter("streamd_processed_total", "Transactions consumed by shard workers"),
            dropped: registry.counter(
                "streamd_dropped_total",
                "Transactions dropped at full queues (DropNewest)",
            ),
            backpressure_waits: registry.counter(
                "streamd_backpressure_waits_total",
                "Feeder blocks on full queues (Block)",
            ),
            model_reloads: registry.counter(
                "streamd_model_reloads_total",
                "Atomic model hot-reloads applied to all shards",
            ),
            shards: registry.gauge("streamd_shards", "Configured shard count"),
            imbalance_permille: registry.gauge(
                "streamd_shard_imbalance_permille",
                "Max-over-mean shard load of the last process() call, permille",
            ),
            snapshot_write_ns: registry.latency_histogram(
                "streamd_snapshot_write_ns",
                "Engine state capture time per snapshot",
            ),
            snapshot_restore_ns: registry.latency_histogram(
                "streamd_snapshot_restore_ns",
                "Engine state restore time per resume",
            ),
            shard_cpu_ns: registry.latency_histogram(
                "streamd_shard_cpu_ns",
                "Worker thread CPU time per shard per process() call",
            ),
        }
    }
}

struct ShardRun {
    /// `(ingest seq, alert)` pairs in this shard's emission order.
    alerts: Vec<(u64, Alert)>,
    processed: u64,
    /// Worker-thread CPU consumed by this run (0 when unmeasured).
    cpu_ns: u64,
}

/// The push side of one [`StreamEngine::feed`] call: partitions
/// transactions by client address onto the live shard queues while the
/// workers consume them.
///
/// A handle only exists inside the closure passed to `feed` — the
/// workers are guaranteed to be running for exactly as long as the
/// handle can push. Pushes batch per shard ([`StreamConfig::batch_size`])
/// and apply the engine's backpressure policy at full queues: `Block`
/// parks the pushing thread until the worker catches up, `DropNewest`
/// discards the offered batch and counts it.
pub struct FeedHandle<'a> {
    queues: &'a [ShardQueue],
    depth_gauges: &'a [Gauge],
    policy: BackpressurePolicy,
    batch_size: usize,
    pending: Vec<Vec<HttpTransaction>>,
    enqueued: Vec<u64>,
    dropped: Vec<u64>,
    waits: Vec<u64>,
    last_fed: Option<Watermark>,
}

impl FeedHandle<'_> {
    /// Feeds one transaction: advances the watermark, hashes the
    /// client onto its shard, and hands over a batch when one fills.
    pub fn push(&mut self, tx: HttpTransaction) {
        let advance = match self.last_fed {
            Some(prev) => !prev.covers(&tx),
            None => true,
        };
        if advance {
            self.last_fed = Some(Watermark::of(&tx));
        }
        let s = shard_of(tx.client.addr, self.queues.len());
        self.pending[s].push(tx);
        if self.pending[s].len() >= self.batch_size {
            self.flush_shard(s);
        }
    }

    /// Hands over every partially filled batch immediately. Lowers
    /// alert latency when the push side goes quiet (a live source with
    /// no traffic); `feed` flushes automatically when the closure
    /// returns.
    pub fn flush(&mut self) {
        for s in 0..self.pending.len() {
            if !self.pending[s].is_empty() {
                self.flush_shard(s);
            }
        }
    }

    /// Transactions offered to shard queues so far in this feed call
    /// (buffered, processed, or dropped).
    pub fn enqueued(&self) -> u64 {
        self.enqueued.iter().sum::<u64>()
            + self.pending.iter().map(|p| p.len() as u64).sum::<u64>()
    }

    /// Feed position of the newest transaction pushed (or inherited
    /// from the engine when nothing was pushed yet).
    pub fn watermark(&self) -> Option<Watermark> {
        self.last_fed
    }

    fn flush_shard(&mut self, s: usize) {
        let batch =
            std::mem::replace(&mut self.pending[s], Vec::with_capacity(self.batch_size));
        self.enqueued[s] += batch.len() as u64;
        match self.policy {
            BackpressurePolicy::Block => self.waits[s] += self.queues[s].push_blocking(batch),
            BackpressurePolicy::DropNewest => {
                if let Err(rejected) = self.queues[s].push_or_reject(batch) {
                    self.dropped[s] += rejected.len() as u64;
                }
            }
        }
        self.depth_gauges[s].set(self.queues[s].depth() as i64);
    }
}

/// Sharded, multi-worker wrapper around N per-shard
/// [`OnTheWireDetector`] instances.
///
/// Transactions are hash-partitioned by client address onto bounded
/// per-shard queues and processed by one worker thread per shard; since
/// every piece of detector state (conversations, clue windows, WCG
/// builders) is client-keyed, shards never coordinate. Emitted alerts
/// are merged into `(ts, ingest seq)` order.
///
/// **Determinism contract:** with `retention: None` and the
/// state-exhaustion caps not binding, [`StreamEngine::process`] over a
/// `(ts, seq)`-sorted stream produces exactly the alert sequence a
/// single-threaded detector produces, at any shard count and any
/// worker timing. Per-detector caps become per-*shard* caps: a capped
/// regime can diverge because each shard evicts based on its own
/// clients only (see DESIGN.md §12).
///
/// Detector state persists across `process` calls; dropping the engine
/// is the shutdown. A graceful drain happens at the end of every
/// `process` call: queues are closed, workers consume every buffered
/// batch, and the merged alerts of the call are returned.
pub struct StreamEngine {
    detectors: Vec<OnTheWireDetector>,
    shard_registries: Vec<Registry>,
    shard_metrics: Vec<ShardMetrics>,
    totals: EngineMetrics,
    registry: Registry,
    config: StreamConfig,
    /// Per-shard detector totals already folded into the monotone
    /// engine counters (counters take deltas).
    synced_alerts: Vec<usize>,
    synced_evictions: Vec<usize>,
    /// One model slot shared by every shard: a single
    /// [`StreamEngine::reload_model`] swap deploys the new model to all
    /// shards atomically (each in-flight transaction finishes under the
    /// model generation it loaded).
    model: ModelSlot<Classifier>,
    /// Detector telemetry carried over from the snapshot this engine
    /// was restored from (empty for a fresh engine); folded into
    /// [`StreamEngine::detector_stats`] so whole-run stats survive a
    /// restart.
    carried_stats: Snapshot,
    /// Transactions fed across the engine's lifetime, including those
    /// fed by interrupted runs this engine resumed from.
    fed_total: u64,
    /// Feed position of the last transaction this engine was fed (or
    /// inherited from a restore).
    watermark: Option<Watermark>,
}

impl StreamEngine {
    /// Builds an engine of `config.shards` detectors, each a clone of
    /// `classifier` under `detector_config`, with engine telemetry in a
    /// private registry.
    pub fn new(
        classifier: Classifier,
        detector_config: DetectorConfig,
        config: StreamConfig,
    ) -> Self {
        Self::with_telemetry(classifier, detector_config, config, &Registry::new())
    }

    /// Like [`StreamEngine::new`] with engine metrics registered in
    /// `registry`. Each shard's detector keeps a *private* registry
    /// (shards share metric names, which must not collide in one
    /// registry); [`StreamEngine::detector_stats`] aggregates them.
    pub fn with_telemetry(
        classifier: Classifier,
        detector_config: DetectorConfig,
        config: StreamConfig,
        registry: &Registry,
    ) -> Self {
        let shards = config.shards.max(1);
        let model = ModelSlot::new(classifier);
        let shard_registries: Vec<Registry> = (0..shards).map(|_| Registry::new()).collect();
        let detectors = shard_registries
            .iter()
            .map(|reg| {
                OnTheWireDetector::with_model_slot(model.clone(), detector_config.clone(), reg)
            })
            .collect();
        let shard_metrics = (0..shards).map(|i| ShardMetrics::new(registry, i)).collect();
        let totals = EngineMetrics::new(registry);
        totals.shards.set(shards as i64);
        StreamEngine {
            detectors,
            shard_registries,
            shard_metrics,
            totals,
            registry: registry.clone(),
            config: StreamConfig { shards, ..config },
            synced_alerts: vec![0; shards],
            synced_evictions: vec![0; shards],
            model,
            carried_stats: Snapshot::default(),
            fed_total: 0,
            watermark: None,
        }
    }

    /// Rebuilds an engine from a snapshot, re-partitioning the saved
    /// state into `config.shards` shards (which need not match the
    /// shard count of the engine that wrote the snapshot). `classifier`
    /// is loaded separately — snapshots deliberately do not embed the
    /// model, so the CLI's model-format validation stays the single
    /// gate models pass through. The slot resumes at the snapshot's
    /// model generation so post-restore alerts continue its numbering.
    pub fn restore(
        classifier: Classifier,
        detector_config: DetectorConfig,
        config: StreamConfig,
        registry: &Registry,
        snapshot: EngineSnapshot,
    ) -> Self {
        let started = Instant::now();
        let mut engine = Self::with_telemetry(classifier, detector_config, config, registry);
        engine.model.force_version(snapshot.model_version);
        let shards = engine.detectors.len();
        let states = snapshot.detector.partition(shards, |addr| shard_of(addr, shards));
        for (i, state) in states.into_iter().enumerate() {
            engine.detectors[i].restore_state(state);
            engine.synced_alerts[i] = engine.detectors[i].alerts().len();
            let tracker = engine.detectors[i].tracker();
            engine.synced_evictions[i] = tracker.evicted_count() + tracker.cap_evicted_count();
        }
        engine.carried_stats = snapshot.stats;
        engine.fed_total = snapshot.fed;
        engine.watermark = snapshot.watermark;
        engine.totals.snapshot_restore_ns.observe_since(started);
        engine
    }

    /// Captures a full durable image of the engine: merged per-shard
    /// detector state, the feed watermark, the deployed model
    /// generation, and the detector telemetry accumulated so far
    /// (including any carried over from earlier restores). Call between
    /// [`StreamEngine::process`] calls — the engine is quiescent then
    /// (workers only live inside `process`).
    pub fn snapshot(&self) -> EngineSnapshot {
        let started = Instant::now();
        let mut stats = self.detector_stats();
        // Gauges describe the *current* population; the restored
        // detectors re-publish them live, and `Registry::absorb` adds
        // gauges, so carrying them would double-count.
        stats.gauges.clear();
        let snap = EngineSnapshot {
            watermark: self.watermark,
            fed: self.fed_total,
            shards: self.detectors.len() as u32,
            model_version: self.model.version(),
            detector: DetectorState::merge(self.detectors.iter().map(|d| d.state())),
            stats,
        };
        self.totals.snapshot_write_ns.observe_since(started);
        snap
    }

    /// Atomically deploys a new model to every shard and returns the
    /// new model generation. Safe to call concurrently with
    /// [`StreamEngine::process`]: each transaction is classified
    /// entirely under the generation it loaded, so no transaction is
    /// dropped or reordered by a reload.
    pub fn reload_model(&self, classifier: Classifier) -> u64 {
        let version = self.model.swap(classifier);
        self.totals.model_reloads.inc();
        version
    }

    /// Generation of the currently deployed model.
    pub fn model_version(&self) -> u64 {
        self.model.version()
    }

    /// The shared model slot (swapping through a clone hot-reloads
    /// every shard).
    pub fn model_slot(&self) -> &ModelSlot<Classifier> {
        &self.model
    }

    /// Thaws every spilled conversation on every shard, so a final
    /// verdict sweep over [`StreamEngine::detectors`] sees all state.
    pub fn rehydrate_all(&mut self) {
        for det in &mut self.detectors {
            det.rehydrate_all();
        }
    }

    /// Alerts raised across all shards over the engine's lifetime
    /// (including alerts restored from a snapshot).
    pub fn total_alerts(&self) -> usize {
        self.detectors.iter().map(|d| d.alerts().len()).sum()
    }

    /// Transactions fed over the engine's lifetime, including those fed
    /// by interrupted runs this engine resumed from.
    pub fn fed(&self) -> u64 {
        self.fed_total
    }

    /// Feed position of the last transaction fed (or inherited from a
    /// restore); `None` when nothing has been fed.
    pub fn watermark(&self) -> Option<Watermark> {
        self.watermark
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.detectors.len()
    }

    /// The per-shard detectors (for forensic summaries over their
    /// trackers). Index `i` is shard `i`.
    pub fn detectors(&self) -> &[OnTheWireDetector] {
        &self.detectors
    }

    /// The registry holding the engine's own metrics.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// Aggregated snapshot of all shards' detector metrics: counters
    /// and histograms sum across shards, and gauges sum too (each
    /// shard's live conversations are a disjoint population). Telemetry
    /// carried from the snapshot this engine was restored from is
    /// folded in, so the stats always describe the whole logical run.
    pub fn detector_stats(&self) -> Snapshot {
        let aggregate = Registry::new();
        aggregate.absorb(&self.carried_stats);
        for reg in &self.shard_registries {
            aggregate.absorb(&reg.snapshot());
        }
        aggregate.snapshot()
    }

    /// Runs a transaction stream through the shards and drains —
    /// pull-style sugar over [`StreamEngine::feed`]: the feeder
    /// (caller's thread) pushes every transaction of `stream` and the
    /// drain happens when the iterator ends.
    pub fn process<I>(&mut self, stream: I) -> EngineReport
    where
        I: IntoIterator<Item = HttpTransaction>,
    {
        let ((), report) = self.feed(|handle| {
            for tx in stream {
                handle.push(tx);
            }
        });
        report
    }

    /// Runs the shard workers for the duration of `feeder`, which
    /// pushes transactions through the [`FeedHandle`] it is given —
    /// the push-style core that live sources (proxies, capture
    /// readers) drive directly, interleaving socket work with pushes.
    ///
    /// When the closure returns, the engine drains: partial batches are
    /// flushed, the queues close, every buffered batch is consumed, and
    /// the workers join. Returns the closure's value and the call's
    /// [`EngineReport`] with alerts merged into `(ts, ingest seq)`
    /// order. The report's `feeder_cpu_ns` covers everything the
    /// closure did on the feed thread, not just queue pushes.
    pub fn feed<R>(&mut self, feeder: impl FnOnce(&mut FeedHandle<'_>) -> R) -> (R, EngineReport) {
        let shards = self.detectors.len();
        let batch_size = self.config.batch_size.max(1);
        let capacity = self.config.queue_capacity.max(batch_size);
        let policy = self.config.backpressure;
        let queues: Vec<ShardQueue> = (0..shards).map(|_| ShardQueue::new(capacity)).collect();
        let queues = &queues;

        let depth_gauges: Vec<Gauge> =
            self.shard_metrics.iter().map(|m| m.queue_depth.clone()).collect();

        let feeder_cpu_start = telemetry::thread_cpu_ns();
        let (value, enqueued, dropped, waits, last_fed, mut runs) =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .detectors
                    .iter_mut()
                    .zip(queues)
                    .zip(&depth_gauges)
                    .map(|((detector, queue), depth)| {
                        scope.spawn(move || {
                            let cpu_start = telemetry::thread_cpu_ns();
                            let mut alerts: Vec<(u64, Alert)> = Vec::new();
                            let mut processed = 0u64;
                            while let Some(batch) = queue.pop() {
                                depth.set(queue.depth() as i64);
                                processed += batch.len() as u64;
                                for tx in batch {
                                    let seq = tx.seq;
                                    if let Some(alert) = detector.observe_owned(tx) {
                                        alerts.push((seq, alert));
                                    }
                                }
                            }
                            // The delta excludes park time: a parked
                            // thread accrues no CPU, so an idle shard
                            // reads near 0.
                            let cpu_ns =
                                telemetry::thread_cpu_ns().saturating_sub(cpu_start);
                            ShardRun { alerts, processed, cpu_ns }
                        })
                    })
                    .collect();

                let mut handle = FeedHandle {
                    queues,
                    depth_gauges: &depth_gauges,
                    policy,
                    batch_size,
                    pending: (0..shards).map(|_| Vec::with_capacity(batch_size)).collect(),
                    enqueued: vec![0u64; shards],
                    dropped: vec![0u64; shards],
                    waits: vec![0u64; shards],
                    last_fed: self.watermark,
                };
                let value = feeder(&mut handle);
                // Drain: flush partial batches, then close every queue
                // so workers finish what is buffered and exit.
                handle.flush();
                let FeedHandle { enqueued, dropped, waits, last_fed, .. } = handle;
                for queue in queues {
                    queue.close();
                }
                let runs: Vec<ShardRun> = handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect();
                (value, enqueued, dropped, waits, last_fed, runs)
            });
        // Joining parks the feeder, so this delta is feed work only.
        let feeder_cpu_ns = telemetry::thread_cpu_ns().saturating_sub(feeder_cpu_start);

        // Fold this call's traffic into the monotone engine counters and
        // sync the per-shard detector totals (alerts, evictions).
        let per_shard_processed: Vec<u64> = runs.iter().map(|r| r.processed).collect();
        let per_shard_cpu_ns: Vec<u64> = runs.iter().map(|r| r.cpu_ns).collect();
        for &cpu in &per_shard_cpu_ns {
            self.totals.shard_cpu_ns.observe(cpu);
        }
        for (i, m) in self.shard_metrics.iter().enumerate() {
            m.enqueued.add(enqueued[i]);
            m.processed.add(per_shard_processed[i]);
            m.dropped.add(dropped[i]);
            m.backpressure_waits.add(waits[i]);
            m.queue_depth.set(0);
            let alerts = self.detectors[i].alerts().len();
            m.alerts.add((alerts - self.synced_alerts[i]) as u64);
            self.synced_alerts[i] = alerts;
            let tracker = self.detectors[i].tracker();
            let evictions = tracker.evicted_count() + tracker.cap_evicted_count();
            m.evictions.add((evictions - self.synced_evictions[i]) as u64);
            self.synced_evictions[i] = evictions;
        }
        let report = EngineReport {
            alerts: Vec::new(),
            enqueued: enqueued.iter().sum(),
            processed: per_shard_processed.iter().sum(),
            dropped: dropped.iter().sum(),
            backpressure_waits: waits.iter().sum(),
            per_shard_processed,
            per_shard_cpu_ns,
            feeder_cpu_ns,
        };
        self.totals.enqueued.add(report.enqueued);
        self.totals.processed.add(report.processed);
        self.totals.dropped.add(report.dropped);
        self.totals.backpressure_waits.add(report.backpressure_waits);
        self.totals.imbalance_permille.set(report.imbalance_permille() as i64);
        self.fed_total += report.enqueued;
        self.watermark = last_fed;

        // Merge shard alert streams into (ts, ingest seq) order. Each
        // shard's list is deterministic and the sort is stable, so the
        // merged stream is independent of worker timing.
        let mut tagged: Vec<(u64, Alert)> =
            runs.iter_mut().flat_map(|r| r.alerts.drain(..)).collect();
        tagged.sort_by(|a, b| a.1.ts.total_cmp(&b.1.ts).then(a.0.cmp(&b.0)));
        (value, EngineReport { alerts: tagged.into_iter().map(|(_, a)| a).collect(), ..report })
    }
}
