//! Versioned, length-prefixed engine snapshots (DESIGN.md §13).
//!
//! An [`EngineSnapshot`] is everything a restarted engine needs to
//! continue an interrupted replay with bit-identical output: the merged
//! per-shard [`DetectorState`]s, the ingest watermark (how far into the
//! `(ts, seq)`-ordered stream the feed had progressed), the deployed
//! model's generation, and the detector telemetry accumulated so far.
//!
//! The byte format mirrors the CLI model format's version gate: a fixed
//! magic, a little-endian format version that is checked before any
//! payload parsing, and a little-endian payload length that is checked
//! against the actual payload — truncated or trailing-garbage files are
//! rejected instead of half-parsed.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "DYNSNAP\0"
//! 8       4     format version, u32 LE
//! 12      8     payload length,  u64 LE
//! 20      n     payload: EngineSnapshot as JSON
//! ```

use dynaminer::detector::DetectorState;
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};

/// Snapshot format generation this build writes and accepts.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Fixed leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DYNSNAP\0";

/// Position in the `(ts, seq)` total order up to which the stream had
/// been fed when the snapshot was taken. The timestamp travels as raw
/// bits so the boundary is exact — no float formatting round-trip can
/// move it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watermark {
    /// `f64::to_bits` of the last fed transaction's timestamp.
    pub ts_bits: u64,
    /// Ingest sequence number of the last fed transaction.
    pub seq: u64,
}

impl Watermark {
    /// The watermark at `tx`.
    pub fn of(tx: &HttpTransaction) -> Self {
        Watermark { ts_bits: tx.ts.to_bits(), seq: tx.seq }
    }

    /// Whether `tx` is at or before this watermark in the `(ts, seq)`
    /// total order — i.e. was already fed when the snapshot was taken.
    pub fn covers(&self, tx: &HttpTransaction) -> bool {
        match tx.ts.total_cmp(&f64::from_bits(self.ts_bits)) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => tx.seq <= self.seq,
            std::cmp::Ordering::Greater => false,
        }
    }
}

/// Full durable image of a [`StreamEngine`](crate::StreamEngine).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Feed position; `None` when nothing had been fed yet.
    pub watermark: Option<Watermark>,
    /// Transactions fed across the engine's lifetime (including any
    /// earlier restores this engine itself resumed from).
    pub fed: u64,
    /// Shard count of the engine that wrote the snapshot — informational
    /// only; restore re-partitions into the restoring engine's count.
    pub shards: u32,
    /// Deployed model generation, so post-restore alerts continue the
    /// numbering of the interrupted run.
    pub model_version: u64,
    /// Merged detector state of all shards.
    pub detector: DetectorState,
    /// Aggregated detector telemetry at snapshot time (gauges cleared:
    /// restored detectors re-publish them live, and
    /// [`telemetry::Registry::absorb`] adds gauges, so carrying them
    /// would double-count).
    pub stats: telemetry::Snapshot,
}

impl EngineSnapshot {
    /// Serializes to the versioned, length-prefixed byte format.
    pub fn to_bytes(&self) -> Result<Vec<u8>, String> {
        let payload = serde_json::to_string(self)
            .map_err(|e| format!("cannot serialize snapshot: {e}"))?;
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Parses the byte format, rejecting wrong magic, an unsupported
    /// format version (checked before the payload is even looked at),
    /// and truncated or oversized payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 20 {
            return Err(format!("snapshot header truncated ({} bytes)", bytes.len()));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err("not a DynaMiner engine snapshot (bad magic)".to_string());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(format!(
                "uses snapshot format {version} but this build expects {SNAPSHOT_FORMAT_VERSION}"
            ));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let payload = &bytes[20..];
        if payload.len() != len {
            return Err(format!(
                "snapshot payload length mismatch: header says {len}, file has {}",
                payload.len()
            ));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|e| format!("snapshot payload is not UTF-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| format!("cannot parse snapshot payload: {e}"))
    }
}

/// Writes a snapshot atomically: the bytes land in a sibling temp file
/// that is renamed over `path`, so a crash mid-write leaves either the
/// previous snapshot or the new one — never a torn file.
pub fn write_snapshot_atomic(path: &std::path::Path, snapshot: &EngineSnapshot) -> Result<(), String> {
    let bytes = snapshot.to_bytes()?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes)
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} over {}: {e}", tmp.display(), path.display()))
}

/// Reads and parses a snapshot file, prefixing errors with the path.
pub fn read_snapshot(path: &std::path::Path) -> Result<EngineSnapshot, String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    EngineSnapshot::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaminer::detector::DetectorState;

    fn empty_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            watermark: Some(Watermark { ts_bits: 1.5f64.to_bits(), seq: 42 }),
            fed: 43,
            shards: 2,
            model_version: 3,
            detector: DetectorState::merge([]),
            stats: telemetry::Snapshot::default(),
        }
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let snap = empty_snapshot();
        let bytes = snap.to_bytes().unwrap();
        assert_eq!(bytes[..8], SNAPSHOT_MAGIC);
        let back = EngineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.watermark, snap.watermark);
        assert_eq!(back.fed, 43);
        assert_eq!(back.shards, 2);
        assert_eq!(back.model_version, 3);
    }

    #[test]
    fn version_gate_rejects_future_formats_before_parsing() {
        let mut bytes = empty_snapshot().to_bytes().unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Garbage payload too: the gate must fire before any parsing.
        let n = bytes.len();
        bytes[20..n].fill(0xff);
        let err = EngineSnapshot::from_bytes(&bytes).unwrap_err();
        assert!(
            err.contains("uses snapshot format 99 but this build expects 1"),
            "{err}"
        );
    }

    #[test]
    fn truncation_and_bad_magic_are_rejected() {
        let bytes = empty_snapshot().to_bytes().unwrap();
        let err = EngineSnapshot::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
        assert!(EngineSnapshot::from_bytes(&bytes[..10]).unwrap_err().contains("truncated"));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(EngineSnapshot::from_bytes(&bad).unwrap_err().contains("bad magic"));
    }

    #[test]
    fn watermark_covers_respects_the_total_order() {
        use nettrace::http::HeaderMap;
        use nettrace::reassembly::Endpoint;
        use std::net::Ipv4Addr;
        let wm = Watermark { ts_bits: 100.0f64.to_bits(), seq: 5 };
        let mut tx = nettrace::HttpTransaction {
            seq: 5,
            ts: 100.0,
            resp_ts: 100.0,
            client: Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1),
            server: Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80),
            host: "a".into(),
            method: nettrace::http::Method::Get,
            uri: "/".into(),
            req_headers: HeaderMap::new(),
            status: 200,
            resp_headers: HeaderMap::new(),
            payload_class: nettrace::payload::PayloadClass::Html,
            payload_size: 0,
            body_preview: Vec::new(),
            payload_digest: 0,
        };
        assert!(wm.covers(&tx), "equal position is covered");
        tx.seq = 6;
        assert!(!wm.covers(&tx), "same ts, later seq is not");
        tx.ts = 99.0;
        assert!(wm.covers(&tx), "earlier ts is, regardless of seq");
        tx.ts = 101.0;
        tx.seq = 0;
        assert!(!wm.covers(&tx));
    }
}
