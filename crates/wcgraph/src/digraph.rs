//! A compact directed multigraph with node and edge payloads.

use serde::{Deserialize, Serialize};

/// Index of a node within a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of an edge within a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge<E> {
    src: NodeId,
    dst: NodeId,
    payload: E,
}

/// A directed multigraph: parallel edges and self-loops are allowed.
///
/// Nodes and edges are identified by dense indices ([`NodeId`], [`EdgeId`])
/// assigned in insertion order; neither can be removed, which keeps the
/// indices stable — web conversation graphs only ever grow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        DiGraph { nodes: Vec::new(), edges: Vec::new(), out_adj: Vec::new(), in_adj: Vec::new() }
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(payload);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge `src → dst` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, payload: E) -> EdgeId {
        assert!(src.0 < self.nodes.len(), "src node {} out of bounds", src.0);
        assert!(dst.0 < self.nodes.len(), "dst node {} out of bounds", dst.0);
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, payload });
        self.out_adj[src.0].push(id);
        self.in_adj[dst.0].push(id);
        id
    }

    /// Number of nodes (the graph's *order*).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (the graph's *size*), counting parallel edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Payload of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.0]
    }

    /// Mutable payload of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.0]
    }

    /// Payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge(&self, e: EdgeId) -> &E {
        &self.edges[e.0].payload
    }

    /// Mutable payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.0].payload
    }

    /// `(src, dst)` endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.0];
        (edge.src, edge.dst)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Iterates over `(EdgeId, src, dst, &payload)` for every edge.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e.src, e.dst, &e.payload))
    }

    /// Outgoing edge ids of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n.0]
    }

    /// Incoming edge ids of `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_adj[n.0]
    }

    /// Out-degree of `n` counting parallel edges.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.0].len()
    }

    /// In-degree of `n` counting parallel edges.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.0].len()
    }

    /// Total degree (in + out) of `n` counting parallel edges.
    pub fn degree(&self, n: NodeId) -> usize {
        self.out_degree(n) + self.in_degree(n)
    }

    /// Distinct successor nodes of `n` (parallel edges collapsed, sorted).
    ///
    /// Allocates a fresh `Vec` per call; prefer [`DiGraph::successor_ids`]
    /// or a [`crate::GraphView`] on hot paths.
    pub fn successors(&self, n: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.successor_ids(n).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct predecessor nodes of `n` (parallel edges collapsed, sorted).
    ///
    /// Allocates a fresh `Vec` per call; prefer [`DiGraph::predecessor_ids`]
    /// or a [`crate::GraphView`] on hot paths.
    pub fn predecessors(&self, n: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.predecessor_ids(n).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Successor nodes of `n` in edge-insertion order, without allocating.
    /// Parallel edges yield their target once per edge.
    pub fn successor_ids(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[n.0].iter().map(|e| self.edges[e.0].dst)
    }

    /// Predecessor nodes of `n` in edge-insertion order, without allocating.
    /// Parallel edges yield their source once per edge.
    pub fn predecessor_ids(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[n.0].iter().map(|e| self.edges[e.0].src)
    }

    /// Simple undirected adjacency: for each node, the sorted distinct
    /// neighbor set ignoring edge direction and self-loops. This is the
    /// view most centrality algorithms operate on.
    pub fn undirected_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.src != e.dst {
                adj[e.src.0].push(e.dst.0);
                adj[e.dst.0].push(e.src.0);
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Simple directed adjacency (parallel edges and self-loops collapsed):
    /// `(successors, predecessors)` per node, sorted.
    pub fn directed_adjacency(&self) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let mut succ = vec![Vec::new(); self.nodes.len()];
        let mut pred = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.src != e.dst {
                succ[e.src.0].push(e.dst.0);
                pred[e.dst.0].push(e.src.0);
            }
        }
        for v in succ.iter_mut().chain(pred.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        (succ, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph<&'static str, u32> {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 2);
        g.add_edge(c, a, 3);
        g
    }

    #[test]
    fn counts_and_payloads() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(*g.node(NodeId(1)), "b");
        assert_eq!(*g.edge(EdgeId(2)), 3);
        assert_eq!(g.endpoints(EdgeId(0)), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn degrees_count_parallel_edges() {
        let mut g = triangle();
        g.add_edge(NodeId(0), NodeId(1), 9);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(1)), 2);
        assert_eq!(g.degree(NodeId(0)), 3); // 2 out + 1 in
        // …but successor sets collapse them.
        assert_eq!(g.successors(NodeId(0)), vec![NodeId(1)]);
    }

    #[test]
    fn undirected_adjacency_collapses_direction_and_loops() {
        let mut g = triangle();
        g.add_edge(NodeId(1), NodeId(0), 9); // reverse of existing
        g.add_edge(NodeId(2), NodeId(2), 9); // self-loop
        let adj = g.undirected_adjacency();
        assert_eq!(adj[0], vec![1, 2]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![0, 1]); // self-loop excluded
    }

    #[test]
    fn directed_adjacency_separates_directions() {
        let g = triangle();
        let (succ, pred) = g.directed_adjacency();
        assert_eq!(succ[0], vec![1]);
        assert_eq!(pred[0], vec![2]);
    }

    #[test]
    fn node_mut_and_edge_mut() {
        let mut g = triangle();
        *g.node_mut(NodeId(0)) = "z";
        *g.edge_mut(EdgeId(0)) = 42;
        assert_eq!(*g.node(NodeId(0)), "z");
        assert_eq!(*g.edge(EdgeId(0)), 42);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_validates_endpoints() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }

    #[test]
    fn iterators_cover_everything() {
        let g = triangle();
        assert_eq!(g.node_ids().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
        let total: u32 = g.edges().map(|(_, _, _, w)| *w).sum();
        assert_eq!(total, 6);
    }
}
