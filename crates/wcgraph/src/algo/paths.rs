//! Breadth-first shortest paths, eccentricity, diameter, and
//! distance-bounded neighborhood sizes — all on the underlying undirected
//! simple graph (web conversation graphs are request/response pairs, so the
//! undirected view is the natural distance metric, and it keeps the
//! diameter finite on weakly connected graphs).

use crate::algo::AlgoScratch;
use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// BFS from `source` into caller-provided buffers: the scratch core every
/// distance-based metric shares. `dist` is resized and reset in place.
pub(crate) fn bfs_distances_into<A: Adjacency + ?Sized>(
    adj: &A,
    source: usize,
    dist: &mut Vec<usize>,
    queue: &mut std::collections::VecDeque<usize>,
) {
    dist.clear();
    dist.resize(adj.order(), usize::MAX);
    queue.clear();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in adj.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
}

/// BFS distances from `source` over an undirected adjacency.
/// Unreachable nodes get `usize::MAX`.
pub fn bfs_distances<A: Adjacency + ?Sized>(adj: &A, source: usize) -> Vec<usize> {
    let mut dist = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    bfs_distances_into(adj, source, &mut dist, &mut queue);
    dist
}

/// Eccentricity of every node: the longest shortest-path distance to any
/// *reachable* node (so disconnected graphs still get finite values).
pub fn eccentricities<N, E>(g: &DiGraph<N, E>) -> Vec<usize> {
    eccentricities_in(&g.undirected_adjacency())
}

/// [`eccentricities`] over a prebuilt view.
pub fn eccentricities_view(view: &GraphView) -> Vec<usize> {
    eccentricities_in(view.undirected())
}

fn eccentricities_in<A: Adjacency + ?Sized>(adj: &A) -> Vec<usize> {
    (0..adj.order())
        .map(|s| bfs_distances(adj, s).into_iter().filter(|&d| d != usize::MAX).max().unwrap_or(0))
        .collect()
}

/// Diameter: the maximum eccentricity over all nodes (0 for empty graphs).
///
/// Computed per weakly-connected component and maximized, so a disconnected
/// graph reports the largest intra-component diameter rather than infinity.
pub fn diameter<N, E>(g: &DiGraph<N, E>) -> usize {
    eccentricities(g).into_iter().max().unwrap_or(0)
}

/// [`diameter`] over a prebuilt view.
pub fn diameter_view(view: &GraphView) -> usize {
    eccentricities_view(view).into_iter().max().unwrap_or(0)
}

/// [`diameter_view`] reusing `scratch`'s BFS buffers — no per-call
/// allocation once the buffers have grown to the graph's order.
pub fn diameter_view_scratch(view: &GraphView, scratch: &mut AlgoScratch) -> usize {
    let adj = view.undirected();
    let mut best = 0;
    for s in 0..adj.order() {
        bfs_distances_into(adj, s, &mut scratch.dist, &mut scratch.queue);
        let ecc =
            scratch.dist.iter().copied().filter(|&d| d != usize::MAX).max().unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

/// Average number of nodes within distance `k` of each node (excluding the
/// node itself). This implements the paper's f24 "average number of nodes
/// at k-nodes distance from each node".
pub fn avg_nodes_within_distance<N, E>(g: &DiGraph<N, E>, k: usize) -> f64 {
    avg_nodes_within_distance_in(&g.undirected_adjacency(), k)
}

/// [`avg_nodes_within_distance`] over a prebuilt view.
pub fn avg_nodes_within_distance_view(view: &GraphView, k: usize) -> f64 {
    avg_nodes_within_distance_in(view.undirected(), k)
}

fn avg_nodes_within_distance_in<A: Adjacency + ?Sized>(adj: &A, k: usize) -> f64 {
    let n = adj.order();
    if n == 0 {
        return 0.0;
    }
    let total: usize = (0..n)
        .map(|s| {
            bfs_distances(adj, s)
                .into_iter()
                .enumerate()
                .filter(|&(v, d)| v != s && d != usize::MAX && d <= k)
                .count()
        })
        .sum();
    total as f64 / n as f64
}

/// [`avg_nodes_within_distance_view`] reusing `scratch`'s BFS buffers.
pub fn avg_nodes_within_distance_view_scratch(
    view: &GraphView,
    k: usize,
    scratch: &mut AlgoScratch,
) -> f64 {
    let adj = view.undirected();
    let n = adj.order();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0usize;
    for s in 0..n {
        bfs_distances_into(adj, s, &mut scratch.dist, &mut scratch.queue);
        total += scratch
            .dist
            .iter()
            .enumerate()
            .filter(|&(v, &d)| v != s && d != usize::MAX && d <= k)
            .count();
    }
    total as f64 / n as f64
}

/// Weakly-connected components: returns a component id per node.
pub fn weak_components<N, E>(g: &DiGraph<N, E>) -> Vec<usize> {
    let adj = g.undirected_adjacency();
    let mut comp = vec![usize::MAX; adj.len()];
    let mut next = 0;
    for s in 0..adj.len() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = next;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of weakly-connected components.
pub fn component_count<N, E>(g: &DiGraph<N, E>) -> usize {
    weak_components(g).into_iter().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph a-b-c-d plus isolated e.
    fn path_graph() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[3], ());
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph();
        let adj = g.undirected_adjacency();
        let d = bfs_distances(&adj, 0);
        assert_eq!(&d[..4], &[0, 1, 2, 3]);
        assert_eq!(d[4], usize::MAX);
    }

    #[test]
    fn diameter_of_path_is_three() {
        assert_eq!(diameter(&path_graph()), 3);
    }

    #[test]
    fn diameter_ignores_direction() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        // a -> b <- c : directed, but undirected diameter is 2.
        g.add_edge(a, b, ());
        g.add_edge(c, b, ());
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn empty_and_singleton_diameter() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(diameter(&g), 0);
        let mut g: DiGraph<(), ()> = DiGraph::new();
        g.add_node(());
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    fn eccentricities_per_node() {
        let ecc = eccentricities(&path_graph());
        assert_eq!(ecc, vec![3, 2, 2, 3, 0]);
    }

    #[test]
    fn nodes_within_distance() {
        let g = path_graph();
        // k=1: degrees (1,2,2,1,0) → avg 6/5.
        assert!((avg_nodes_within_distance(&g, 1) - 1.2).abs() < 1e-12);
        // k=2: a:2, b:3, c:3, d:2, e:0 → 10/5 = 2.
        assert!((avg_nodes_within_distance(&g, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn components() {
        let g = path_graph();
        let comp = weak_components(&g);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn empty_graph_component_count() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(component_count(&g), 0);
    }
}
