//! Reusable scratch buffers for the algorithm suite.
//!
//! The `*_scratch` entry points in the sibling modules thread an
//! [`AlgoScratch`] through every traversal, so a long-lived caller (the
//! feature extractor classifying thousands of conversations) performs no
//! steady-state heap allocation: buffers grow to the largest graph seen
//! and are reused from then on. Results are bit-identical to the
//! allocating one-shot entry points — the scratch variants run the same
//! loops over the same buffers in the same order; only the buffers'
//! provenance differs.

use std::collections::VecDeque;

/// Scratch space shared by the scratch-taking algorithm variants.
///
/// One instance serves every algorithm; the fields are partitioned by
/// phase (BFS, Brandes, PageRank, max-flow) and a traversal never runs
/// concurrently with another on the same scratch, so sharing the BFS
/// queue between plain BFS and Edmonds–Karp is safe.
#[derive(Debug, Default)]
pub struct AlgoScratch {
    /// BFS distances (`usize::MAX` = unreached).
    pub(crate) dist: Vec<usize>,
    /// BFS / Edmonds–Karp work queue.
    pub(crate) queue: VecDeque<usize>,
    /// Brandes visitation order.
    pub(crate) order: Vec<usize>,
    /// Brandes shortest-path predecessor lists. Rows keep their capacity
    /// across sources and calls — the Vec-pool that makes the fused
    /// betweenness/load pass allocation-free in steady state.
    pub(crate) preds: Vec<Vec<usize>>,
    /// Brandes path counts.
    pub(crate) sigma: Vec<f64>,
    /// Brandes dependency accumulator.
    pub(crate) delta: Vec<f64>,
    /// Load back-propagation units.
    pub(crate) between: Vec<f64>,
    /// Primary per-node output buffer (betweenness).
    pub(crate) values_a: Vec<f64>,
    /// Secondary per-node output buffer (load).
    pub(crate) values_b: Vec<f64>,
    /// PageRank double buffers, swapped each power iteration.
    pub(crate) rank: Vec<f64>,
    pub(crate) rank_next: Vec<f64>,
    /// Vertex-split residual-graph rows for unit-capacity max-flow.
    /// Rows keep their capacity across pairs and calls.
    pub(crate) flow: Vec<Vec<(usize, i32, usize)>>,
    /// Max-flow BFS parents: `(predecessor, edge index)`.
    pub(crate) parent: Vec<Option<(usize, usize)>>,
    /// Sampled node pairs for average connectivity.
    pub(crate) pairs: Vec<(usize, usize)>,
}

impl AlgoScratch {
    /// A fresh scratch with empty buffers; the first use sizes them.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{
        centrality, clustering, connectivity, mean, pagerank, paths,
    };
    use crate::view::GraphView;
    use crate::DiGraph;

    fn star(leaves: usize) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let c = g.add_node(());
        for _ in 0..leaves {
            let leaf = g.add_node(());
            g.add_edge(c, leaf, ());
        }
        g
    }

    fn bowtie() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(n[a], n[b], ());
        }
        g
    }

    /// Every scratch variant must agree bit-for-bit with its allocating
    /// counterpart, including when one scratch is reused across graphs
    /// of different sizes (stale buffer contents must not leak).
    #[test]
    fn scratch_variants_bit_identical_across_reuse() {
        let graphs = [star(6), bowtie(), star(1), DiGraph::<(), ()>::new()];
        let mut scratch = AlgoScratch::new();
        for g in &graphs {
            let view = GraphView::of(g);
            assert_eq!(
                paths::diameter_view_scratch(&view, &mut scratch),
                paths::diameter_view(&view),
            );
            assert_eq!(
                paths::avg_nodes_within_distance_view_scratch(&view, 2, &mut scratch)
                    .to_bits(),
                paths::avg_nodes_within_distance_view(&view, 2).to_bits(),
            );
            assert_eq!(
                centrality::closeness_centrality_mean_scratch(&view, &mut scratch).to_bits(),
                mean(&centrality::closeness_centrality_view(&view)).to_bits(),
            );
            let (b, l) = centrality::betweenness_and_load_means_scratch(&view, &mut scratch);
            let (bv, lv) = centrality::betweenness_and_load_view(&view);
            assert_eq!(b.to_bits(), mean(&bv).to_bits());
            assert_eq!(l.to_bits(), mean(&lv).to_bits());
            assert_eq!(
                connectivity::average_node_connectivity_view_scratch(&view, &mut scratch)
                    .to_bits(),
                connectivity::average_node_connectivity_view(&view).to_bits(),
            );
            assert_eq!(
                clustering::clustering_coefficient_mean_view(&view).to_bits(),
                mean(&clustering::clustering_coefficients_view(&view)).to_bits(),
            );
            assert_eq!(
                clustering::neighbor_degree_mean_view(&view).to_bits(),
                mean(&clustering::neighbor_degrees_view(&view)).to_bits(),
            );
            let (d, t, i) = (
                pagerank::DEFAULT_DAMPING,
                pagerank::DEFAULT_TOL,
                pagerank::DEFAULT_MAX_ITER,
            );
            assert_eq!(
                pagerank::pagerank_mean_scratch(&view, d, t, i, &mut scratch).to_bits(),
                mean(&pagerank::pagerank_view(&view, d, t, i)).to_bits(),
            );
        }
    }

    /// The pair-sampling path (n > limit) must match the allocating
    /// `step_by` sampler.
    #[test]
    fn sampled_connectivity_matches_allocating_sampler() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..12).map(|_| g.add_node(())).collect();
        for i in 0..12 {
            g.add_edge(n[i], n[(i + 1) % 12], ());
        }
        let adj = g.undirected_adjacency();
        let mut scratch = AlgoScratch::new();
        for s in 0..12 {
            for t in (s + 1)..12 {
                assert_eq!(
                    connectivity::local_node_connectivity_scratch(&adj, s, t, &mut scratch),
                    connectivity::local_node_connectivity(&adj, s, t),
                );
            }
        }
    }
}
