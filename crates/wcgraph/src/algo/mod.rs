//! Graph algorithms over [`DiGraph`](crate::DiGraph).
//!
//! Each submodule documents the precise definition implemented; where the
//! paper's feature description is ambiguous we follow the NetworkX function
//! of the same name, since the paper's feature set was computed with it
//! (the paper cites scikit-learn/NetworkX-style tooling).

pub mod centrality;
pub mod clustering;
pub mod components;
pub mod connectivity;
pub mod pagerank;
pub mod paths;
pub mod reciprocity;
pub mod scratch;

pub use scratch::AlgoScratch;

/// Mean of a slice, or 0.0 when empty. Public so downstream feature
/// extractors averaging per-node vectors share the exact float semantics
/// of the `avg_*` wrappers in this module tree.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}
