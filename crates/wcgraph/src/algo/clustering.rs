//! Clustering coefficient and neighbor-degree measures.

use crate::algo::mean;
use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// Per-node clustering coefficient on the undirected simple view:
/// `2·T(v) / (k(v)·(k(v)−1))` where `T(v)` is the number of triangles
/// through `v` and `k(v)` its simple degree. Nodes with degree < 2 get 0.
pub fn clustering_coefficients<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    clustering_coefficients_in(&g.undirected_adjacency())
}

/// [`clustering_coefficients`] over a prebuilt view.
pub fn clustering_coefficients_view(view: &GraphView) -> Vec<f64> {
    clustering_coefficients_in(view.undirected())
}

fn clustering_coefficients_in<A: Adjacency + ?Sized>(adj: &A) -> Vec<f64> {
    (0..adj.order()).map(|w| node_clustering(adj, w)).collect()
}

/// Clustering coefficient of a single node.
fn node_clustering<A: Adjacency + ?Sized>(adj: &A, w: usize) -> f64 {
    let nbrs = adj.neighbors(w);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut triangles = 0usize;
    for (i, &u) in nbrs.iter().enumerate() {
        for &v in &nbrs[i + 1..] {
            if adj.neighbors(u).binary_search(&v).is_ok() {
                triangles += 1;
            }
        }
    }
    2.0 * triangles as f64 / (k * (k - 1)) as f64
}

/// Mean clustering coefficient over a prebuilt view, computed as a
/// running sum in node order — bit-identical to
/// `mean(&clustering_coefficients_view(view))`, no per-node vector.
pub fn clustering_coefficient_mean_view(view: &GraphView) -> f64 {
    let adj = view.undirected();
    let n = adj.order();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|w| node_clustering(adj, w)).sum::<f64>() / n as f64
}

/// Average clustering coefficient (feature f21).
pub fn avg_clustering_coefficient<N, E>(g: &DiGraph<N, E>) -> f64 {
    mean(&clustering_coefficients(g))
}

/// Per-node average neighbor degree on the undirected simple view: the
/// mean simple degree of each node's neighbors. Isolated nodes get 0.
pub fn neighbor_degrees<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    neighbor_degrees_in(&g.undirected_adjacency())
}

/// [`neighbor_degrees`] over a prebuilt view.
pub fn neighbor_degrees_view(view: &GraphView) -> Vec<f64> {
    neighbor_degrees_in(view.undirected())
}

fn neighbor_degrees_in<A: Adjacency + ?Sized>(adj: &A) -> Vec<f64> {
    (0..adj.order()).map(|w| node_neighbor_degree(adj, w)).collect()
}

/// Average neighbor degree of a single node.
fn node_neighbor_degree<A: Adjacency + ?Sized>(adj: &A, w: usize) -> f64 {
    let nbrs = adj.neighbors(w);
    if nbrs.is_empty() {
        0.0
    } else {
        nbrs.iter().map(|&u| adj.neighbors(u).len() as f64).sum::<f64>() / nbrs.len() as f64
    }
}

/// Mean neighbor degree over a prebuilt view, as a running sum in node
/// order — bit-identical to `mean(&neighbor_degrees_view(view))`.
pub fn neighbor_degree_mean_view(view: &GraphView) -> f64 {
    let adj = view.undirected();
    let n = adj.order();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|w| node_neighbor_degree(adj, w)).sum::<f64>() / n as f64
}

/// Average neighbor degree over all nodes (feature f22).
pub fn avg_neighbor_degree<N, E>(g: &DiGraph<N, E>) -> f64 {
    mean(&neighbor_degrees(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn triangle_plus_tail() -> DiGraph<(), ()> {
        // Triangle 0-1-2 with a tail 2-3.
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        g.add_edge(n[2], n[3], ());
        g
    }

    #[test]
    fn triangle_nodes_fully_clustered() {
        let cc = clustering_coefficients(&triangle_plus_tail());
        assert!((cc[0] - 1.0).abs() < 1e-12);
        assert!((cc[1] - 1.0).abs() < 1e-12);
        // Node 2 has degree 3, one triangle: 2*1/(3*2) = 1/3.
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[3], 0.0); // degree 1
    }

    #[test]
    fn star_has_zero_clustering() {
        let mut g = DiGraph::new();
        let c = g.add_node(());
        for _ in 0..3 {
            let l = g.add_node(());
            g.add_edge(c, l, ());
        }
        assert_eq!(avg_clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn parallel_edges_do_not_inflate_triangles() {
        let mut g = triangle_plus_tail();
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(0), ());
        let cc = clustering_coefficients(&g);
        assert!((cc[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_degree_path() {
        // Path 0-1-2: degrees 1,2,1. Neighbor degrees: [2, 1, 2].
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        let nd = neighbor_degrees(&g);
        assert_eq!(nd, vec![2.0, 1.0, 2.0]);
        assert!((avg_neighbor_degree(&g) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_neighbor_degree_zero() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        g.add_node(());
        assert_eq!(neighbor_degrees(&g), vec![0.0]);
    }

    #[test]
    fn empty_graph_means_are_zero() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(avg_clustering_coefficient(&g), 0.0);
        assert_eq!(avg_neighbor_degree(&g), 0.0);
    }
}
