//! Edge reciprocity: the likelihood of nodes to be mutually linked.

use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// Reciprocity of the directed simple graph: the fraction of directed
/// (simple) edges `u → v` for which the reverse edge `v → u` also exists.
/// Self-loops and parallel edges are ignored. Returns 0 for graphs without
/// edges.
pub fn reciprocity<N, E>(g: &DiGraph<N, E>) -> f64 {
    let (succ, _) = g.directed_adjacency();
    reciprocity_in(&succ)
}

/// [`reciprocity`] over a prebuilt view.
pub fn reciprocity_view(view: &GraphView) -> f64 {
    reciprocity_in(view.successors())
}

fn reciprocity_in<A: Adjacency + ?Sized>(succ: &A) -> f64 {
    let mut total = 0usize;
    let mut reciprocated = 0usize;
    for u in 0..succ.order() {
        for &v in succ.neighbors(u) {
            total += 1;
            if succ.neighbors(v).binary_search(&u).is_ok() {
                reciprocated += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        reciprocated as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_reciprocated() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!((reciprocity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn none_reciprocated() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert_eq!(reciprocity(&g), 0.0);
    }

    #[test]
    fn half_reciprocated() {
        // a<->b, a->c: 3 simple directed edges, 2 reciprocated.
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(a, c, ());
        assert!((reciprocity(&g) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!((reciprocity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(reciprocity(&g), 0.0);
    }
}
