//! Degree, closeness, betweenness, and load centrality.
//!
//! Closeness, betweenness, and load operate on the undirected simple view
//! of the graph (see [`DiGraph::undirected_adjacency`]); degree centrality
//! counts parallel edges, matching NetworkX's behaviour on multigraphs.
//!
//! Each metric has a `*_view` variant taking a prebuilt [`GraphView`] so a
//! full feature extraction materializes adjacency once instead of per
//! metric; the graph-taking entry points are thin wrappers. Betweenness and
//! load share their BFS phase — [`betweenness_and_load_view`] runs one
//! Brandes pass per source and back-propagates both measures, which is how
//! the feature extractor obtains f18 and f19 for the price of one
//! traversal.

use crate::algo::mean;
use crate::algo::paths::{bfs_distances, bfs_distances_into};
use crate::algo::AlgoScratch;
use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// Per-node degree centrality: `degree / (n - 1)`, parallel edges counted.
pub fn degree_centrality<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    let n = g.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    let denom = (n - 1) as f64;
    g.node_ids().map(|v| g.degree(v) as f64 / denom).collect()
}

/// [`degree_centrality`] over a prebuilt view.
pub fn degree_centrality_view(view: &GraphView) -> Vec<f64> {
    let n = view.order();
    if n <= 1 {
        return vec![0.0; n];
    }
    let denom = (n - 1) as f64;
    view.degrees().iter().map(|&d| d as f64 / denom).collect()
}

/// Average degree centrality over all nodes (feature f16).
///
/// Computed as a running sum in node order — bit-identical to
/// `mean(&degree_centrality(g))` (same terms, same addition order)
/// without materializing the per-node vector.
pub fn avg_degree_centrality<N, E>(g: &DiGraph<N, E>) -> f64 {
    let n = g.node_count();
    if n <= 1 {
        return 0.0;
    }
    let denom = (n - 1) as f64;
    g.node_ids().map(|v| g.degree(v) as f64 / denom).sum::<f64>() / n as f64
}

/// Per-node closeness centrality with the Wasserman–Faust improvement for
/// disconnected graphs: `((r-1)/Σd) · ((r-1)/(n-1))` where `r` is the size
/// of the node's reachable set.
pub fn closeness_centrality<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    closeness_centrality_in(&g.undirected_adjacency())
}

/// [`closeness_centrality`] over a prebuilt view.
pub fn closeness_centrality_view(view: &GraphView) -> Vec<f64> {
    closeness_centrality_in(view.undirected())
}

fn closeness_centrality_in<A: Adjacency + ?Sized>(adj: &A) -> Vec<f64> {
    let n = adj.order();
    (0..n)
        .map(|u| {
            let dist = bfs_distances(adj, u);
            closeness_of(&dist, u, n)
        })
        .collect()
}

/// Wasserman–Faust closeness of node `u` from its BFS distance row.
fn closeness_of(dist: &[usize], u: usize, n: usize) -> f64 {
    let mut reachable = 0usize;
    let mut total = 0usize;
    for (v, &d) in dist.iter().enumerate() {
        if v != u && d != usize::MAX {
            reachable += 1;
            total += d;
        }
    }
    if total == 0 || n <= 1 {
        0.0
    } else {
        (reachable as f64 / total as f64) * (reachable as f64 / (n - 1) as f64)
    }
}

/// Mean closeness centrality over a prebuilt view, reusing `scratch`'s
/// BFS buffers. Bit-identical to
/// `mean(&closeness_centrality_view(view))`: same per-node values summed
/// in the same order.
pub fn closeness_centrality_mean_scratch(view: &GraphView, scratch: &mut AlgoScratch) -> f64 {
    let adj = view.undirected();
    let n = adj.order();
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for u in 0..n {
        bfs_distances_into(adj, u, &mut scratch.dist, &mut scratch.queue);
        sum += closeness_of(&scratch.dist, u, n);
    }
    sum / n as f64
}

/// Average closeness centrality (feature f17).
pub fn avg_closeness_centrality<N, E>(g: &DiGraph<N, E>) -> f64 {
    mean(&closeness_centrality(g))
}

/// Per-node betweenness centrality via Brandes' algorithm on the undirected
/// simple view, normalized by `(n-1)(n-2)` (both traversal directions are
/// accumulated, which folds in the standard factor 2).
pub fn betweenness_centrality<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    betweenness_and_load_in(&g.undirected_adjacency()).0
}

/// Per-node load centrality: like betweenness, but when flow is pushed back
/// from a node toward the source it is split *equally* among the node's
/// shortest-path predecessors instead of proportionally to path counts
/// (NetworkX `load_centrality` / Newman's measure). Normalized by
/// `(n-1)(n-2)`.
pub fn load_centrality<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    betweenness_and_load_in(&g.undirected_adjacency()).1
}

/// Betweenness and load centrality from a single Brandes pass per source.
///
/// The BFS phase (shortest-path DAG, path counts, visitation order) is
/// common to both measures; only the back-propagation differs. Results are
/// bit-identical to running [`betweenness_centrality`] and
/// [`load_centrality`] separately.
pub fn betweenness_and_load_view(view: &GraphView) -> (Vec<f64>, Vec<f64>) {
    betweenness_and_load_in(view.undirected())
}

fn betweenness_and_load_in<A: Adjacency + ?Sized>(adj: &A) -> (Vec<f64>, Vec<f64>) {
    let mut scratch = AlgoScratch::new();
    betweenness_and_load_into(adj, &mut scratch);
    (std::mem::take(&mut scratch.values_a), std::mem::take(&mut scratch.values_b))
}

/// Mean betweenness and load over a prebuilt view, reusing `scratch`.
/// Returns `(mean betweenness, mean load)` — the f18/f19 pair — without
/// allocating once the scratch buffers have grown to the graph's order.
pub fn betweenness_and_load_means_scratch(
    view: &GraphView,
    scratch: &mut AlgoScratch,
) -> (f64, f64) {
    betweenness_and_load_into(view.undirected(), scratch);
    (mean(&scratch.values_a), mean(&scratch.values_b))
}

/// The fused Brandes pass over caller-owned buffers: betweenness lands in
/// `scratch.values_a`, load in `scratch.values_b` (both sized to the
/// graph's order). Predecessor rows keep their capacity across calls.
fn betweenness_and_load_into<A: Adjacency + ?Sized>(adj: &A, scratch: &mut AlgoScratch) {
    let n = adj.order();
    let AlgoScratch {
        dist, queue, order, preds, sigma, delta, between, values_a, values_b, ..
    } = scratch;
    values_a.clear();
    values_a.resize(n, 0.0);
    values_b.clear();
    values_b.resize(n, 0.0);
    let bc = values_a;
    let lc = values_b;
    // Per-source scratch, sized once and reset between sources.
    order.clear();
    if preds.len() < n {
        preds.resize_with(n, Vec::new);
    }
    let preds = &mut preds[..n];
    sigma.clear();
    sigma.resize(n, 0.0);
    dist.clear();
    dist.resize(n, usize::MAX);
    delta.clear();
    delta.resize(n, 0.0);
    between.clear();
    between.resize(n, 0.0);
    queue.clear();
    for s in 0..n {
        // Brandes: single-source shortest paths with path counts.
        order.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.fill(0.0);
        dist.fill(usize::MAX);
        sigma[s] = 1.0;
        dist[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in adj.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
                if dist[v] == dist[u] + 1 {
                    sigma[v] += sigma[u];
                    preds[v].push(u);
                }
            }
        }
        // Betweenness back-propagation: dependency accumulation in reverse
        // visitation order, split proportionally to path counts.
        delta.fill(0.0);
        for &w in order.iter().rev() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
        // Load back-propagation: each reachable node (except s) injects one
        // unit; push everything back toward the source, splitting equally
        // among predecessors.
        between.fill(1.0);
        for &v in order.iter().rev() {
            if preds[v].is_empty() {
                continue;
            }
            let share = between[v] / preds[v].len() as f64;
            for &p in &preds[v] {
                between[p] += share;
            }
        }
        for (v, &b) in between.iter().enumerate() {
            if v != s && dist[v] != usize::MAX {
                lc[v] += b - 1.0;
            }
        }
    }
    if n > 2 {
        let scale = 1.0 / ((n - 1) as f64 * (n - 2) as f64);
        for b in bc.iter_mut() {
            *b *= scale;
        }
        for l in lc.iter_mut() {
            *l *= scale;
        }
    }
}

/// Average betweenness centrality (feature f18).
pub fn avg_betweenness_centrality<N, E>(g: &DiGraph<N, E>) -> f64 {
    mean(&betweenness_centrality(g))
}

/// Average load centrality (feature f19).
pub fn avg_load_centrality<N, E>(g: &DiGraph<N, E>) -> f64 {
    mean(&load_centrality(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star graph: center 0 connected to 1..=4.
    fn star() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let c = g.add_node(());
        for _ in 0..4 {
            let leaf = g.add_node(());
            g.add_edge(c, leaf, ());
        }
        g
    }

    /// Path graph 0-1-2.
    fn path3() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g
    }

    #[test]
    fn degree_centrality_star() {
        let dc = degree_centrality(&star());
        assert!((dc[0] - 1.0).abs() < 1e-12); // 4/(5-1)
        for &v in &dc[1..] {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_centrality_counts_parallel_edges() {
        let mut g = path3();
        g.add_edge(crate::NodeId(0), crate::NodeId(1), ());
        let dc = degree_centrality(&g);
        assert!((dc[0] - 1.0).abs() < 1e-12); // degree 2 / (3-1)
    }

    #[test]
    fn closeness_path3() {
        // NetworkX: [2/3, 1, 2/3].
        let cc = closeness_centrality(&path3());
        assert!((cc[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cc[1] - 1.0).abs() < 1e-12);
        assert!((cc[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_disconnected_wf() {
        // Path 0-1-2 plus isolated node 3. NetworkX wf_improved values:
        // node1: (2/2)*(2/3) = 2/3; node0: (2/3)*(2/3) = 4/9; node3: 0.
        let mut g = path3();
        g.add_node(());
        let cc = closeness_centrality(&g);
        assert!((cc[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((cc[0] - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(cc[3], 0.0);
    }

    #[test]
    fn betweenness_path3() {
        // NetworkX normalized undirected: middle node = 1.0, ends 0.
        let bc = betweenness_centrality(&path3());
        assert!((bc[1] - 1.0).abs() < 1e-12);
        assert!(bc[0].abs() < 1e-12 && bc[2].abs() < 1e-12);
    }

    #[test]
    fn betweenness_star_center() {
        // Star n=5: center normalized betweenness = 1.0, leaves 0.
        let bc = betweenness_centrality(&star());
        assert!((bc[0] - 1.0).abs() < 1e-12);
        for &v in &bc[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn betweenness_cycle4_splits_paths() {
        // Cycle 0-1-2-3-0: each node lies on exactly one of the two
        // shortest paths between its two non-adjacent neighbors' pair.
        // NetworkX normalized: 1/6 each... actually each node: 0.1667.
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], ());
        }
        let bc = betweenness_centrality(&g);
        for &v in &bc {
            assert!((v - 1.0 / 6.0).abs() < 1e-9, "got {v}");
        }
    }

    #[test]
    fn load_equals_betweenness_on_trees() {
        // On trees there is a unique shortest path, so equal and
        // proportional splitting coincide.
        let g = star();
        let bc = betweenness_centrality(&g);
        let lc = load_centrality(&g);
        for (b, l) in bc.iter().zip(&lc) {
            assert!((b - l).abs() < 1e-9);
        }
    }

    #[test]
    fn load_path3_middle() {
        let lc = load_centrality(&path3());
        assert!((lc[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_graphs_do_not_blow_up() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(betweenness_centrality(&g).is_empty());
        assert_eq!(avg_closeness_centrality(&g), 0.0);
        let mut g1: DiGraph<(), ()> = DiGraph::new();
        g1.add_node(());
        assert_eq!(avg_degree_centrality(&g1), 0.0);
        assert_eq!(avg_load_centrality(&g1), 0.0);
        let mut g2 = DiGraph::new();
        let a = g2.add_node(());
        let b = g2.add_node(());
        g2.add_edge(a, b, ());
        // n=2: betweenness/load undefined scale; must be finite zeros.
        assert!(betweenness_centrality(&g2).iter().all(|v| v.is_finite()));
        assert!(load_centrality(&g2).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn averages_are_means() {
        let g = star();
        let bc = betweenness_centrality(&g);
        let avg: f64 = bc.iter().sum::<f64>() / bc.len() as f64;
        assert!((avg_betweenness_centrality(&g) - avg).abs() < 1e-12);
    }

    #[test]
    fn view_variants_are_bit_identical() {
        for g in [star(), path3()] {
            let view = GraphView::of(&g);
            let (bc, lc) = betweenness_and_load_view(&view);
            assert_eq!(bc, betweenness_centrality(&g));
            assert_eq!(lc, load_centrality(&g));
            assert_eq!(closeness_centrality_view(&view), closeness_centrality(&g));
            assert_eq!(degree_centrality_view(&view), degree_centrality(&g));
        }
    }
}
