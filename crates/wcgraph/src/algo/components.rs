//! Strongly connected components (Tarjan) and degree assortativity.

use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// Strongly connected components via Tarjan's algorithm (iterative, so
/// deep graphs cannot overflow the stack). Returns a component id per
/// node; ids are assigned in reverse topological order of the condensation
/// (a component's id is ≥ the ids of components it can reach).
pub fn strongly_connected_components<N, E>(g: &DiGraph<N, E>) -> Vec<usize> {
    let (succ, _) = g.directed_adjacency();
    strongly_connected_components_in(&succ)
}

/// [`strongly_connected_components`] over a prebuilt view.
pub fn strongly_connected_components_view(view: &GraphView) -> Vec<usize> {
    strongly_connected_components_in(view.successors())
}

fn strongly_connected_components_in<A: Adjacency + ?Sized>(succ: &A) -> Vec<usize> {
    let n = succ.order();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            if let Some(&w) = succ.neighbors(v).get(*next) {
                *next += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Number of strongly connected components.
pub fn scc_count<N, E>(g: &DiGraph<N, E>) -> usize {
    strongly_connected_components(g).into_iter().max().map_or(0, |m| m + 1)
}

/// Degree assortativity coefficient on the undirected simple view: the
/// Pearson correlation of the degrees at either end of each edge
/// (Newman 2002). Ranges in [-1, 1]; star graphs are strongly
/// disassortative, regular graphs undefined (returns 0).
pub fn degree_assortativity<N, E>(g: &DiGraph<N, E>) -> f64 {
    degree_assortativity_in(&g.undirected_adjacency())
}

/// [`degree_assortativity`] over a prebuilt view.
pub fn degree_assortativity_view(view: &GraphView) -> f64 {
    degree_assortativity_in(view.undirected())
}

fn degree_assortativity_in<A: Adjacency + ?Sized>(adj: &A) -> f64 {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for u in 0..adj.order() {
        for &v in adj.neighbors(u) {
            // Each undirected edge contributes both orientations, which
            // symmetrizes the correlation.
            xs.push(adj.neighbors(u).len() as f64);
            ys.push(adj.neighbors(v).len() as f64);
        }
    }
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Graph radius: the minimum eccentricity over non-isolated nodes
/// (0 for empty or edgeless graphs).
pub fn radius<N, E>(g: &DiGraph<N, E>) -> usize {
    crate::algo::paths::eccentricities(g)
        .into_iter()
        .zip(g.node_ids())
        .filter(|&(_, v)| g.degree(v) > 0)
        .map(|(e, _)| e)
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn cycle(n: usize) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n], ());
        }
        g
    }

    #[test]
    fn cycle_is_one_scc() {
        assert_eq!(scc_count(&cycle(5)), 1);
        let comp = strongly_connected_components(&cycle(5));
        assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn dag_has_one_scc_per_node() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        assert_eq!(scc_count(&g), 3);
        let comp = strongly_connected_components(&g);
        // Reverse-topological ids: sinks get the smallest ids.
        assert!(comp[2] < comp[1] && comp[1] < comp[0]);
    }

    #[test]
    fn two_cycles_bridged_one_way() {
        // cycle {0,1} -> cycle {2,3}: two SCCs.
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[0], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[2], ());
        g.add_edge(ids[1], ids[2], ());
        let comp = strongly_connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(scc_count(&g), 2);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..50_000).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        assert_eq!(scc_count(&g), 50_000);
    }

    #[test]
    fn star_is_disassortative() {
        let mut g = DiGraph::new();
        let c = g.add_node(());
        for _ in 0..6 {
            let l = g.add_node(());
            g.add_edge(c, l, ());
        }
        assert!(degree_assortativity(&g) < -0.9, "{}", degree_assortativity(&g));
    }

    #[test]
    fn regular_graph_assortativity_is_zero() {
        assert_eq!(degree_assortativity(&cycle(6)), 0.0);
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn radius_of_path() {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g.add_node(()); // isolated node must not zero the radius
        assert_eq!(radius(&g), 2); // center of a 5-path
        assert_eq!(crate::algo::paths::diameter(&g), 4);
    }

    #[test]
    fn self_loops_do_not_break_scc() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(0), ());
        assert_eq!(scc_count(&g), 1);
    }
}
