//! PageRank by power iteration on the directed simple graph.

use crate::algo::mean;
use crate::algo::AlgoScratch;
use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// Default damping factor.
pub const DEFAULT_DAMPING: f64 = 0.85;
/// Default convergence tolerance (L1 change per iteration).
pub const DEFAULT_TOL: f64 = 1e-10;
/// Default iteration cap.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Per-node PageRank with damping `d`. Dangling nodes (no out-edges)
/// redistribute their rank uniformly. The result sums to 1 over all nodes.
pub fn pagerank<N, E>(g: &DiGraph<N, E>, damping: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let (succ, _) = g.directed_adjacency();
    pagerank_in(&succ, damping, tol, max_iter)
}

/// [`pagerank`] over a prebuilt view.
pub fn pagerank_view(view: &GraphView, damping: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    pagerank_in(view.successors(), damping, tol, max_iter)
}

fn pagerank_in<A: Adjacency + ?Sized>(
    succ: &A,
    damping: f64,
    tol: f64,
    max_iter: usize,
) -> Vec<f64> {
    let mut scratch = AlgoScratch::new();
    pagerank_into(succ, damping, tol, max_iter, &mut scratch);
    std::mem::take(&mut scratch.rank)
}

/// Mean PageRank over a prebuilt view, reusing `scratch`'s double
/// buffers. Bit-identical to `mean(&pagerank_view(...))`.
pub fn pagerank_mean_scratch(
    view: &GraphView,
    damping: f64,
    tol: f64,
    max_iter: usize,
    scratch: &mut AlgoScratch,
) -> f64 {
    pagerank_into(view.successors(), damping, tol, max_iter, scratch);
    mean(&scratch.rank)
}

/// Power iteration into `scratch.rank`, swapping the two rank buffers
/// each iteration instead of allocating a fresh `next` vector. The
/// per-iteration arithmetic (and therefore every bit of the result) is
/// unchanged from the allocating version.
fn pagerank_into<A: Adjacency + ?Sized>(
    succ: &A,
    damping: f64,
    tol: f64,
    max_iter: usize,
    scratch: &mut AlgoScratch,
) {
    let n = succ.order();
    let rank = &mut scratch.rank;
    let next = &mut scratch.rank_next;
    rank.clear();
    if n == 0 {
        return;
    }
    let uniform = 1.0 / n as f64;
    rank.resize(n, uniform);
    next.clear();
    next.resize(n, 0.0);
    for _ in 0..max_iter {
        let dangling_mass: f64 =
            (0..n).filter(|&v| succ.neighbors(v).is_empty()).map(|v| rank[v]).sum();
        let base = (1.0 - damping) * uniform + damping * dangling_mass * uniform;
        next.fill(base);
        for (v, r) in rank.iter().enumerate() {
            let out = succ.neighbors(v);
            if out.is_empty() {
                continue;
            }
            let share = damping * r / out.len() as f64;
            for &u in out {
                next[u] += share;
            }
        }
        let delta: f64 = rank.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(rank, next);
        if delta < tol {
            break;
        }
    }
}

/// PageRank with the default parameters.
pub fn pagerank_default<N, E>(g: &DiGraph<N, E>) -> Vec<f64> {
    pagerank(g, DEFAULT_DAMPING, DEFAULT_TOL, DEFAULT_MAX_ITER)
}

/// Average PageRank value (feature f25). Equal to `1/order` for any
/// non-empty graph by conservation, so this feature is an inverse-order
/// signal — we keep it for fidelity with the paper's feature list.
pub fn avg_pagerank<N, E>(g: &DiGraph<N, E>) -> f64 {
    mean(&pagerank_default(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        g.add_edge(n[3], n[0], ());
        // n4 dangling.
        let pr = pagerank_default(&g);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], ());
        }
        let pr = pagerank_default(&g);
        for &v in &pr {
            assert!((v - 0.25).abs() < 1e-8);
        }
    }

    #[test]
    fn sink_attracts_rank() {
        // 0 -> 2, 1 -> 2: node 2 should dominate.
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[2], ());
        g.add_edge(n[1], n[2], ());
        let pr = pagerank_default(&g);
        assert!(pr[2] > pr[0] && pr[2] > pr[1]);
    }

    #[test]
    fn known_value_two_node_chain() {
        // 0 -> 1, with 1 dangling. Solvable analytically; check against
        // NetworkX: pagerank ≈ [0.35087719, 0.64912281] for d=0.85.
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let pr = pagerank_default(&g);
        assert!((pr[0] - 0.350_877_19).abs() < 1e-6, "got {}", pr[0]);
        assert!((pr[1] - 0.649_122_81).abs() < 1e-6, "got {}", pr[1]);
    }

    #[test]
    fn avg_is_inverse_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        for _ in 0..8 {
            g.add_node(());
        }
        assert!((avg_pagerank(&g) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(pagerank_default(&g).is_empty());
        assert_eq!(avg_pagerank(&g), 0.0);
    }
}
