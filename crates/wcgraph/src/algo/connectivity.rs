//! Node connectivity (vertex-disjoint paths) and degree connectivity.

use crate::algo::AlgoScratch;
use crate::view::{Adjacency, GraphView};
use crate::DiGraph;

/// Local node connectivity between `s` and `t` on an undirected simple
/// adjacency: the maximum number of internally vertex-disjoint `s`–`t`
/// paths (equivalently, by Menger's theorem, the minimum vertex cut).
///
/// Computed as unit-capacity max-flow on the vertex-split digraph: every
/// node `v` becomes `v_in → v_out` with capacity 1 (except `s` and `t`),
/// every undirected edge `{u,v}` becomes `u_out → v_in` and `v_out → u_in`.
///
/// Adjacent `s`, `t` still yield finite values (the direct edge counts as
/// one disjoint path).
pub fn local_node_connectivity<A: Adjacency + ?Sized>(adj: &A, s: usize, t: usize) -> usize {
    local_node_connectivity_scratch(adj, s, t, &mut AlgoScratch::new())
}

/// [`local_node_connectivity`] reusing `scratch`'s residual-graph rows,
/// parent table, and BFS queue — no per-pair allocation once the rows
/// have grown to their working size.
pub fn local_node_connectivity_scratch<A: Adjacency + ?Sized>(
    adj: &A,
    s: usize,
    t: usize,
    scratch: &mut AlgoScratch,
) -> usize {
    assert_ne!(s, t, "local connectivity requires distinct endpoints");
    let n = adj.order();
    // Node v_in = 2v, v_out = 2v+1. Residual capacities in a hash-free
    // edge-list representation: (to, cap, reverse-index). Rows are
    // pooled in the scratch and rebuilt (capacity retained) per pair.
    if scratch.flow.len() < 2 * n {
        scratch.flow.resize_with(2 * n, Vec::new);
    }
    let graph = &mut scratch.flow[..2 * n];
    for row in graph.iter_mut() {
        row.clear();
    }
    let add = |g: &mut [Vec<(usize, i32, usize)>], u: usize, v: usize, cap: i32| {
        let ru = g[u].len();
        let rv = g[v].len();
        g[u].push((v, cap, rv));
        g[v].push((u, 0, ru));
    };
    for v in 0..n {
        let cap = if v == s || v == t { i32::MAX / 2 } else { 1 };
        add(graph, 2 * v, 2 * v + 1, cap);
    }
    for u in 0..n {
        for &v in adj.neighbors(u) {
            if u < v {
                add(graph, 2 * u + 1, 2 * v, 1);
                add(graph, 2 * v + 1, 2 * u, 1);
            }
        }
    }
    // Edmonds–Karp from s_out to t_in.
    let source = 2 * s + 1;
    let sink = 2 * t;
    let parent = &mut scratch.parent;
    let queue = &mut scratch.queue;
    let mut flow = 0usize;
    loop {
        parent.clear();
        parent.resize(2 * n, None);
        queue.clear();
        queue.push_back(source);
        parent[source] = Some((source, usize::MAX));
        while let Some(u) = queue.pop_front() {
            if u == sink {
                break;
            }
            for (i, &(v, cap, _)) in graph[u].iter().enumerate() {
                if cap > 0 && parent[v].is_none() {
                    parent[v] = Some((u, i));
                    queue.push_back(v);
                }
            }
        }
        if parent[sink].is_none() {
            break;
        }
        // Augment by 1 (unit capacities on all internal edges).
        let mut v = sink;
        while v != source {
            let (u, i) = parent[v].expect("path reconstructed");
            graph[u][i].1 -= 1;
            let rev = graph[u][i].2;
            graph[v][rev].1 += 1;
            v = u;
        }
        flow += 1;
        if flow > n {
            break; // safety: cannot exceed node count
        }
    }
    flow
}

/// Average node connectivity: the mean of local node connectivity over
/// node pairs (feature f20, Fig. 7's "average node connectivity").
///
/// For graphs with more than `sample_limit` nodes an exact all-pairs
/// computation is quadratic in pairs times a max-flow each; we then fall
/// back to a deterministic stride-sample of pairs, which preserves the
/// estimator's mean on these small-world conversation graphs.
pub fn average_node_connectivity<N, E>(g: &DiGraph<N, E>) -> f64 {
    average_node_connectivity_with_limit(g, 64)
}

/// See [`average_node_connectivity`]; `sample_limit` bounds the node count
/// above which pair sampling kicks in.
pub fn average_node_connectivity_with_limit<N, E>(g: &DiGraph<N, E>, sample_limit: usize) -> f64 {
    average_node_connectivity_in(&g.undirected_adjacency(), sample_limit)
}

/// [`average_node_connectivity`] over a prebuilt view.
pub fn average_node_connectivity_view(view: &GraphView) -> f64 {
    average_node_connectivity_in(view.undirected(), 64)
}

fn average_node_connectivity_in<A: Adjacency + ?Sized>(adj: &A, sample_limit: usize) -> f64 {
    average_node_connectivity_scratch_in(adj, sample_limit, &mut AlgoScratch::new())
}

/// [`average_node_connectivity_view`] reusing `scratch`'s pair list and
/// max-flow buffers.
pub fn average_node_connectivity_view_scratch(
    view: &GraphView,
    scratch: &mut AlgoScratch,
) -> f64 {
    average_node_connectivity_scratch_in(view.undirected(), 64, scratch)
}

fn average_node_connectivity_scratch_in<A: Adjacency + ?Sized>(
    adj: &A,
    sample_limit: usize,
    scratch: &mut AlgoScratch,
) -> f64 {
    let n = adj.order();
    if n < 2 {
        return 0.0;
    }
    scratch.pairs.clear();
    for s in 0..n {
        for t in (s + 1)..n {
            scratch.pairs.push((s, t));
        }
    }
    if n > sample_limit {
        let target = sample_limit * (sample_limit - 1) / 2;
        let stride = (scratch.pairs.len() / target).max(1);
        // In-place stride sample: keep indices 0, stride, 2·stride, …
        // exactly as `step_by(stride)` would.
        let mut w = 0usize;
        let mut r = 0usize;
        while r < scratch.pairs.len() {
            scratch.pairs[w] = scratch.pairs[r];
            w += 1;
            r += stride;
        }
        scratch.pairs.truncate(w);
    }
    let mut total = 0usize;
    for i in 0..scratch.pairs.len() {
        let (s, t) = scratch.pairs[i];
        total += local_node_connectivity_scratch(adj, s, t, scratch);
    }
    total as f64 / scratch.pairs.len() as f64
}

/// Average degree over non-isolated nodes (feature f23, "average degree
/// for connected nodes"). Parallel edges are counted, matching the degree
/// definition used elsewhere.
pub fn avg_degree_connectivity<N, E>(g: &DiGraph<N, E>) -> f64 {
    // Integer running sums — exactly the value the collected-vector
    // version produced, with no per-call allocation.
    let mut sum = 0usize;
    let mut connected = 0usize;
    for v in g.node_ids() {
        let d = g.degree(v);
        if d > 0 {
            sum += d;
            connected += 1;
        }
    }
    if connected == 0 {
        0.0
    } else {
        sum as f64 / connected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(nodes[i], nodes[j], ());
            }
        }
        g
    }

    #[test]
    fn path_connectivity_is_one() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        let adj = g.undirected_adjacency();
        assert_eq!(local_node_connectivity(&adj, 0, 2), 1);
    }

    #[test]
    fn complete_graph_connectivity() {
        let g = complete(5);
        let adj = g.undirected_adjacency();
        // K5: connectivity between any pair = 4 (direct edge + 3 via others).
        assert_eq!(local_node_connectivity(&adj, 0, 4), 4);
        assert!((average_node_connectivity(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_connectivity_is_two() {
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(n[i], n[(i + 1) % 5], ());
        }
        let adj = g.undirected_adjacency();
        assert_eq!(local_node_connectivity(&adj, 0, 2), 2);
        assert!((average_node_connectivity(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pair_connectivity_is_zero() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        g.add_node(());
        g.add_node(());
        let adj = g.undirected_adjacency();
        assert_eq!(local_node_connectivity(&adj, 0, 1), 0);
        assert_eq!(average_node_connectivity(&g), 0.0);
    }

    #[test]
    fn cut_vertex_limits_connectivity() {
        // Two triangles sharing node 2 (bowtie): connectivity(0, 4) = 1.
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            g.add_edge(n[a], n[b], ());
        }
        let adj = g.undirected_adjacency();
        assert_eq!(local_node_connectivity(&adj, 0, 4), 1);
        assert_eq!(local_node_connectivity(&adj, 0, 1), 2);
    }

    #[test]
    fn sampling_matches_exact_on_regular_graph() {
        let g = complete(10);
        let exact = average_node_connectivity_with_limit(&g, 1000);
        let sampled = average_node_connectivity_with_limit(&g, 4);
        assert!((exact - sampled).abs() < 1e-12); // all pairs identical in K10
    }

    #[test]
    fn degree_connectivity_ignores_isolated() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_node(()); // isolated
        g.add_edge(a, b, ());
        // Degrees: 1, 1, 0 → mean over connected = 1.
        assert!((avg_degree_connectivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_connectivity_empty() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(avg_degree_connectivity(&g), 0.0);
    }
}
