//! Shared analytics workspace.
//!
//! Every metric in [`crate::algo`] needs some flavour of adjacency —
//! undirected neighbor sets, successor lists, predecessor lists, degrees.
//! Historically each function privately re-materialized those (`Vec<Vec<_>>`
//! with a per-row sort and dedup), so a full 37-feature extraction rebuilt
//! the same adjacency close to a dozen times. A [`GraphView`] builds each
//! representation exactly once per extraction, in compact CSR form, and is
//! threaded through all algorithm modules. The buffers are reusable: calling
//! [`GraphView::load`] on a long-lived view recycles prior allocations, so a
//! detector scoring thousands of conversations performs near-zero steady
//! state allocation for adjacency.
//!
//! Neighbor ordering is identical to the legacy per-call materialization
//! (sorted ascending, deduplicated, self-loops excluded from the undirected
//! form), which keeps every floating-point reduction in `algo` bit-identical
//! whether it runs over a view or over ad-hoc lists.

use crate::digraph::DiGraph;

/// Read-only adjacency abstraction shared by ad-hoc `Vec<Vec<usize>>`
/// neighbor lists and the CSR rows of a [`GraphView`].
///
/// Implementations must present each node's neighbors sorted ascending and
/// deduplicated; algorithms rely on that for binary search and for stable
/// float summation order.
pub trait Adjacency {
    /// Number of nodes.
    fn order(&self) -> usize;
    /// Sorted, deduplicated neighbors of `u`.
    fn neighbors(&self, u: usize) -> &[usize];
}

impl Adjacency for [Vec<usize>] {
    fn order(&self) -> usize {
        self.len()
    }

    fn neighbors(&self, u: usize) -> &[usize] {
        &self[u]
    }
}

impl Adjacency for Vec<Vec<usize>> {
    fn order(&self) -> usize {
        self.len()
    }

    fn neighbors(&self, u: usize) -> &[usize] {
        &self[u]
    }
}

/// Compressed-sparse-row adjacency: one flat target array plus per-node
/// offsets. Rows are sorted ascending and deduplicated.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
}

impl Csr {
    /// Sorted, deduplicated neighbors of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Number of rows.
    pub fn order(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Rebuild rows from an unsorted `(src, dst)` pair list, reusing
    /// capacity. `pairs` is sorted and deduplicated in place; because the
    /// sort is row-major, the flat target array comes out per-row sorted —
    /// the same ordering the legacy `Vec<Vec<usize>>` builders produced.
    fn rebuild(&mut self, n: usize, pairs: &mut Vec<(u32, u32)>) {
        pairs.sort_unstable();
        pairs.dedup();
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(u, _) in pairs.iter() {
            self.offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.targets.clear();
        self.targets.extend(pairs.iter().map(|&(_, v)| v as usize));
    }
}

impl Adjacency for Csr {
    fn order(&self) -> usize {
        Csr::order(self)
    }

    fn neighbors(&self, u: usize) -> &[usize] {
        Csr::neighbors(self, u)
    }
}

/// All adjacency representations the analytics stack needs, built once per
/// extraction and shared across every metric.
#[derive(Debug, Clone, Default)]
pub struct GraphView {
    n: usize,
    /// Per-node total degree, counting parallel edges and self-loops twice,
    /// exactly like [`DiGraph::degree`].
    degree: Vec<usize>,
    /// Undirected simple adjacency, self-loops excluded
    /// (mirrors [`DiGraph::undirected_adjacency`]).
    und: Csr,
    /// Directed simple successors, self-loops excluded
    /// (mirrors [`DiGraph::directed_adjacency`]).
    succ: Csr,
    /// Directed simple predecessors, self-loops excluded.
    pred: Csr,
    /// Scratch pair list recycled across rebuilds.
    pairs: Vec<(u32, u32)>,
}

impl GraphView {
    /// An empty view; call [`GraphView::load`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a view of `g` in one pass over its edge list.
    pub fn of<N, E>(g: &DiGraph<N, E>) -> Self {
        let mut view = Self::new();
        view.load(g);
        view
    }

    /// (Re)populate the view from `g`, reusing prior allocations.
    pub fn load<N, E>(&mut self, g: &DiGraph<N, E>) {
        let n = g.node_count();
        assert!(
            u32::try_from(n).is_ok(),
            "GraphView supports at most u32::MAX nodes"
        );
        self.n = n;
        self.degree.clear();
        self.degree.extend(g.node_ids().map(|v| g.degree(v)));

        self.pairs.clear();
        for (_, src, dst, _) in g.edges() {
            if src != dst {
                self.pairs.push((src.0 as u32, dst.0 as u32));
            }
        }
        self.succ.rebuild(n, &mut self.pairs);

        self.pairs.clear();
        for (_, src, dst, _) in g.edges() {
            if src != dst {
                self.pairs.push((dst.0 as u32, src.0 as u32));
            }
        }
        self.pred.rebuild(n, &mut self.pairs);

        self.pairs.clear();
        for (_, src, dst, _) in g.edges() {
            if src != dst {
                self.pairs.push((src.0 as u32, dst.0 as u32));
                self.pairs.push((dst.0 as u32, src.0 as u32));
            }
        }
        self.und.rebuild(n, &mut self.pairs);
    }

    /// Number of nodes.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Total degree of `u` (parallel edges counted, self-loops twice).
    pub fn degree(&self, u: usize) -> usize {
        self.degree[u]
    }

    /// Per-node degrees, indexed by node id.
    pub fn degrees(&self) -> &[usize] {
        &self.degree
    }

    /// Undirected simple adjacency (self-loops excluded).
    pub fn undirected(&self) -> &Csr {
        &self.und
    }

    /// Directed simple successor adjacency.
    pub fn successors(&self) -> &Csr {
        &self.succ
    }

    /// Directed simple predecessor adjacency.
    pub fn predecessors(&self) -> &Csr {
        &self.pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<(), ()> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for &(s, d) in &[(0, 1), (1, 0), (0, 2), (2, 3), (3, 3), (0, 1), (4, 0)] {
            g.add_edge(ids[s], ids[d], ());
        }
        g
    }

    #[test]
    fn view_matches_legacy_adjacency() {
        let g = sample();
        let view = GraphView::of(&g);
        let und = g.undirected_adjacency();
        let (succ, pred) = g.directed_adjacency();
        for u in 0..g.node_count() {
            assert_eq!(view.undirected().neighbors(u), und[u].as_slice(), "und {u}");
            assert_eq!(view.successors().neighbors(u), succ[u].as_slice(), "succ {u}");
            assert_eq!(view.predecessors().neighbors(u), pred[u].as_slice(), "pred {u}");
            assert_eq!(view.degree(u), g.degree(crate::NodeId(u)), "deg {u}");
        }
    }

    #[test]
    fn load_reuses_buffers_and_handles_empty() {
        let mut view = GraphView::new();
        view.load(&DiGraph::<(), ()>::new());
        assert_eq!(view.order(), 0);
        let g = sample();
        view.load(&g);
        assert_eq!(view.order(), 5);
        view.load(&DiGraph::<(), ()>::new());
        assert_eq!(view.order(), 0);
        assert!(view.degrees().is_empty());
    }
}
