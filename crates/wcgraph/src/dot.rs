//! Graphviz DOT export.

use std::fmt::Write as _;

use crate::DiGraph;

/// Renders `g` in DOT format, labelling nodes and edges with the provided
/// closures. The output is deterministic (insertion order).
///
/// # Example
///
/// ```
/// use wcgraph::{dot, DiGraph};
///
/// let mut g = DiGraph::new();
/// let a = g.add_node("bing.com");
/// let b = g.add_node("evil.example");
/// g.add_edge(a, b, "redirect");
/// let out = dot::to_dot(&g, "wcg", |n| n.to_string(), |e| e.to_string());
/// assert!(out.contains("digraph wcg"));
/// assert!(out.contains("redirect"));
/// ```
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    node_label: impl Fn(&N) -> String,
    edge_label: impl Fn(&E) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_id(name));
    let _ = writeln!(out, "  rankdir=LR;");
    for id in g.node_ids() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", id.0, escape(&node_label(g.node(id))));
    }
    for (_, src, dst, payload) in g.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            src.0,
            dst.0,
            escape(&edge_label(payload))
        );
    }
    out.push_str("}\n");
    out
}

fn sanitize_id(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) || cleaned.is_empty() {
        format!("g{cleaned}")
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 7u32);
        let out = to_dot(&g, "test", |n| n.to_string(), |e| format!("w={e}"));
        assert!(out.starts_with("digraph test {"));
        assert!(out.contains("n0 [label=\"a\"]"));
        assert!(out.contains("n0 -> n1 [label=\"w=7\"]"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes_and_sanitizes_name() {
        let mut g = DiGraph::new();
        g.add_node("say \"hi\"");
        let out = to_dot(&g, "123 bad name", |n| n.to_string(), |_: &()| String::new());
        assert!(out.contains("digraph g123_bad_name"));
        assert!(out.contains("\\\"hi\\\""));
    }
}
