//! Directed-graph analytics substrate for the DynaMiner reproduction.
//!
//! DynaMiner's 19 graph features (f7–f25 in the paper) require a fairly
//! wide set of graph measures — centralities, connectivity, clustering,
//! PageRank — that the paper's authors obtained from NetworkX. This crate
//! implements them from scratch on a small, allocation-friendly directed
//! multigraph, [`DiGraph`].
//!
//! The algorithm collection lives in [`algo`]; each function documents the
//! exact definition used (several of the paper's one-line feature
//! descriptions are ambiguous — where NetworkX has a function of the same
//! name we follow its semantics).
//!
//! # Example
//!
//! ```
//! use wcgraph::DiGraph;
//!
//! let mut g: DiGraph<&str, ()> = DiGraph::new();
//! let a = g.add_node("victim");
//! let b = g.add_node("landing");
//! let c = g.add_node("exploit");
//! g.add_edge(a, b, ());
//! g.add_edge(b, c, ());
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(wcgraph::algo::paths::diameter(&g), 2);
//! ```

pub mod algo;
pub mod dot;
pub mod view;

mod digraph;

pub use digraph::{DiGraph, EdgeId, NodeId};
pub use view::{Adjacency, Csr, GraphView};
