//! Trusted-vendor weed-out (Sec. V-B).
//!
//! To reduce noise from benign traffic, DynaMiner excludes HTTP
//! transactions that involve downloads from trusted software vendors and
//! application stores before constructing potential-infection WCGs.

/// Default trusted vendor / application-store hosts. Suffix matching is
/// used, so `dl.google.com` trusts `*.dl.google.com` too.
pub const DEFAULT_TRUSTED_HOSTS: [&str; 10] = [
    "download.windowsupdate.com",
    "windowsupdate.microsoft.com",
    "swcdn.apple.com",
    "itunes.apple.com",
    "archive.ubuntu.com",
    "security.ubuntu.com",
    "dl.google.com",
    "play.google.com",
    "download.mozilla.org",
    "addons.mozilla.org",
];

/// A suffix-matching allowlist of trusted download sources.
#[derive(Debug, Clone)]
pub struct TrustedHosts {
    suffixes: Vec<String>,
}

impl Default for TrustedHosts {
    fn default() -> Self {
        TrustedHosts {
            suffixes: DEFAULT_TRUSTED_HOSTS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl TrustedHosts {
    /// An empty allowlist (weed-out disabled).
    pub fn none() -> Self {
        TrustedHosts { suffixes: Vec::new() }
    }

    /// Builds an allowlist from explicit host suffixes.
    pub fn from_hosts<I: IntoIterator<Item = String>>(hosts: I) -> Self {
        TrustedHosts { suffixes: hosts.into_iter().map(|h| h.to_ascii_lowercase()).collect() }
    }

    /// Adds a trusted host suffix.
    pub fn add(&mut self, host: &str) {
        self.suffixes.push(host.to_ascii_lowercase());
    }

    /// Whether `host` matches the allowlist (exact or dot-boundary
    /// suffix).
    pub fn is_trusted(&self, host: &str) -> bool {
        let host = host.to_ascii_lowercase();
        self.suffixes.iter().any(|s| {
            host == *s || host.ends_with(&format!(".{s}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_list_trusts_vendors() {
        let t = TrustedHosts::default();
        assert!(t.is_trusted("download.windowsupdate.com"));
        assert!(t.is_trusted("DL.GOOGLE.COM"));
        assert!(t.is_trusted("eu.dl.google.com")); // subdomain
    }

    #[test]
    fn unrelated_hosts_are_untrusted() {
        let t = TrustedHosts::default();
        assert!(!t.is_trusted("evil-dl.google.com.attacker.ru"));
        assert!(!t.is_trusted("notdl.google.com.evil.net"));
        assert!(!t.is_trusted("example.com"));
        // Suffix matching must respect label boundaries.
        assert!(!t.is_trusted("fakedl.google.comx"));
    }

    #[test]
    fn custom_and_empty_lists() {
        let mut t = TrustedHosts::none();
        assert!(!t.is_trusted("download.windowsupdate.com"));
        t.add("internal.corp");
        assert!(t.is_trusted("mirror.internal.corp"));
        let t2 = TrustedHosts::from_hosts(vec!["a.example".to_string()]);
        assert!(t2.is_trusted("a.example"));
    }
}
