//! Grouping a live HTTP stream into per-client conversations (Sec. V-B).
//!
//! The paper groups transactions using the session ID of the download and
//! redirection chains, falling back to a heuristic over referrer values
//! and timestamps when a client holds multiple session IDs. This module
//! implements that clustering:
//!
//! 1. an explicit session-ID match binds a transaction to a conversation,
//! 2. otherwise a referrer pointing at a URL or host already in a
//!    conversation binds it there,
//! 3. otherwise a repeated host binds it,
//! 4. otherwise a referrer-less transaction joins the client's most
//!    recently active conversation,
//! 5. otherwise a fresh conversation starts.
//!
//! Conversations idle longer than the timeout no longer accept new
//! transactions (the paper watches a WCG "until it stops growing").
//!
//! # Durable state
//!
//! Two robustness tiers sit on top of the clustering (DESIGN.md §13):
//!
//! * **Spill tier** — with a [`SpillConfig`], idle conversations are
//!   demoted to a compact frozen form (the
//!   transactions plus the match keys; the WCG builder and feature
//!   caches are dropped) under a byte-accounted budget, and rehydrated
//!   through the existing absorb fold when their next transaction
//!   arrives. Hard eviction becomes the last resort and is counted
//!   separately from spill.
//! * **Snapshot** — [`SessionTracker::state`] serializes everything a
//!   restarted tracker needs ([`TrackerState`]); restoring replays each
//!   conversation's stored transactions through the same fold, so the
//!   rebuilt WCGs are identical to the originals.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};

use crate::features::TopoCache;
use crate::wcg::{PushOutcome, Wcg, WcgBuilder};

/// Baseline heap estimate for a live conversation: builder, feature
/// cache, and match-key set overhead before any transaction arrives.
const CONV_BASE_BYTES: usize = 512;
/// Per-stored-transaction overhead of a *live* conversation beyond the
/// transaction itself: WCG node/edge bookkeeping and the URL match key.
const LIVE_TX_OVERHEAD: usize = 96;
/// Baseline heap estimate for a frozen conversation.
const FROZEN_BASE_BYTES: usize = 128;

/// Rough heap cost of one stored transaction: the struct plus its owned
/// strings and body preview, with a flat allowance for headers. An
/// estimate, not an allocator measurement — it only has to be
/// deterministic and roughly proportional to real usage for the spill
/// budgets to mean anything.
fn tx_cost(tx: &HttpTransaction) -> usize {
    std::mem::size_of::<HttpTransaction>()
        + tx.host.len()
        + tx.uri.len()
        + tx.body_preview.len()
        + 160
}

/// Serializable image of a [`Conversation`]: the stored transactions
/// plus exactly the scalars the absorb fold cannot reconstruct —
/// detector-maintained flags and the residue of cap-dropped
/// transactions (which were never stored). Everything else (WCG
/// builder, feature cache, match-key sets) is rebuilt by replaying the
/// transactions through [`Conversation::from_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConversationState {
    /// Stable conversation id (see [`Conversation::id`]).
    pub id: u64,
    /// Stored transactions in arrival order.
    pub transactions: Vec<HttpTransaction>,
    /// Detector flag: an alert has fired.
    pub alerted: bool,
    /// Detector flag: a clue fired and the conversation is watched.
    pub watched: bool,
    /// Detector counter: redirect hops seen (including capped ones).
    pub redirects_seen: usize,
    /// Detector maximum over downloaded payload likelihoods.
    pub max_payload_likelihood: f64,
    /// Whether the most recent transaction introduced a new host.
    pub last_tx_added_host: bool,
    /// Whether the most recent transaction was a redirect hop.
    pub last_tx_redirectish: bool,
    /// Time of the most recent activity (stored or capped).
    pub last_ts: f64,
    /// Trigger host of a cap-dropped most-recent transaction.
    pub capped_host: Option<String>,
}

/// Monotone tracker counters carried through a snapshot, so a restored
/// tracker keeps reporting totals for the whole logical run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerCounters {
    /// Conversations ever created.
    pub created: u64,
    /// Conversations evicted by the retention window.
    pub evicted: u64,
    /// Conversations evicted by the per-client conversation cap.
    pub cap_evicted: u64,
    /// Frozen conversations hard-evicted by the spill budget.
    pub spill_evicted: u64,
    /// Live→frozen demotions.
    pub spilled: u64,
    /// Frozen→live rehydrations.
    pub rehydrated: u64,
    /// Transactions dropped by the per-conversation cap.
    pub dropped_transactions: u64,
}

/// One client's serialized conversations plus its private id counter
/// (without the counter a restored tracker would reuse conversation
/// ids). Frozen conversations are decoded into plain states at snapshot
/// time; a restored tracker starts with everything live and re-demotes
/// on the next budget check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientRecord {
    /// The client address (also the shard-routing key on restore).
    pub addr: Ipv4Addr,
    /// Next per-client conversation id.
    pub next_local: u32,
    /// Conversation states in tracker order — order matters, because
    /// assignment pass 1 takes the *first* structural match.
    pub convs: Vec<ConversationState>,
}

/// Full serializable tracker state: per-client conversations plus the
/// monotone counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackerState {
    /// Per-client records, in address order.
    pub clients: Vec<ClientRecord>,
    /// Monotone counter totals at snapshot time.
    pub counters: TrackerCounters,
}

/// Per-conversation host symbol table: lowercased host names are
/// interned to dense `u32` symbols once, so the per-transaction
/// match/absorb path stores and compares symbols instead of allocating a
/// fresh lowercase copy per candidate conversation.
#[derive(Debug, Clone, Default)]
struct HostInterner {
    /// Lowercased name → symbol; symbols are dense insertion indices.
    index: BTreeMap<String, u32>,
}

impl HostInterner {
    /// Symbol for an already-lowercased host, interning it when new —
    /// the only path that copies the host string.
    fn intern(&mut self, lower: &str) -> u32 {
        if let Some(&sym) = self.index.get(lower) {
            return sym;
        }
        let sym = self.index.len() as u32;
        self.index.insert(lower.to_string(), sym);
        sym
    }

    /// Symbol of an already-interned lowercased host, if any.
    fn lookup(&self, lower: &str) -> Option<u32> {
        self.index.get(lower).copied()
    }

    /// Interned names in lexicographic order (the iteration order the
    /// pre-interner `BTreeSet<String>` host set had).
    fn names(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Consumes the interner into its name set (freeze path).
    fn into_names(self) -> BTreeSet<String> {
        self.index.into_keys().collect()
    }
}

/// One conversation under observation.
#[derive(Debug, Clone)]
pub struct Conversation {
    /// Stable conversation id, unique per tracker and *client-scoped*:
    /// the high 32 bits are the client's IPv4 address, the low 32 bits a
    /// per-client creation counter. Because the id never depends on how
    /// other clients' transactions interleave, a stream sharded by
    /// client address assigns the same ids as a single tracker seeing
    /// the whole stream — the property the sharded engine's determinism
    /// contract rests on.
    pub id: u64,
    /// Transactions assigned so far, in arrival order.
    pub transactions: Vec<HttpTransaction>,
    /// Whether an alert has been raised for this conversation.
    pub alerted: bool,
    /// Whether the conversation is being watched (a clue fired).
    pub watched: bool,
    /// Redirect hops seen so far (incremental clue counter).
    pub redirects_seen: usize,
    /// Highest payload infectiousness likelihood downloaded so far.
    pub max_payload_likelihood: f64,
    /// Whether the most recent transaction introduced a host this
    /// conversation had not contacted before.
    pub last_tx_added_host: bool,
    /// Whether the most recent transaction was a redirect hop (3xx or a
    /// detectable redirect target). Computed once here so the detector
    /// does not re-derive redirect targets per transaction.
    pub last_tx_redirectish: bool,
    /// Incrementally maintained WCG over the stored transactions,
    /// equivalent to `Wcg::from_transactions(&self.transactions)` at
    /// every point.
    builder: WcgBuilder,
    /// Memoized topology-dependent feature values for the detector.
    feature_cache: TopoCache,
    /// Symbols (from `interner`) of the hosts contacted so far.
    hosts: BTreeSet<u32>,
    /// Host symbol table; its name set is exactly the hosts contacted.
    interner: HostInterner,
    session_ids: BTreeSet<String>,
    urls: BTreeSet<String>,
    /// Reusable buffer for building match keys (URL, lowercased target
    /// host) without a fresh allocation per transaction.
    scratch: String,
    last_ts: f64,
    /// Host of the most recent transaction *if* it was dropped by the
    /// per-conversation cap (cleared on every stored transaction).
    capped_host: Option<String>,
    /// Monotone heap-usage estimate (see [`tx_cost`]) maintained
    /// incrementally so the spill tier's budget check is O(1).
    approx_bytes: usize,
}

impl Conversation {
    fn new(id: u64, ts: f64) -> Self {
        Conversation {
            id,
            transactions: Vec::new(),
            alerted: false,
            watched: false,
            redirects_seen: 0,
            max_payload_likelihood: 0.0,
            last_tx_added_host: false,
            last_tx_redirectish: false,
            builder: WcgBuilder::new(),
            feature_cache: TopoCache::new(),
            hosts: BTreeSet::new(),
            interner: HostInterner::default(),
            session_ids: BTreeSet::new(),
            urls: BTreeSet::new(),
            scratch: String::new(),
            last_ts: ts,
            capped_host: None,
            approx_bytes: CONV_BASE_BYTES,
        }
    }

    /// Serializable image of this conversation (transactions cloned).
    pub fn to_state(&self) -> ConversationState {
        ConversationState {
            id: self.id,
            transactions: self.transactions.clone(),
            alerted: self.alerted,
            watched: self.watched,
            redirects_seen: self.redirects_seen,
            max_payload_likelihood: self.max_payload_likelihood,
            last_tx_added_host: self.last_tx_added_host,
            last_tx_redirectish: self.last_tx_redirectish,
            last_ts: self.last_ts,
            capped_host: self.capped_host.clone(),
        }
    }

    /// Rebuilds a conversation from its serialized image by replaying
    /// the stored transactions through the same absorb fold that built
    /// the original. The fold is deterministic in the transaction
    /// sequence, so the reconstructed WCG builder — including its
    /// topology version — is identical to the one that was dropped.
    /// Scalars the fold cannot see (detector flags and the effects of
    /// cap-dropped transactions) are then overwritten from the state.
    pub fn from_state(state: ConversationState) -> Self {
        let ConversationState {
            id,
            transactions,
            alerted,
            watched,
            redirects_seen,
            max_payload_likelihood,
            last_tx_added_host,
            last_tx_redirectish,
            last_ts,
            capped_host,
        } = state;
        let mut conv = Conversation::new(id, last_ts);
        for tx in transactions {
            conv.absorb(tx);
        }
        conv.alerted = alerted;
        conv.watched = watched;
        conv.redirects_seen = redirects_seen;
        conv.max_payload_likelihood = max_payload_likelihood;
        conv.last_tx_added_host = last_tx_added_host;
        conv.last_tx_redirectish = last_tx_redirectish;
        conv.last_ts = last_ts;
        if let Some(host) = capped_host {
            conv.approx_bytes += host.len();
            conv.capped_host = Some(host);
        }
        conv
    }

    /// Time of the most recent transaction.
    pub fn last_ts(&self) -> f64 {
        self.last_ts
    }

    /// The incrementally maintained WCG over the stored transactions,
    /// its topology version, and the conversation's feature cache —
    /// split-borrowed so the caller can extract features while the cache
    /// is held mutably.
    pub fn wcg_state(&mut self) -> (&Wcg, u64, &mut TopoCache) {
        let Conversation { builder, feature_cache, .. } = self;
        (builder.wcg(), builder.topo_version(), feature_cache)
    }

    /// Records a transaction that was dropped by the per-conversation
    /// cap: activity is acknowledged (so idle/retention timers behave)
    /// but nothing is stored, bounding memory against a hostile endpoint
    /// streaming unbounded transactions into one conversation. Only the
    /// host survives (moved, not cloned) so an alert fired by a capped
    /// transaction can still name its trigger.
    fn note_capped(&mut self, tx: HttpTransaction) {
        self.last_tx_added_host = false;
        self.last_tx_redirectish =
            tx.is_redirect() || !crate::wcg::redirect::targets(&tx).is_empty();
        self.last_ts = self.last_ts.max(tx.ts);
        self.approx_bytes += tx.host.len();
        self.capped_host = Some(tx.host);
    }

    /// Host of the most recently arrived transaction, whether it was
    /// stored or dropped by the per-conversation cap.
    pub fn last_host(&self) -> &str {
        self.capped_host
            .as_deref()
            .or_else(|| self.transactions.last().map(|t| t.host.as_str()))
            .unwrap_or("")
    }

    /// Hosts contacted in this conversation, in lexicographic order.
    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.interner.names()
    }

    /// Cold-path absorb (snapshot replay): derives the per-transaction
    /// match keys itself. The live path computes them once per
    /// transaction in [`SessionTracker::assign_owned`] and calls
    /// [`Conversation::absorb_prepared`] directly.
    fn absorb(&mut self, tx: HttpTransaction) {
        let sid = tx.session_id();
        let host_lower = tx.host.to_ascii_lowercase();
        self.absorb_prepared(tx, sid, &host_lower);
    }

    fn absorb_prepared(
        &mut self,
        tx: HttpTransaction,
        sid: Option<String>,
        host_lower: &str,
    ) {
        self.approx_bytes += tx_cost(&tx) + LIVE_TX_OVERHEAD;
        self.capped_host = None;
        let sym = self.interner.intern(host_lower);
        self.last_tx_added_host = self.hosts.insert(sym);
        if let Some(sid) = sid {
            self.session_ids.insert(sid);
        }
        // The URL match key is assembled in the reusable scratch buffer
        // and only copied to the heap when it is actually new.
        self.scratch.clear();
        self.scratch.push_str("http://");
        self.scratch.push_str(&tx.host);
        self.scratch.push_str(&tx.uri);
        if !self.urls.contains(self.scratch.as_str()) {
            self.urls.insert(self.scratch.clone());
        }
        // Redirect targets are derived once per transaction and shared by
        // host pre-registration, the detector's redirect clue, and the
        // incremental WCG push.
        let targets = crate::wcg::redirect::targets(&tx);
        self.last_tx_redirectish = tx.is_redirect() || !targets.is_empty();
        // Redirect targets become expected hosts, so follow-up requests
        // with stripped referrers still cluster correctly.
        for target in &targets {
            if let Some(host) = target.split_once("://").map(|(_, r)| r) {
                if let Some(h) = host.split(['/', '?', '#']).next() {
                    self.scratch.clear();
                    self.scratch.push_str(h.split(':').next().unwrap_or(h));
                    self.scratch.make_ascii_lowercase();
                    let sym = self.interner.intern(&self.scratch);
                    self.hosts.insert(sym);
                }
            }
        }
        self.last_ts = self.last_ts.max(tx.ts);
        // The transaction is moved into storage — the shard queues of the
        // stream engine hand transactions over by value, so the live path
        // never clones one.
        self.transactions.push(tx);
        let stored = self.transactions.last().expect("just pushed");
        if self.builder.push_with_targets(stored, &targets) == PushOutcome::NeedsRebuild {
            self.builder.rebuild(&self.transactions);
        }
    }

    fn matches(
        &self,
        tx: &HttpTransaction,
        sid: Option<&str>,
        referer_host: Option<&str>,
        host_lower: &str,
    ) -> bool {
        if let Some(sid) = sid {
            if self.session_ids.contains(sid) {
                return true;
            }
        }
        if let Some(r) = tx.referer() {
            if self.urls.contains(r) {
                return true;
            }
        }
        if let Some(h) = referer_host {
            if self.interner.lookup(h).is_some() {
                return true;
            }
        }
        self.interner.lookup(host_lower).is_some()
    }
}

/// A demoted idle conversation: the serializable state plus the match
/// keys, with the WCG builder, feature cache, and per-transaction graph
/// bookkeeping dropped. It still participates in assignment exactly
/// like a live conversation (same match predicate, same activity
/// timestamp), so demotion is behavior-neutral; the first transaction
/// that matches thaws it back through [`Conversation::from_state`].
#[derive(Debug, Clone)]
struct FrozenConversation {
    state: ConversationState,
    hosts: BTreeSet<String>,
    session_ids: BTreeSet<String>,
    urls: BTreeSet<String>,
    /// Byte estimate charged against the spill budget.
    accounted_bytes: usize,
}

impl FrozenConversation {
    fn freeze(conv: Conversation) -> Self {
        let state = ConversationState {
            id: conv.id,
            alerted: conv.alerted,
            watched: conv.watched,
            redirects_seen: conv.redirects_seen,
            max_payload_likelihood: conv.max_payload_likelihood,
            last_tx_added_host: conv.last_tx_added_host,
            last_tx_redirectish: conv.last_tx_redirectish,
            last_ts: conv.last_ts,
            capped_host: conv.capped_host,
            transactions: conv.transactions,
        };
        // Host symbols are resolved back to their names at the freeze
        // boundary: the frozen tier keeps plain strings so its byte
        // accounting and match predicate are interner-independent.
        let hosts = conv.interner.into_names();
        let key_bytes: usize = hosts
            .iter()
            .chain(&conv.session_ids)
            .chain(&conv.urls)
            .map(|s| s.len() + 32)
            .sum();
        let accounted_bytes = FROZEN_BASE_BYTES
            + state.transactions.iter().map(tx_cost).sum::<usize>()
            + key_bytes;
        FrozenConversation {
            state,
            hosts,
            session_ids: conv.session_ids,
            urls: conv.urls,
            accounted_bytes,
        }
    }

    fn thaw(self) -> Conversation {
        Conversation::from_state(self.state)
    }

    fn last_ts(&self) -> f64 {
        self.state.last_ts
    }

    /// Same predicate as [`Conversation::matches`], over the retained
    /// match keys.
    fn matches(
        &self,
        tx: &HttpTransaction,
        sid: Option<&str>,
        referer_host: Option<&str>,
        host_lower: &str,
    ) -> bool {
        if let Some(sid) = sid {
            if self.session_ids.contains(sid) {
                return true;
            }
        }
        if let Some(r) = tx.referer() {
            if self.urls.contains(r) {
                return true;
            }
        }
        if let Some(h) = referer_host {
            if self.hosts.contains(h) {
                return true;
            }
        }
        self.hosts.contains(host_lower)
    }
}

/// A tracked conversation in either lifecycle tier.
// Not boxed: `Live` is the hot variant touched on every transaction,
// and the frozen tier's footprint is governed by `accounted_bytes`
// budgets, not the enum's in-place size.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Slot {
    Live(Conversation),
    Frozen(FrozenConversation),
}

impl Slot {
    fn last_ts(&self) -> f64 {
        match self {
            Slot::Live(c) => c.last_ts(),
            Slot::Frozen(f) => f.last_ts(),
        }
    }

    fn matches(
        &self,
        tx: &HttpTransaction,
        sid: Option<&str>,
        referer_host: Option<&str>,
        host_lower: &str,
    ) -> bool {
        match self {
            Slot::Live(c) => c.matches(tx, sid, referer_host, host_lower),
            Slot::Frozen(f) => f.matches(tx, sid, referer_host, host_lower),
        }
    }

    fn is_live(&self) -> bool {
        matches!(self, Slot::Live(_))
    }
}

/// Budgets for the LRU spill tier. Both budgets are estimates over
/// `tx_cost`-style accounting, not allocator measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillConfig {
    /// Live-tier budget: when the estimated bytes of live conversations
    /// exceed this, the globally least-recently-active conversations
    /// idle at least `min_idle_secs` are frozen until back under.
    pub max_live_bytes: usize,
    /// Frozen-tier budget: when exceeded, the oldest frozen
    /// conversations are hard-evicted (the true last resort, counted
    /// separately from both spill and the retention/cap evictions).
    pub max_spill_bytes: usize,
    /// A conversation this recently active is never frozen by the
    /// budget sweep (it is probably about to grow again).
    pub min_idle_secs: f64,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            max_live_bytes: 64 << 20,
            max_spill_bytes: 256 << 20,
            min_idle_secs: 30.0,
        }
    }
}

/// Swaps the slot at `convs[idx]` from live to frozen in place,
/// returning `(live bytes freed, spill bytes charged)`. Free function
/// so callers holding a client-entry borrow can still update tracker
/// counters (disjoint field borrows).
fn freeze_slot(convs: &mut [Slot], idx: usize) -> (usize, usize) {
    let placeholder = Slot::Live(Conversation::new(0, 0.0));
    let Slot::Live(conv) = std::mem::replace(&mut convs[idx], placeholder) else {
        unreachable!("freeze_slot caller checked the slot is live");
    };
    let freed = conv.approx_bytes;
    let frozen = FrozenConversation::freeze(conv);
    let charged = frozen.accounted_bytes;
    convs[idx] = Slot::Frozen(frozen);
    (freed, charged)
}

/// One client's conversations plus its private id counter. Conversation
/// ids are `(client_ip << 32) | local_counter`, so two trackers that see
/// the same per-client substreams assign identical ids regardless of how
/// the clients' transactions interleave — the invariant that lets the
/// sharded stream engine reproduce single-threaded output bit for bit.
#[derive(Debug, Default)]
struct ClientSessions {
    convs: Vec<Slot>,
    next_local: u32,
}

/// Per-client conversation tracker.
#[derive(Debug)]
pub struct SessionTracker {
    clients: BTreeMap<Ipv4Addr, ClientSessions>,
    idle_timeout: f64,
    retention: Option<f64>,
    /// Live conversation count, maintained incrementally so the
    /// per-transaction telemetry gauge update is O(1) instead of a sum
    /// over all clients.
    live: usize,
    evicted: usize,
    max_conversations: usize,
    max_transactions: usize,
    cap_evicted: usize,
    dropped_transactions: u64,
    /// LRU spill tier budgets; `None` disables demotion entirely (the
    /// pre-spill behavior, and the default).
    spill: Option<SpillConfig>,
    /// Conversations ever created (the accounting anchor:
    /// `created == live + frozen + evicted + cap_evicted + spill_evicted`).
    created: u64,
    /// Live→frozen demotions (a conversation can spill repeatedly).
    spilled: u64,
    /// Frozen→live rehydrations.
    rehydrated: u64,
    /// Frozen conversations hard-evicted by the spill budget.
    spill_evicted: usize,
    /// Current frozen conversation count.
    frozen: usize,
    /// Estimated bytes held by live conversations.
    live_bytes: usize,
    /// Estimated bytes held by frozen conversations.
    spill_bytes: usize,
    /// Reusable buffer for the lowercased host of the transaction being
    /// assigned — computed once per transaction, not per candidate
    /// conversation.
    host_lower: String,
}

impl SessionTracker {
    /// Creates a tracker; conversations idle longer than `idle_timeout`
    /// seconds stop accepting transactions. All conversations are kept in
    /// memory (forensic mode) — use [`SessionTracker::with_retention`] for
    /// long-running deployments.
    pub fn new(idle_timeout: f64) -> Self {
        SessionTracker {
            clients: BTreeMap::new(),
            idle_timeout,
            retention: None,
            live: 0,
            evicted: 0,
            max_conversations: usize::MAX,
            max_transactions: usize::MAX,
            cap_evicted: 0,
            dropped_transactions: 0,
            spill: None,
            created: 0,
            spilled: 0,
            rehydrated: 0,
            spill_evicted: 0,
            frozen: 0,
            live_bytes: 0,
            spill_bytes: 0,
            host_lower: String::new(),
        }
    }

    /// Creates a tracker that evicts conversations idle longer than
    /// `retention` seconds, bounding memory on long-running proxies. An
    /// evicted conversation can no longer be matched or re-alerted; its
    /// alert (if any) was already emitted when it fired.
    pub fn with_retention(idle_timeout: f64, retention: f64) -> Self {
        SessionTracker { retention: Some(retention.max(idle_timeout)), ..Self::new(idle_timeout) }
    }

    /// Caps tracker state against hostile clients: at most
    /// `max_conversations_per_client` live conversations per client (the
    /// least-recently-active one is evicted to make room) and at most
    /// `max_transactions_per_conversation` stored transactions per
    /// conversation (further transactions refresh the activity timestamp
    /// but are not stored). Both caps are clamped to at least 1.
    pub fn with_caps(
        mut self,
        max_conversations_per_client: usize,
        max_transactions_per_conversation: usize,
    ) -> Self {
        self.max_conversations = max_conversations_per_client.max(1);
        self.max_transactions = max_transactions_per_conversation.max(1);
        self
    }

    /// Enables the LRU spill tier: idle conversations over the live
    /// budget are demoted to their frozen form instead of staying
    /// resident, and the per-client conversation cap demotes instead of
    /// evicting — hard eviction only happens when the frozen tier's own
    /// budget is exceeded.
    pub fn with_spill(mut self, config: SpillConfig) -> Self {
        self.spill = Some(config);
        self
    }

    /// Number of conversations evicted so far.
    pub fn evicted_count(&self) -> usize {
        self.evicted
    }

    /// Conversations ever created.
    pub fn created_count(&self) -> u64 {
        self.created
    }

    /// Live→frozen demotions so far.
    pub fn spilled_count(&self) -> u64 {
        self.spilled
    }

    /// Frozen→live rehydrations so far.
    pub fn rehydrated_count(&self) -> u64 {
        self.rehydrated
    }

    /// Frozen conversations hard-evicted by the spill budget.
    pub fn spill_evicted_count(&self) -> usize {
        self.spill_evicted
    }

    /// Current frozen conversation count.
    pub fn frozen_count(&self) -> usize {
        self.frozen
    }

    /// Estimated bytes currently held by the frozen tier.
    pub fn spill_bytes(&self) -> usize {
        self.spill_bytes
    }

    /// Estimated bytes currently held by live conversations.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Conversations evicted by the per-client conversation cap (as
    /// opposed to the retention window).
    pub fn cap_evicted_count(&self) -> usize {
        self.cap_evicted
    }

    /// Transactions dropped by the per-conversation transaction cap.
    pub fn dropped_transaction_count(&self) -> u64 {
        self.dropped_transactions
    }

    /// Drops every conversation of every client whose last activity
    /// precedes `now - retention`. No-op without a retention window.
    ///
    /// A client whose conversations were all evicted loses its map entry
    /// (and with it the local id counter), so conversation ids can be
    /// reused after the client returns — retention mode trades the
    /// unique-id guarantee for bounded memory, which is why the sharded
    /// engine's bit-identity contract is stated for `retention: None`.
    fn evict_stale(&mut self, now: f64) {
        let Some(retention) = self.retention else { return };
        let (mut gone_live, mut gone_frozen) = (0usize, 0usize);
        let (mut freed_live, mut freed_spill) = (0usize, 0usize);
        for entry in self.clients.values_mut() {
            entry.convs.retain(|slot| {
                if now - slot.last_ts() <= retention {
                    return true;
                }
                match slot {
                    Slot::Live(c) => {
                        gone_live += 1;
                        freed_live += c.approx_bytes;
                    }
                    Slot::Frozen(f) => {
                        gone_frozen += 1;
                        freed_spill += f.accounted_bytes;
                    }
                }
                false
            });
        }
        self.clients.retain(|_, entry| !entry.convs.is_empty());
        self.evicted += gone_live + gone_frozen;
        self.live -= gone_live;
        self.frozen -= gone_frozen;
        self.live_bytes = self.live_bytes.saturating_sub(freed_live);
        self.spill_bytes = self.spill_bytes.saturating_sub(freed_spill);
    }

    /// Enforces the spill budgets. First demotes the globally
    /// least-recently-active idle conversations until the live tier is
    /// back under budget, then hard-evicts the oldest frozen
    /// conversations if the frozen tier itself overflows. Candidate
    /// order is `(last_ts, client, slot index)` — fully deterministic.
    fn spill_enforce(&mut self, now: f64) {
        let Some(cfg) = self.spill else { return };
        if self.live_bytes > cfg.max_live_bytes {
            let mut candidates: Vec<(f64, Ipv4Addr, usize)> = Vec::new();
            for (addr, entry) in &self.clients {
                for (i, slot) in entry.convs.iter().enumerate() {
                    if let Slot::Live(c) = slot {
                        if now - c.last_ts() >= cfg.min_idle_secs {
                            candidates.push((c.last_ts(), *addr, i));
                        }
                    }
                }
            }
            candidates
                .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            for (_, addr, i) in candidates {
                if self.live_bytes <= cfg.max_live_bytes {
                    break;
                }
                let entry = self.clients.get_mut(&addr).expect("candidate client exists");
                let (freed, charged) = freeze_slot(&mut entry.convs, i);
                self.live_bytes = self.live_bytes.saturating_sub(freed);
                self.spill_bytes += charged;
                self.live -= 1;
                self.frozen += 1;
                self.spilled += 1;
            }
        }
        if self.spill_bytes > cfg.max_spill_bytes {
            let mut frozen_slots: Vec<(f64, Ipv4Addr, usize, usize)> = Vec::new();
            for (addr, entry) in &self.clients {
                for (i, slot) in entry.convs.iter().enumerate() {
                    if let Slot::Frozen(f) = slot {
                        frozen_slots.push((f.last_ts(), *addr, i, f.accounted_bytes));
                    }
                }
            }
            frozen_slots
                .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
            let mut projected = self.spill_bytes;
            let mut doomed: BTreeMap<Ipv4Addr, Vec<usize>> = BTreeMap::new();
            for (_, addr, i, bytes) in frozen_slots {
                if projected <= cfg.max_spill_bytes {
                    break;
                }
                projected = projected.saturating_sub(bytes);
                doomed.entry(addr).or_default().push(i);
            }
            for (addr, mut idxs) in doomed {
                // Remove back to front so earlier indices stay valid.
                idxs.sort_unstable_by(|a, b| b.cmp(a));
                let entry = self.clients.get_mut(&addr).expect("doomed client exists");
                for i in idxs {
                    let Slot::Frozen(f) = entry.convs.remove(i) else {
                        unreachable!("doomed slot was frozen when collected");
                    };
                    self.spill_bytes = self.spill_bytes.saturating_sub(f.accounted_bytes);
                    self.frozen -= 1;
                    self.spill_evicted += 1;
                }
                // The (possibly now-empty) client entry is kept: its id
                // counter must survive so conversation ids are not
                // reused while the client is still being tracked.
            }
        }
    }

    /// Assigns a transaction to a conversation (existing or new) and
    /// returns a mutable reference to it. Clones the transaction; the
    /// live path uses [`SessionTracker::assign_owned`] to move it
    /// instead.
    pub fn assign(&mut self, tx: &HttpTransaction) -> &mut Conversation {
        self.assign_owned(tx.clone())
    }

    /// Assigns an owned transaction to a conversation (existing or new)
    /// and returns a mutable reference to it. The transaction is moved
    /// into the conversation's storage — no clone on the hot path.
    pub fn assign_owned(&mut self, tx: HttpTransaction) -> &mut Conversation {
        self.evict_stale(tx.ts);
        self.spill_enforce(tx.ts);
        let client = tx.client.addr;
        let idle_timeout = self.idle_timeout;
        let spill_enabled = self.spill.is_some();
        // Per-transaction match keys, derived once here rather than once
        // per candidate conversation: the session id, the lowercased host
        // (built in a scratch buffer reused across transactions), and the
        // referrer host.
        let sid = tx.session_id();
        let mut host_lower = std::mem::take(&mut self.host_lower);
        host_lower.clear();
        host_lower.push_str(&tx.host);
        host_lower.make_ascii_lowercase();
        let entry = self.clients.entry(client).or_default();
        let convs = &mut entry.convs;
        let referer_host = tx.referer().and_then(|r| {
            let rest = r.split_once("://").map_or(r, |(_, x)| x);
            rest.split(['/', '?', '#']).next().map(|h| h.to_ascii_lowercase())
        });

        // Frozen conversations participate in both passes exactly like
        // live ones (same predicate, same timestamps) — demotion never
        // changes which conversation a transaction joins.
        let active = |s: &Slot| tx.ts - s.last_ts() <= idle_timeout;
        // Pass 1: structural match among active conversations.
        let mut chosen: Option<usize> = None;
        for (i, s) in convs.iter().enumerate() {
            if active(s) && s.matches(&tx, sid.as_deref(), referer_host.as_deref(), &host_lower)
            {
                chosen = Some(i);
                break;
            }
        }
        // Pass 2: referrer-less transactions join the most recently
        // active conversation (timestamp heuristic).
        if chosen.is_none() && tx.referer().is_none() && sid.is_none() {
            chosen = convs
                .iter()
                .enumerate()
                .filter(|(_, s)| active(s))
                .max_by(|a, b| a.1.last_ts().total_cmp(&b.1.last_ts()))
                .map(|(i, _)| i);
        }
        let idx = match chosen {
            Some(i) => i,
            None => {
                if convs.iter().filter(|s| s.is_live()).count() >= self.max_conversations {
                    // At the cap: the least-recently-active live
                    // conversation makes room — demoted to the frozen
                    // tier when spill is enabled (eviction is the last
                    // resort), discarded outright otherwise. Its alert
                    // (if any) was already emitted when it fired.
                    let lru = convs
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_live())
                        .min_by(|a, b| a.1.last_ts().total_cmp(&b.1.last_ts()))
                        .map(|(i, _)| i)
                        .expect("cap is >= 1, so a full client has live conversations");
                    if spill_enabled {
                        let (freed, charged) = freeze_slot(convs, lru);
                        self.live_bytes = self.live_bytes.saturating_sub(freed);
                        self.spill_bytes += charged;
                        self.frozen += 1;
                        self.spilled += 1;
                    } else {
                        let Slot::Live(gone) = convs.remove(lru) else {
                            unreachable!("lru slot was live when selected");
                        };
                        self.live_bytes = self.live_bytes.saturating_sub(gone.approx_bytes);
                        self.cap_evicted += 1;
                    }
                    self.live -= 1;
                }
                // Client-scoped id: high 32 bits the client address, low
                // 32 bits the per-client creation counter.
                let id = (u64::from(u32::from(client)) << 32) | u64::from(entry.next_local);
                entry.next_local = entry.next_local.wrapping_add(1);
                convs.push(Slot::Live(Conversation::new(id, tx.ts)));
                self.created += 1;
                self.live += 1;
                self.live_bytes += CONV_BASE_BYTES;
                convs.len() - 1
            }
        };
        // Rehydrate if the transaction matched a frozen conversation.
        if !convs[idx].is_live() {
            let placeholder = Slot::Live(Conversation::new(0, 0.0));
            let Slot::Frozen(frozen) = std::mem::replace(&mut convs[idx], placeholder) else {
                unreachable!("just checked the slot is frozen");
            };
            self.spill_bytes = self.spill_bytes.saturating_sub(frozen.accounted_bytes);
            let conv = frozen.thaw();
            self.live_bytes += conv.approx_bytes;
            convs[idx] = Slot::Live(conv);
            self.rehydrated += 1;
            self.frozen -= 1;
            self.live += 1;
        }
        let Slot::Live(conv) = &mut convs[idx] else {
            unreachable!("chosen slot is live after rehydration");
        };
        let bytes_before = conv.approx_bytes;
        if conv.transactions.len() >= self.max_transactions {
            self.dropped_transactions += 1;
            conv.note_capped(tx);
        } else {
            conv.absorb_prepared(tx, sid, &host_lower);
        }
        self.live_bytes += conv.approx_bytes - bytes_before;
        self.host_lower = host_lower;
        conv
    }

    /// All live conversations of all clients (for offline/forensic
    /// summaries). Frozen conversations are not visible here; call
    /// [`SessionTracker::rehydrate_all`] first when a complete view is
    /// needed.
    pub fn conversations(&self) -> impl Iterator<Item = &Conversation> {
        self.clients.values().flat_map(|entry| {
            entry.convs.iter().filter_map(|slot| match slot {
                Slot::Live(c) => Some(c),
                Slot::Frozen(_) => None,
            })
        })
    }

    /// Number of live conversations (O(1); maintained incrementally).
    pub fn conversation_count(&self) -> usize {
        debug_assert_eq!(
            self.live,
            self.clients
                .values()
                .map(|entry| entry.convs.iter().filter(|s| s.is_live()).count())
                .sum::<usize>()
        );
        self.live
    }

    /// Thaws every frozen conversation back to the live tier (counted
    /// as rehydrations). Used before forensic verdict passes, which
    /// need every conversation resident.
    pub fn rehydrate_all(&mut self) {
        let mut thawed = 0usize;
        let (mut freed, mut added) = (0usize, 0usize);
        for entry in self.clients.values_mut() {
            for slot in &mut entry.convs {
                if slot.is_live() {
                    continue;
                }
                let placeholder = Slot::Live(Conversation::new(0, 0.0));
                let Slot::Frozen(frozen) = std::mem::replace(slot, placeholder) else {
                    unreachable!("just checked the slot is frozen");
                };
                freed += frozen.accounted_bytes;
                let conv = frozen.thaw();
                added += conv.approx_bytes;
                *slot = Slot::Live(conv);
                thawed += 1;
            }
        }
        self.rehydrated += thawed as u64;
        self.frozen -= thawed;
        self.live += thawed;
        self.spill_bytes = self.spill_bytes.saturating_sub(freed);
        self.live_bytes += added;
    }

    /// Serializable image of the whole tracker. Frozen conversations
    /// are decoded into plain states; a restored tracker starts with
    /// everything live and re-demotes on its next budget check.
    pub fn state(&self) -> TrackerState {
        let clients = self
            .clients
            .iter()
            .map(|(addr, entry)| ClientRecord {
                addr: *addr,
                next_local: entry.next_local,
                convs: entry
                    .convs
                    .iter()
                    .map(|slot| match slot {
                        Slot::Live(c) => c.to_state(),
                        Slot::Frozen(f) => f.state.clone(),
                    })
                    .collect(),
            })
            .collect();
        TrackerState {
            clients,
            counters: TrackerCounters {
                created: self.created,
                evicted: self.evicted as u64,
                cap_evicted: self.cap_evicted as u64,
                spill_evicted: self.spill_evicted as u64,
                spilled: self.spilled,
                rehydrated: self.rehydrated,
                dropped_transactions: self.dropped_transactions,
            },
        }
    }

    /// Replaces this tracker's conversations and counters with a
    /// serialized image, rebuilding every WCG by replaying the stored
    /// transactions. Configuration (timeouts, caps, spill budgets) is
    /// NOT part of the image — it stays whatever this tracker was
    /// constructed with, so a snapshot can be restored under new
    /// operational settings.
    pub fn restore(&mut self, state: TrackerState) {
        self.clients.clear();
        self.live = 0;
        self.frozen = 0;
        self.live_bytes = 0;
        self.spill_bytes = 0;
        for record in state.clients {
            let mut convs = Vec::with_capacity(record.convs.len());
            for cs in record.convs {
                let conv = Conversation::from_state(cs);
                self.live += 1;
                self.live_bytes += conv.approx_bytes;
                convs.push(Slot::Live(conv));
            }
            self.clients
                .insert(record.addr, ClientSessions { convs, next_local: record.next_local });
        }
        let c = state.counters;
        self.created = c.created;
        self.evicted = c.evicted as usize;
        self.cap_evicted = c.cap_evicted as usize;
        self.spill_evicted = c.spill_evicted as usize;
        self.spilled = c.spilled;
        self.rehydrated = c.rehydrated;
        self.dropped_transactions = c.dropped_transactions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcg::tests::tx;
    use nettrace::http::Method;
    use nettrace::payload::PayloadClass;

    fn get(ts: f64, host: &str, uri: &str, referer: Option<&str>) -> HttpTransaction {
        tx(ts, host, uri, Method::Get, 200, PayloadClass::Html, 100, referer, None)
    }

    #[test]
    fn referrer_chain_clusters_into_one_conversation() {
        let mut tracker = SessionTracker::new(300.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(2.0, "b.com", "/y", Some("http://a.com/x")));
        tracker.assign(&get(3.0, "c.com", "/z", Some("http://b.com/y")));
        assert_eq!(tracker.conversation_count(), 1);
        let conv = tracker.conversations().next().unwrap();
        assert_eq!(conv.transactions.len(), 3);
    }

    #[test]
    fn unrelated_hosts_with_referrers_split() {
        let mut tracker = SessionTracker::new(300.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(2.0, "other.net", "/q", Some("http://elsewhere.org/")));
        assert_eq!(tracker.conversation_count(), 2);
    }

    #[test]
    fn session_id_binds_across_hosts() {
        let mut tracker = SessionTracker::new(300.0);
        let mut t1 = get(1.0, "a.com", "/x", None);
        t1.req_headers.append("Cookie", "sid=abc");
        let mut t2 = get(100.0, "z.net", "/q?r=1", Some("http://unrelated.example/"));
        t2.req_headers.append("Cookie", "sid=abc");
        tracker.assign(&t1);
        tracker.assign(&t2);
        assert_eq!(tracker.conversation_count(), 1);
    }

    #[test]
    fn referrerless_posts_join_most_recent_conversation() {
        // C&C callbacks carry no referrer and hit fresh hosts; the
        // timestamp heuristic binds them to the active conversation.
        let mut tracker = SessionTracker::new(300.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        let post = tx(
            30.0, "198.51.100.77", "/gate", Method::Post, 200,
            PayloadClass::Text, 10, None, None,
        );
        tracker.assign(&post);
        assert_eq!(tracker.conversation_count(), 1);
    }

    #[test]
    fn idle_timeout_starts_new_conversation() {
        let mut tracker = SessionTracker::new(60.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(500.0, "a.com", "/x", None));
        assert_eq!(tracker.conversation_count(), 2);
    }

    #[test]
    fn clients_are_isolated() {
        let mut tracker = SessionTracker::new(300.0);
        let t1 = get(1.0, "a.com", "/x", None);
        let mut t2 = get(2.0, "a.com", "/x", None);
        t2.client = nettrace::reassembly::Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 1234);
        tracker.assign(&t1);
        tracker.assign(&t2);
        assert_eq!(tracker.conversation_count(), 2);
    }

    #[test]
    fn retention_bounds_memory_on_long_streams() {
        let mut tracker = SessionTracker::with_retention(60.0, 600.0);
        // A day of hourly one-shot conversations from one client.
        for hour in 0..24 {
            let t = hour as f64 * 3600.0;
            tracker.assign(&get(t, "a.com", "/x", None));
        }
        assert!(tracker.conversation_count() <= 2, "{}", tracker.conversation_count());
        assert!(tracker.evicted_count() >= 22, "{}", tracker.evicted_count());
    }

    #[test]
    fn forensic_mode_keeps_everything() {
        let mut tracker = SessionTracker::new(60.0);
        for hour in 0..24 {
            tracker.assign(&get(hour as f64 * 3600.0, "a.com", "/x", None));
        }
        assert_eq!(tracker.conversation_count(), 24);
        assert_eq!(tracker.evicted_count(), 0);
    }

    #[test]
    fn retention_never_undercuts_idle_timeout() {
        let mut tracker = SessionTracker::with_retention(300.0, 1.0);
        tracker.assign(&get(0.0, "a.com", "/x", None));
        // 200 s later: inside idle timeout, must still match despite the
        // (clamped) 1-second retention request.
        tracker.assign(&get(200.0, "a.com", "/x", None));
        assert_eq!(tracker.conversation_count(), 1);
    }

    #[test]
    fn conversation_cap_bounds_hostile_client() {
        // A hostile client spraying 10k one-shot transactions, each with
        // a unique host and a unique referrer so none of them cluster:
        // without a cap this is 10k live conversations for one client.
        let mut tracker = SessionTracker::new(300.0).with_caps(64, 4096);
        for i in 0..10_000 {
            let host = format!("h{i}.example");
            let referer = format!("http://unique-{i}.example/");
            tracker.assign(&get(i as f64 * 0.01, &host, "/x", Some(&referer)));
        }
        assert!(tracker.conversation_count() <= 64, "{}", tracker.conversation_count());
        assert_eq!(tracker.cap_evicted_count(), 10_000 - 64);
        assert_eq!(tracker.dropped_transaction_count(), 0);
    }

    #[test]
    fn transaction_cap_bounds_hostile_conversation() {
        let mut tracker = SessionTracker::new(300.0).with_caps(64, 8);
        for i in 0..20 {
            tracker.assign(&get(i as f64, "a.com", "/x", None));
        }
        assert_eq!(tracker.conversation_count(), 1);
        let conv = tracker.conversations().next().unwrap();
        assert_eq!(conv.transactions.len(), 8);
        // Activity is still acknowledged, so the conversation stays live.
        assert_eq!(conv.last_ts(), 19.0);
        assert!(!conv.last_tx_added_host);
        assert_eq!(tracker.dropped_transaction_count(), 12);
    }

    #[test]
    fn caps_do_not_perturb_normal_clustering() {
        let mut capped = SessionTracker::new(300.0).with_caps(512, 8192);
        let mut plain = SessionTracker::new(300.0);
        for t in [
            get(1.0, "a.com", "/x", None),
            get(2.0, "b.com", "/y", Some("http://a.com/x")),
            get(400.0, "a.com", "/x", None),
        ] {
            capped.assign(&t);
            plain.assign(&t);
        }
        assert_eq!(capped.conversation_count(), plain.conversation_count());
        assert_eq!(capped.cap_evicted_count(), 0);
        assert_eq!(capped.dropped_transaction_count(), 0);
    }

    #[test]
    fn redirect_targets_pre_register_hosts() {
        let mut tracker = SessionTracker::new(300.0);
        let hop = tx(
            1.0, "a.com", "/r", Method::Get, 302, PayloadClass::Empty, 0,
            None, Some("http://next.example/l"),
        );
        tracker.assign(&hop);
        // The follow-up request has its referrer stripped but targets the
        // redirect destination.
        let follow = get(2.0, "next.example", "/l", Some("http://stripped.example/"));
        tracker.assign(&follow);
        assert_eq!(tracker.conversation_count(), 1);
    }

    /// A budget of 1 byte with a short idle threshold: every idle
    /// conversation spills, and the next matching transaction thaws it
    /// with its full history intact.
    #[test]
    fn spill_demotes_idle_conversations_and_rehydrates_on_match() {
        let spill = SpillConfig { max_live_bytes: 1, max_spill_bytes: usize::MAX, min_idle_secs: 10.0 };
        let mut tracker = SessionTracker::new(300.0).with_spill(spill);
        tracker.assign(&get(0.0, "a.com", "/x", None));
        // 100 s later an unrelated conversation starts; a.com is idle
        // past the threshold, so the budget sweep freezes it.
        tracker.assign(&get(100.0, "b.com", "/y", Some("http://elsewhere.org/")));
        assert_eq!(tracker.spilled_count(), 1);
        assert_eq!(tracker.frozen_count(), 1);
        assert_eq!(tracker.conversation_count(), 1, "only b.com is live");
        assert!(tracker.spill_bytes() > 0);
        // A transaction matching the frozen conversation thaws it.
        tracker.assign(&get(101.0, "a.com", "/x2", None));
        assert_eq!(tracker.rehydrated_count(), 1);
        assert_eq!(tracker.frozen_count(), 0);
        assert_eq!(tracker.conversation_count(), 2);
        let a = tracker
            .conversations()
            .find(|c| c.hosts().any(|h| h == "a.com"))
            .expect("a.com conversation is live again");
        assert_eq!(a.transactions.len(), 2, "history survived the spill cycle");
        // Nothing was ever hard-evicted.
        assert_eq!(tracker.evicted_count(), 0);
        assert_eq!(tracker.cap_evicted_count(), 0);
        assert_eq!(tracker.spill_evicted_count(), 0);
    }

    #[test]
    fn spill_budget_hard_evicts_oldest_frozen_as_last_resort() {
        let spill = SpillConfig { max_live_bytes: 1, max_spill_bytes: 1, min_idle_secs: 10.0 };
        let mut tracker = SessionTracker::new(300.0).with_spill(spill);
        tracker.assign(&get(0.0, "a.com", "/x", None));
        // The sweep at t=100 freezes a.com, immediately overflows the
        // 1-byte frozen budget, and hard-evicts it.
        tracker.assign(&get(100.0, "b.com", "/y", Some("http://elsewhere.org/")));
        assert_eq!(tracker.spilled_count(), 1);
        assert_eq!(tracker.spill_evicted_count(), 1);
        assert_eq!(tracker.frozen_count(), 0);
        assert_eq!(tracker.spill_bytes(), 0);
        // a.com is gone: the same host now starts a fresh conversation.
        tracker.assign(&get(101.0, "a.com", "/x", None));
        assert_eq!(tracker.rehydrated_count(), 0);
        // Accounting anchor.
        assert_eq!(
            tracker.created_count(),
            (tracker.conversation_count()
                + tracker.frozen_count()
                + tracker.evicted_count()
                + tracker.cap_evicted_count()
                + tracker.spill_evicted_count()) as u64
        );
    }

    #[test]
    fn conversation_cap_demotes_instead_of_evicting_when_spill_enabled() {
        let spill = SpillConfig::default();
        let mut tracker = SessionTracker::new(300.0).with_caps(4, 4096).with_spill(spill);
        for i in 0..10 {
            let host = format!("h{i}.example");
            let referer = format!("http://unique-{i}.example/");
            tracker.assign(&get(i as f64 * 0.01, &host, "/x", Some(&referer)));
        }
        assert_eq!(tracker.conversation_count(), 4);
        assert_eq!(tracker.cap_evicted_count(), 0, "spill replaces cap eviction");
        assert_eq!(tracker.spilled_count(), 6);
        assert_eq!(tracker.frozen_count(), 6);
        // A frozen conversation still matches and rehydrates.
        tracker.assign(&get(1.0, "h0.example", "/again", None));
        assert_eq!(tracker.rehydrated_count(), 1);
    }

    #[test]
    fn state_round_trip_preserves_conversations_and_counters() {
        let mut tracker = SessionTracker::new(300.0).with_caps(64, 8);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(2.0, "b.com", "/y", Some("http://a.com/x")));
        for i in 0..12 {
            tracker.assign(&get(3.0 + i as f64, "a.com", "/more", None));
        }
        let mut t2 = get(50.0, "c.net", "/q", None);
        t2.client = nettrace::reassembly::Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 1234);
        tracker.assign(&t2);

        let state = tracker.state();
        let mut restored = SessionTracker::new(300.0).with_caps(64, 8);
        restored.restore(state.clone());

        assert_eq!(restored.conversation_count(), tracker.conversation_count());
        assert_eq!(restored.created_count(), tracker.created_count());
        assert_eq!(
            restored.dropped_transaction_count(),
            tracker.dropped_transaction_count()
        );
        // The restored tracker serializes to the identical state: the
        // WCG rebuild and scalar overwrite lose nothing.
        assert_eq!(restored.state().clients, state.clients);
        assert_eq!(restored.state().counters, state.counters);
        // And it behaves identically: the next transaction lands in the
        // same conversation with the same id in both trackers.
        let next = get(60.0, "b.com", "/z", None);
        let a = tracker.assign(&next).id;
        let b = restored.assign(&next).id;
        assert_eq!(a, b);
    }

    /// Spilling must never change clustering decisions: an aggressive
    /// budget run and an unbounded run see identical conversations.
    #[test]
    fn spill_is_behavior_neutral_for_clustering() {
        let spill = SpillConfig { max_live_bytes: 1, max_spill_bytes: usize::MAX, min_idle_secs: 0.0 };
        let mut spilled = SessionTracker::new(300.0).with_spill(spill);
        let mut plain = SessionTracker::new(300.0);
        let stream = [
            get(1.0, "a.com", "/x", None),
            get(2.0, "b.com", "/y", Some("http://a.com/x")),
            get(40.0, "c.org", "/q", Some("http://unrelated.example/")),
            get(41.0, "a.com", "/z", None),
            get(90.0, "c.org", "/r", None),
        ];
        for t in &stream {
            let a = spilled.assign(t).id;
            let b = plain.assign(t).id;
            assert_eq!(a, b, "same conversation for {}", t.host);
        }
        assert!(spilled.spilled_count() > 0, "the budget actually forced spills");
        assert_eq!(spilled.spilled_count(), spilled.rehydrated_count() + spilled.frozen_count() as u64);
        spilled.rehydrate_all();
        assert_eq!(spilled.frozen_count(), 0);
        assert_eq!(spilled.conversation_count(), plain.conversation_count());
    }
}
