//! Grouping a live HTTP stream into per-client conversations (Sec. V-B).
//!
//! The paper groups transactions using the session ID of the download and
//! redirection chains, falling back to a heuristic over referrer values
//! and timestamps when a client holds multiple session IDs. This module
//! implements that clustering:
//!
//! 1. an explicit session-ID match binds a transaction to a conversation,
//! 2. otherwise a referrer pointing at a URL or host already in a
//!    conversation binds it there,
//! 3. otherwise a repeated host binds it,
//! 4. otherwise a referrer-less transaction joins the client's most
//!    recently active conversation,
//! 5. otherwise a fresh conversation starts.
//!
//! Conversations idle longer than the timeout no longer accept new
//! transactions (the paper watches a WCG "until it stops growing").

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use nettrace::HttpTransaction;

use crate::features::TopoCache;
use crate::wcg::{PushOutcome, Wcg, WcgBuilder};

/// One conversation under observation.
#[derive(Debug, Clone)]
pub struct Conversation {
    /// Stable conversation id, unique per tracker and *client-scoped*:
    /// the high 32 bits are the client's IPv4 address, the low 32 bits a
    /// per-client creation counter. Because the id never depends on how
    /// other clients' transactions interleave, a stream sharded by
    /// client address assigns the same ids as a single tracker seeing
    /// the whole stream — the property the sharded engine's determinism
    /// contract rests on.
    pub id: u64,
    /// Transactions assigned so far, in arrival order.
    pub transactions: Vec<HttpTransaction>,
    /// Whether an alert has been raised for this conversation.
    pub alerted: bool,
    /// Whether the conversation is being watched (a clue fired).
    pub watched: bool,
    /// Redirect hops seen so far (incremental clue counter).
    pub redirects_seen: usize,
    /// Highest payload infectiousness likelihood downloaded so far.
    pub max_payload_likelihood: f64,
    /// Whether the most recent transaction introduced a host this
    /// conversation had not contacted before.
    pub last_tx_added_host: bool,
    /// Whether the most recent transaction was a redirect hop (3xx or a
    /// detectable redirect target). Computed once here so the detector
    /// does not re-derive redirect targets per transaction.
    pub last_tx_redirectish: bool,
    /// Incrementally maintained WCG over the stored transactions,
    /// equivalent to `Wcg::from_transactions(&self.transactions)` at
    /// every point.
    builder: WcgBuilder,
    /// Memoized topology-dependent feature values for the detector.
    feature_cache: TopoCache,
    hosts: BTreeSet<String>,
    session_ids: BTreeSet<String>,
    urls: BTreeSet<String>,
    last_ts: f64,
    /// Host of the most recent transaction *if* it was dropped by the
    /// per-conversation cap (cleared on every stored transaction).
    capped_host: Option<String>,
}

impl Conversation {
    fn new(id: u64, ts: f64) -> Self {
        Conversation {
            id,
            transactions: Vec::new(),
            alerted: false,
            watched: false,
            redirects_seen: 0,
            max_payload_likelihood: 0.0,
            last_tx_added_host: false,
            last_tx_redirectish: false,
            builder: WcgBuilder::new(),
            feature_cache: TopoCache::new(),
            hosts: BTreeSet::new(),
            session_ids: BTreeSet::new(),
            urls: BTreeSet::new(),
            last_ts: ts,
            capped_host: None,
        }
    }

    /// Time of the most recent transaction.
    pub fn last_ts(&self) -> f64 {
        self.last_ts
    }

    /// The incrementally maintained WCG over the stored transactions,
    /// its topology version, and the conversation's feature cache —
    /// split-borrowed so the caller can extract features while the cache
    /// is held mutably.
    pub fn wcg_state(&mut self) -> (&Wcg, u64, &mut TopoCache) {
        let Conversation { builder, feature_cache, .. } = self;
        (builder.wcg(), builder.topo_version(), feature_cache)
    }

    /// Records a transaction that was dropped by the per-conversation
    /// cap: activity is acknowledged (so idle/retention timers behave)
    /// but nothing is stored, bounding memory against a hostile endpoint
    /// streaming unbounded transactions into one conversation. Only the
    /// host survives (moved, not cloned) so an alert fired by a capped
    /// transaction can still name its trigger.
    fn note_capped(&mut self, tx: HttpTransaction) {
        self.last_tx_added_host = false;
        self.last_tx_redirectish =
            tx.is_redirect() || !crate::wcg::redirect::targets(&tx).is_empty();
        self.last_ts = self.last_ts.max(tx.ts);
        self.capped_host = Some(tx.host);
    }

    /// Host of the most recently arrived transaction, whether it was
    /// stored or dropped by the per-conversation cap.
    pub fn last_host(&self) -> &str {
        self.capped_host
            .as_deref()
            .or_else(|| self.transactions.last().map(|t| t.host.as_str()))
            .unwrap_or("")
    }

    /// Hosts contacted in this conversation.
    pub fn hosts(&self) -> impl Iterator<Item = &str> {
        self.hosts.iter().map(String::as_str)
    }

    fn absorb(&mut self, tx: HttpTransaction) {
        self.capped_host = None;
        self.last_tx_added_host = self.hosts.insert(tx.host.to_ascii_lowercase());
        if let Some(sid) = tx.session_id() {
            self.session_ids.insert(sid);
        }
        self.urls.insert(format!("http://{}{}", tx.host, tx.uri));
        // Redirect targets are derived once per transaction and shared by
        // host pre-registration, the detector's redirect clue, and the
        // incremental WCG push.
        let targets = crate::wcg::redirect::targets(&tx);
        self.last_tx_redirectish = tx.is_redirect() || !targets.is_empty();
        // Redirect targets become expected hosts, so follow-up requests
        // with stripped referrers still cluster correctly.
        for target in &targets {
            if let Some(host) = target.split_once("://").map(|(_, r)| r) {
                if let Some(h) = host.split(['/', '?', '#']).next() {
                    self.hosts
                        .insert(h.split(':').next().unwrap_or(h).to_ascii_lowercase());
                }
            }
        }
        self.last_ts = self.last_ts.max(tx.ts);
        // The transaction is moved into storage — the shard queues of the
        // stream engine hand transactions over by value, so the live path
        // never clones one.
        self.transactions.push(tx);
        let stored = self.transactions.last().expect("just pushed");
        if self.builder.push_with_targets(stored, &targets) == PushOutcome::NeedsRebuild {
            self.builder.rebuild(&self.transactions);
        }
    }

    fn matches(&self, tx: &HttpTransaction, referer_host: Option<&str>) -> bool {
        if let Some(sid) = tx.session_id() {
            if self.session_ids.contains(&sid) {
                return true;
            }
        }
        if let Some(r) = tx.referer() {
            if self.urls.contains(r) {
                return true;
            }
        }
        if let Some(h) = referer_host {
            if self.hosts.contains(h) {
                return true;
            }
        }
        self.hosts.contains(&tx.host.to_ascii_lowercase())
    }
}

/// One client's conversations plus its private id counter. Conversation
/// ids are `(client_ip << 32) | local_counter`, so two trackers that see
/// the same per-client substreams assign identical ids regardless of how
/// the clients' transactions interleave — the invariant that lets the
/// sharded stream engine reproduce single-threaded output bit for bit.
#[derive(Debug, Default)]
struct ClientSessions {
    convs: Vec<Conversation>,
    next_local: u32,
}

/// Per-client conversation tracker.
#[derive(Debug)]
pub struct SessionTracker {
    clients: BTreeMap<Ipv4Addr, ClientSessions>,
    idle_timeout: f64,
    retention: Option<f64>,
    /// Live conversation count, maintained incrementally so the
    /// per-transaction telemetry gauge update is O(1) instead of a sum
    /// over all clients.
    live: usize,
    evicted: usize,
    max_conversations: usize,
    max_transactions: usize,
    cap_evicted: usize,
    dropped_transactions: u64,
}

impl SessionTracker {
    /// Creates a tracker; conversations idle longer than `idle_timeout`
    /// seconds stop accepting transactions. All conversations are kept in
    /// memory (forensic mode) — use [`SessionTracker::with_retention`] for
    /// long-running deployments.
    pub fn new(idle_timeout: f64) -> Self {
        SessionTracker {
            clients: BTreeMap::new(),
            idle_timeout,
            retention: None,
            live: 0,
            evicted: 0,
            max_conversations: usize::MAX,
            max_transactions: usize::MAX,
            cap_evicted: 0,
            dropped_transactions: 0,
        }
    }

    /// Creates a tracker that evicts conversations idle longer than
    /// `retention` seconds, bounding memory on long-running proxies. An
    /// evicted conversation can no longer be matched or re-alerted; its
    /// alert (if any) was already emitted when it fired.
    pub fn with_retention(idle_timeout: f64, retention: f64) -> Self {
        SessionTracker { retention: Some(retention.max(idle_timeout)), ..Self::new(idle_timeout) }
    }

    /// Caps tracker state against hostile clients: at most
    /// `max_conversations_per_client` live conversations per client (the
    /// least-recently-active one is evicted to make room) and at most
    /// `max_transactions_per_conversation` stored transactions per
    /// conversation (further transactions refresh the activity timestamp
    /// but are not stored). Both caps are clamped to at least 1.
    pub fn with_caps(
        mut self,
        max_conversations_per_client: usize,
        max_transactions_per_conversation: usize,
    ) -> Self {
        self.max_conversations = max_conversations_per_client.max(1);
        self.max_transactions = max_transactions_per_conversation.max(1);
        self
    }

    /// Number of conversations evicted so far.
    pub fn evicted_count(&self) -> usize {
        self.evicted
    }

    /// Conversations evicted by the per-client conversation cap (as
    /// opposed to the retention window).
    pub fn cap_evicted_count(&self) -> usize {
        self.cap_evicted
    }

    /// Transactions dropped by the per-conversation transaction cap.
    pub fn dropped_transaction_count(&self) -> u64 {
        self.dropped_transactions
    }

    /// Drops every conversation of every client whose last activity
    /// precedes `now - retention`. No-op without a retention window.
    ///
    /// A client whose conversations were all evicted loses its map entry
    /// (and with it the local id counter), so conversation ids can be
    /// reused after the client returns — retention mode trades the
    /// unique-id guarantee for bounded memory, which is why the sharded
    /// engine's bit-identity contract is stated for `retention: None`.
    fn evict_stale(&mut self, now: f64) {
        let Some(retention) = self.retention else { return };
        for entry in self.clients.values_mut() {
            let before = entry.convs.len();
            entry.convs.retain(|c| now - c.last_ts() <= retention);
            self.evicted += before - entry.convs.len();
            self.live -= before - entry.convs.len();
        }
        self.clients.retain(|_, entry| !entry.convs.is_empty());
    }

    /// Assigns a transaction to a conversation (existing or new) and
    /// returns a mutable reference to it. Clones the transaction; the
    /// live path uses [`SessionTracker::assign_owned`] to move it
    /// instead.
    pub fn assign(&mut self, tx: &HttpTransaction) -> &mut Conversation {
        self.assign_owned(tx.clone())
    }

    /// Assigns an owned transaction to a conversation (existing or new)
    /// and returns a mutable reference to it. The transaction is moved
    /// into the conversation's storage — no clone on the hot path.
    pub fn assign_owned(&mut self, tx: HttpTransaction) -> &mut Conversation {
        self.evict_stale(tx.ts);
        let client = tx.client.addr;
        let idle_timeout = self.idle_timeout;
        let entry = self.clients.entry(client).or_default();
        let convs = &mut entry.convs;
        let referer_host = tx.referer().and_then(|r| {
            let rest = r.split_once("://").map_or(r, |(_, x)| x);
            rest.split(['/', '?', '#']).next().map(|h| h.to_ascii_lowercase())
        });

        let active = |c: &Conversation| tx.ts - c.last_ts() <= idle_timeout;
        // Pass 1: structural match among active conversations.
        let mut chosen: Option<usize> = None;
        for (i, c) in convs.iter().enumerate() {
            if active(c) && c.matches(&tx, referer_host.as_deref()) {
                chosen = Some(i);
                break;
            }
        }
        // Pass 2: referrer-less transactions join the most recently
        // active conversation (timestamp heuristic).
        if chosen.is_none() && tx.referer().is_none() && tx.session_id().is_none() {
            chosen = convs
                .iter()
                .enumerate()
                .filter(|(_, c)| active(c))
                .max_by(|a, b| a.1.last_ts().total_cmp(&b.1.last_ts()))
                .map(|(i, _)| i);
        }
        let idx = match chosen {
            Some(i) => i,
            None => {
                if convs.len() >= self.max_conversations {
                    // At the cap: evict the least-recently-active
                    // conversation to make room. Its alert (if any) was
                    // already emitted when it fired.
                    let lru = convs
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.last_ts().total_cmp(&b.1.last_ts()))
                        .map(|(i, _)| i)
                        .expect("cap is >= 1, so a full client has conversations");
                    convs.remove(lru);
                    self.cap_evicted += 1;
                    self.live -= 1;
                }
                // Client-scoped id: high 32 bits the client address, low
                // 32 bits the per-client creation counter.
                let id = (u64::from(u32::from(client)) << 32) | u64::from(entry.next_local);
                entry.next_local = entry.next_local.wrapping_add(1);
                convs.push(Conversation::new(id, tx.ts));
                self.live += 1;
                convs.len() - 1
            }
        };
        let conv = &mut convs[idx];
        if conv.transactions.len() >= self.max_transactions {
            self.dropped_transactions += 1;
            conv.note_capped(tx);
        } else {
            conv.absorb(tx);
        }
        conv
    }

    /// All conversations of all clients (for offline/forensic summaries).
    pub fn conversations(&self) -> impl Iterator<Item = &Conversation> {
        self.clients.values().flat_map(|entry| entry.convs.iter())
    }

    /// Number of live conversations (O(1); maintained incrementally).
    pub fn conversation_count(&self) -> usize {
        debug_assert_eq!(
            self.live,
            self.clients.values().map(|entry| entry.convs.len()).sum::<usize>()
        );
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcg::tests::tx;
    use nettrace::http::Method;
    use nettrace::payload::PayloadClass;

    fn get(ts: f64, host: &str, uri: &str, referer: Option<&str>) -> HttpTransaction {
        tx(ts, host, uri, Method::Get, 200, PayloadClass::Html, 100, referer, None)
    }

    #[test]
    fn referrer_chain_clusters_into_one_conversation() {
        let mut tracker = SessionTracker::new(300.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(2.0, "b.com", "/y", Some("http://a.com/x")));
        tracker.assign(&get(3.0, "c.com", "/z", Some("http://b.com/y")));
        assert_eq!(tracker.conversation_count(), 1);
        let conv = tracker.conversations().next().unwrap();
        assert_eq!(conv.transactions.len(), 3);
    }

    #[test]
    fn unrelated_hosts_with_referrers_split() {
        let mut tracker = SessionTracker::new(300.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(2.0, "other.net", "/q", Some("http://elsewhere.org/")));
        assert_eq!(tracker.conversation_count(), 2);
    }

    #[test]
    fn session_id_binds_across_hosts() {
        let mut tracker = SessionTracker::new(300.0);
        let mut t1 = get(1.0, "a.com", "/x", None);
        t1.req_headers.append("Cookie", "sid=abc");
        let mut t2 = get(100.0, "z.net", "/q?r=1", Some("http://unrelated.example/"));
        t2.req_headers.append("Cookie", "sid=abc");
        tracker.assign(&t1);
        tracker.assign(&t2);
        assert_eq!(tracker.conversation_count(), 1);
    }

    #[test]
    fn referrerless_posts_join_most_recent_conversation() {
        // C&C callbacks carry no referrer and hit fresh hosts; the
        // timestamp heuristic binds them to the active conversation.
        let mut tracker = SessionTracker::new(300.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        let post = tx(
            30.0, "198.51.100.77", "/gate", Method::Post, 200,
            PayloadClass::Text, 10, None, None,
        );
        tracker.assign(&post);
        assert_eq!(tracker.conversation_count(), 1);
    }

    #[test]
    fn idle_timeout_starts_new_conversation() {
        let mut tracker = SessionTracker::new(60.0);
        tracker.assign(&get(1.0, "a.com", "/x", None));
        tracker.assign(&get(500.0, "a.com", "/x", None));
        assert_eq!(tracker.conversation_count(), 2);
    }

    #[test]
    fn clients_are_isolated() {
        let mut tracker = SessionTracker::new(300.0);
        let t1 = get(1.0, "a.com", "/x", None);
        let mut t2 = get(2.0, "a.com", "/x", None);
        t2.client = nettrace::reassembly::Endpoint::new(Ipv4Addr::new(10, 0, 0, 99), 1234);
        tracker.assign(&t1);
        tracker.assign(&t2);
        assert_eq!(tracker.conversation_count(), 2);
    }

    #[test]
    fn retention_bounds_memory_on_long_streams() {
        let mut tracker = SessionTracker::with_retention(60.0, 600.0);
        // A day of hourly one-shot conversations from one client.
        for hour in 0..24 {
            let t = hour as f64 * 3600.0;
            tracker.assign(&get(t, "a.com", "/x", None));
        }
        assert!(tracker.conversation_count() <= 2, "{}", tracker.conversation_count());
        assert!(tracker.evicted_count() >= 22, "{}", tracker.evicted_count());
    }

    #[test]
    fn forensic_mode_keeps_everything() {
        let mut tracker = SessionTracker::new(60.0);
        for hour in 0..24 {
            tracker.assign(&get(hour as f64 * 3600.0, "a.com", "/x", None));
        }
        assert_eq!(tracker.conversation_count(), 24);
        assert_eq!(tracker.evicted_count(), 0);
    }

    #[test]
    fn retention_never_undercuts_idle_timeout() {
        let mut tracker = SessionTracker::with_retention(300.0, 1.0);
        tracker.assign(&get(0.0, "a.com", "/x", None));
        // 200 s later: inside idle timeout, must still match despite the
        // (clamped) 1-second retention request.
        tracker.assign(&get(200.0, "a.com", "/x", None));
        assert_eq!(tracker.conversation_count(), 1);
    }

    #[test]
    fn conversation_cap_bounds_hostile_client() {
        // A hostile client spraying 10k one-shot transactions, each with
        // a unique host and a unique referrer so none of them cluster:
        // without a cap this is 10k live conversations for one client.
        let mut tracker = SessionTracker::new(300.0).with_caps(64, 4096);
        for i in 0..10_000 {
            let host = format!("h{i}.example");
            let referer = format!("http://unique-{i}.example/");
            tracker.assign(&get(i as f64 * 0.01, &host, "/x", Some(&referer)));
        }
        assert!(tracker.conversation_count() <= 64, "{}", tracker.conversation_count());
        assert_eq!(tracker.cap_evicted_count(), 10_000 - 64);
        assert_eq!(tracker.dropped_transaction_count(), 0);
    }

    #[test]
    fn transaction_cap_bounds_hostile_conversation() {
        let mut tracker = SessionTracker::new(300.0).with_caps(64, 8);
        for i in 0..20 {
            tracker.assign(&get(i as f64, "a.com", "/x", None));
        }
        assert_eq!(tracker.conversation_count(), 1);
        let conv = tracker.conversations().next().unwrap();
        assert_eq!(conv.transactions.len(), 8);
        // Activity is still acknowledged, so the conversation stays live.
        assert_eq!(conv.last_ts(), 19.0);
        assert!(!conv.last_tx_added_host);
        assert_eq!(tracker.dropped_transaction_count(), 12);
    }

    #[test]
    fn caps_do_not_perturb_normal_clustering() {
        let mut capped = SessionTracker::new(300.0).with_caps(512, 8192);
        let mut plain = SessionTracker::new(300.0);
        for t in [
            get(1.0, "a.com", "/x", None),
            get(2.0, "b.com", "/y", Some("http://a.com/x")),
            get(400.0, "a.com", "/x", None),
        ] {
            capped.assign(&t);
            plain.assign(&t);
        }
        assert_eq!(capped.conversation_count(), plain.conversation_count());
        assert_eq!(capped.cap_evicted_count(), 0);
        assert_eq!(capped.dropped_transaction_count(), 0);
    }

    #[test]
    fn redirect_targets_pre_register_hosts() {
        let mut tracker = SessionTracker::new(300.0);
        let hop = tx(
            1.0, "a.com", "/r", Method::Get, 302, PayloadClass::Empty, 0,
            None, Some("http://next.example/l"),
        );
        tracker.assign(&hop);
        // The follow-up request has its referrer stripped but targets the
        // redirect destination.
        let follow = get(2.0, "next.example", "/l", Some("http://stripped.example/"));
        tracker.assign(&follow);
        assert_eq!(tracker.conversation_count(), 1);
    }
}
