//! On-the-wire detection (Sec. V-B).
//!
//! The detector sits on a live HTTP transaction stream (network edge or
//! web proxy). For every transaction it:
//!
//! 1. weeds out trusted-vendor traffic,
//! 2. clusters the transaction into a per-client conversation
//!    ([`session`]),
//! 3. updates the conversation's incremental clue counters ([`clue`]),
//! 4. when a clue has fired (or the conversation is already being
//!    watched), rebuilds the potential-infection WCG around it, extracts
//!    features, and queries the ensemble random forest,
//! 5. raises an [`Alert`] when the classifier deems the WCG infectious;
//!    otherwise it keeps watching the conversation as it grows.

pub mod clue;
pub mod session;

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

use mlearn::slot::ModelSlot;
use nettrace::payload::PayloadClass;
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};
use telemetry::Registry;

use crate::classifier::Classifier;
use crate::metrics::DetectorMetrics;
use crate::trusted::TrustedHosts;
use crate::wcg::Wcg;
pub use clue::ClueConfig;
pub use session::{Conversation, SessionTracker, SpillConfig, TrackerState};

/// When a *watched* conversation is re-classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReclassifyPolicy {
    /// After every transaction — the paper's description ("each update of
    /// a WCG then triggers feature extraction and invoking of the ERF").
    EveryTransaction,
    /// Only when the update is likely to move the verdict: a new host
    /// joins the conversation, a redirect is observed, or a risky payload
    /// is downloaded. Subresource chatter (images, scripts, beacons)
    /// skips the WCG rebuild, cutting classifier invocations at equal
    /// detection.
    OnSignificantUpdate,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Clue thresholds.
    pub clue: ClueConfig,
    /// Conversation idle timeout in seconds.
    pub idle_timeout: f64,
    /// Classifier probability at or above which an alert is raised.
    pub alert_threshold: f64,
    /// Trusted-vendor allowlist (empty list disables weed-out).
    pub trusted: TrustedHosts,
    /// Evict conversations idle longer than this many seconds (bounds
    /// memory on long-running proxies). `None` keeps every conversation —
    /// the right mode for forensic replay, where the final report walks
    /// all of them.
    pub retention: Option<f64>,
    /// Re-classification cadence for watched conversations.
    pub reclassify: ReclassifyPolicy,
    /// At most this many live conversations per client; the
    /// least-recently-active one is evicted to make room. Guards tracker
    /// memory against a hostile client spraying unclusterable
    /// transactions.
    pub max_conversations_per_client: usize,
    /// At most this many stored transactions per conversation; further
    /// transactions refresh activity but are not stored. Guards against
    /// a single endless conversation.
    pub max_transactions_per_conversation: usize,
    /// Worker threads for batch scoring phases (forensic replay's final
    /// verdict pass). `0` means "use the machine's available parallelism".
    /// Scores are bit-identical at any setting.
    pub scoring_threads: usize,
    /// Score watched conversations from the incrementally maintained WCG
    /// (each conversation folds transactions into a
    /// [`WcgBuilder`](crate::wcg::WcgBuilder) as they arrive) instead of
    /// rebuilding the graph from scratch per classification. Feature
    /// vectors are bit-identical either way; `false` exists for A/B
    /// benchmarking and as an escape hatch.
    pub incremental: bool,
    /// LRU spill tier budgets: when set, idle conversations over the
    /// live-memory budget are demoted to a compact frozen form (and
    /// rehydrated on their next transaction) instead of staying
    /// resident, and hard eviction becomes the last resort. `None`
    /// disables the tier (the default).
    pub spill: Option<SpillConfig>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            clue: ClueConfig::default(),
            idle_timeout: 300.0,
            alert_threshold: 0.5,
            trusted: TrustedHosts::default(),
            retention: None,
            reclassify: ReclassifyPolicy::EveryTransaction,
            max_conversations_per_client: 512,
            max_transactions_per_conversation: 8192,
            scoring_threads: 0,
            incremental: true,
            spill: None,
        }
    }
}

/// An infection alert.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Alert {
    /// The client the infection WCG belongs to.
    pub client: Ipv4Addr,
    /// Conversation id within the detector.
    pub conversation_id: u64,
    /// Timestamp of the transaction that triggered the alert.
    pub ts: f64,
    /// Classifier infection probability at alert time.
    pub score: f64,
    /// Host of the triggering transaction.
    pub trigger_host: String,
    /// Payload type of the triggering transaction.
    pub trigger_payload: PayloadClass,
    /// Conversation size (transactions) at alert time.
    pub conversation_size: usize,
    /// Generation of the model that produced the score — every alert is
    /// attributable to exactly one hot-reloadable model version.
    pub model_version: u64,
}

/// Serializable image of a detector: the tracker state plus the alert
/// log and monotone totals. This is what the stream engine snapshots
/// per shard and re-partitions on restore.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorState {
    /// Conversation tracker image.
    pub tracker: TrackerState,
    /// Alerts raised so far (the full log, so a restored run reports
    /// whole-run totals).
    pub alerts: Vec<Alert>,
    /// Transactions processed after weed-out.
    pub transactions_seen: u64,
    /// Classifier invocations.
    pub classifications: u64,
}

impl DetectorState {
    /// Merges per-shard states into one logical state: clients sorted
    /// by address (disjoint across shards by construction), counters
    /// summed, alerts ordered by `(ts, conversation id)`.
    pub fn merge(states: impl IntoIterator<Item = DetectorState>) -> DetectorState {
        let mut clients = Vec::new();
        let mut alerts = Vec::new();
        let mut counters = session::TrackerCounters::default();
        let (mut seen, mut classifications) = (0u64, 0u64);
        for state in states {
            clients.extend(state.tracker.clients);
            alerts.extend(state.alerts);
            let c = state.tracker.counters;
            counters.created += c.created;
            counters.evicted += c.evicted;
            counters.cap_evicted += c.cap_evicted;
            counters.spill_evicted += c.spill_evicted;
            counters.spilled += c.spilled;
            counters.rehydrated += c.rehydrated;
            counters.dropped_transactions += c.dropped_transactions;
            seen += state.transactions_seen;
            classifications += state.classifications;
        }
        clients.sort_by_key(|r| r.addr);
        alerts.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.conversation_id.cmp(&b.conversation_id)));
        DetectorState {
            tracker: TrackerState { clients, counters },
            alerts,
            transactions_seen: seen,
            classifications,
        }
    }

    /// Splits a merged state across `shards` detectors, routing each
    /// client by `route` (the engine's shard hash). Totals — counters,
    /// the alert log, transaction counts — cannot be attributed back to
    /// per-client slices, so they all land on shard 0; sums across
    /// shards are preserved, which is all the whole-run report needs.
    pub fn partition(
        self,
        shards: usize,
        route: impl Fn(Ipv4Addr) -> usize,
    ) -> Vec<DetectorState> {
        let mut out: Vec<DetectorState> = (0..shards)
            .map(|_| DetectorState {
                tracker: TrackerState {
                    clients: Vec::new(),
                    counters: session::TrackerCounters::default(),
                },
                alerts: Vec::new(),
                transactions_seen: 0,
                classifications: 0,
            })
            .collect();
        for record in self.tracker.clients {
            let shard = route(record.addr) % shards;
            out[shard].tracker.clients.push(record);
        }
        out[0].tracker.counters = self.tracker.counters;
        out[0].alerts = self.alerts;
        out[0].transactions_seen = self.transactions_seen;
        out[0].classifications = self.classifications;
        out
    }
}

/// Streaming malware detector.
///
/// # Example
///
/// ```
/// use dynaminer::classifier::{build_dataset, Classifier};
/// use dynaminer::detector::{DetectorConfig, OnTheWireDetector};
/// use rand::{rngs::StdRng, SeedableRng};
/// use synthtraffic::{benign::generate_benign, episode::generate_infection};
/// use synthtraffic::{BenignScenario, EkFamily};
///
/// // Train on a tiny corpus, then stream one infection through.
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut items = Vec::new();
/// for i in 0..8 {
///     items.push((generate_infection(&mut rng, EkFamily::ALL[i], 1.4e9).transactions, true));
///     items.push((generate_benign(&mut rng, BenignScenario::Search, 1.43e9).transactions, false));
/// }
/// let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
/// let classifier = Classifier::fit_default(&data, 1);
///
/// let mut detector = OnTheWireDetector::new(classifier, DetectorConfig::default());
/// let episode = generate_infection(&mut rng, EkFamily::Magnitude, 1.45e9);
/// for tx in &episode.transactions {
///     detector.observe(tx);
/// }
/// assert!(detector.transactions_seen() > 0);
/// ```
#[derive(Debug)]
pub struct OnTheWireDetector {
    /// Hot-swappable model slot. The detector takes a fresh snapshot of
    /// the deployed model per classification, so a swap lands between
    /// transactions — never mid-inference, never dropping one.
    model: ModelSlot<Classifier>,
    config: DetectorConfig,
    tracker: SessionTracker,
    alerts: Vec<Alert>,
    transactions_seen: usize,
    classifications: usize,
    /// Reusable feature-extraction workspace (adjacency buffers survive
    /// across classifications).
    extractor: crate::features::FeatureExtractor,
    telemetry: Registry,
    metrics: DetectorMetrics,
    /// Tracker eviction totals already folded into the telemetry
    /// counters (the tracker keeps running sums; counters take deltas).
    synced_retention_evictions: usize,
    synced_cap_evictions: usize,
    synced_dropped_transactions: u64,
    synced_spilled: u64,
    synced_rehydrated: u64,
    synced_spill_evictions: usize,
    /// Model version last seen on the classification path, to count
    /// observed hot-reloads.
    last_model_version: u64,
}

impl OnTheWireDetector {
    /// Creates a detector around a trained classifier, with telemetry
    /// going to a private registry (see
    /// [`OnTheWireDetector::telemetry`]).
    pub fn new(classifier: Classifier, config: DetectorConfig) -> Self {
        Self::with_telemetry(classifier, config, &Registry::new())
    }

    /// Creates a detector whose metrics register into `registry`, so
    /// several pipeline stages (or several detectors) aggregate into
    /// one exposition.
    pub fn with_telemetry(
        classifier: Classifier,
        config: DetectorConfig,
        registry: &Registry,
    ) -> Self {
        Self::with_model_slot(ModelSlot::new(classifier), config, registry)
    }

    /// Creates a detector around a shared [`ModelSlot`] — the stream
    /// engine hands every shard the same slot, so one
    /// [`ModelSlot::swap`] hot-reloads all shards atomically.
    pub fn with_model_slot(
        model: ModelSlot<Classifier>,
        config: DetectorConfig,
        registry: &Registry,
    ) -> Self {
        let mut tracker = match config.retention {
            Some(retention) => SessionTracker::with_retention(config.idle_timeout, retention),
            None => SessionTracker::new(config.idle_timeout),
        }
        .with_caps(config.max_conversations_per_client, config.max_transactions_per_conversation);
        if let Some(spill) = config.spill {
            tracker = tracker.with_spill(spill);
        }
        let last_model_version = model.version();
        OnTheWireDetector {
            model,
            config,
            tracker,
            alerts: Vec::new(),
            transactions_seen: 0,
            classifications: 0,
            extractor: crate::features::FeatureExtractor::new(),
            telemetry: registry.clone(),
            metrics: DetectorMetrics::new(registry),
            synced_retention_evictions: 0,
            synced_cap_evictions: 0,
            synced_dropped_transactions: 0,
            synced_spilled: 0,
            synced_rehydrated: 0,
            synced_spill_evictions: 0,
            last_model_version,
        }
    }

    /// Processes one transaction; returns an alert if this update tipped
    /// its conversation into the infectious verdict. Clones the
    /// transaction into conversation storage; cross-thread callers (the
    /// sharded stream engine's shard queues) use
    /// [`OnTheWireDetector::observe_owned`] to move it instead.
    pub fn observe(&mut self, tx: &HttpTransaction) -> Option<Alert> {
        self.observe_owned(tx.clone())
    }

    /// Processes one owned transaction, moving it into conversation
    /// storage — the zero-clone path for shard queues that hand
    /// transactions over by value.
    pub fn observe_owned(&mut self, tx: HttpTransaction) -> Option<Alert> {
        let out = self.observe_inner(tx);
        self.sync_tracker_metrics();
        out
    }

    /// Folds the tracker's running totals into the monotone telemetry
    /// counters (delta since the last sync) and refreshes the
    /// conversation-tier gauges.
    fn sync_tracker_metrics(&mut self) {
        let m = &self.metrics;
        let evicted = self.tracker.evicted_count();
        m.retention_evictions.add((evicted - self.synced_retention_evictions) as u64);
        self.synced_retention_evictions = evicted;
        let cap_evicted = self.tracker.cap_evicted_count();
        m.cap_evictions.add((cap_evicted - self.synced_cap_evictions) as u64);
        self.synced_cap_evictions = cap_evicted;
        let dropped = self.tracker.dropped_transaction_count();
        m.dropped_transactions.add(dropped - self.synced_dropped_transactions);
        self.synced_dropped_transactions = dropped;
        let spilled = self.tracker.spilled_count();
        m.spilled_conversations.add(spilled - self.synced_spilled);
        self.synced_spilled = spilled;
        let rehydrated = self.tracker.rehydrated_count();
        m.rehydrations.add(rehydrated - self.synced_rehydrated);
        self.synced_rehydrated = rehydrated;
        let spill_evicted = self.tracker.spill_evicted_count();
        m.spill_evictions.add((spill_evicted - self.synced_spill_evictions) as u64);
        self.synced_spill_evictions = spill_evicted;
        m.conversations_live.set(self.tracker.conversation_count() as i64);
        m.conversations_frozen.set(self.tracker.frozen_count() as i64);
        m.spill_bytes.set(self.tracker.spill_bytes() as i64);
    }

    fn observe_inner(&mut self, tx: HttpTransaction) -> Option<Alert> {
        if self.config.trusted.is_trusted(&tx.host) {
            self.metrics.trusted_weeded.inc();
            return None; // weed out trusted-vendor noise
        }
        self.transactions_seen += 1;
        self.metrics.transactions.inc();
        // Alert context and the download clue are captured before the
        // transaction is moved into the tracker.
        let client = tx.client.addr;
        let ts = tx.ts;
        let trigger_payload = tx.payload_class;
        let download = clue::download_likelihood(&tx);
        let conv = self.tracker.assign_owned(tx);
        // Incremental clue counters. The conversation already derived
        // redirect targets while absorbing the transaction; reuse its
        // verdict instead of recomputing them.
        let is_redirect = conv.last_tx_redirectish;
        if is_redirect {
            conv.redirects_seen += 1;
        }
        if let Some(likelihood) = download {
            conv.max_payload_likelihood = conv.max_payload_likelihood.max(likelihood);
        }
        if conv.alerted {
            return None; // session already terminated by an alert
        }
        let fired =
            clue::is_clue(conv.redirects_seen, conv.max_payload_likelihood, &self.config.clue);
        if !fired && !conv.watched {
            return None;
        }
        let first_look = !conv.watched;
        conv.watched = true;
        if first_look {
            self.metrics.clues.inc();
        }
        let significant_download =
            download.is_some_and(|l| l >= self.config.clue.min_payload_likelihood);
        if self.config.reclassify == ReclassifyPolicy::OnSignificantUpdate
            && !first_look
            && !conv.last_tx_added_host
            && !is_redirect
            && !significant_download
        {
            self.metrics.reclassify_skipped.inc();
            return None; // subresource chatter: verdict is unlikely to move
        }
        self.classifications += 1;
        self.metrics.wcg_rebuilds.inc();
        if !first_look {
            self.metrics.reclassifications.inc();
        }
        // Query the classifier over the conversation's WCG. The
        // incremental path reads the graph each conversation has been
        // folding transactions into (and reuses memoized topology
        // features while the node/edge structure is unchanged); the
        // scratch path goes back in time and rebuilds it wholesale, as
        // the paper describes.
        let started = Instant::now();
        let fv = if self.config.incremental {
            let (wcg, topo_version, cache) = conv.wcg_state();
            self.extractor.extract_memoized(wcg, topo_version, cache)
        } else {
            let wcg = Wcg::from_transactions(&conv.transactions);
            crate::features::extract(&wcg)
        };
        self.metrics.feature_extraction_ns.observe_since(started);
        // Snapshot the deployed model for this classification: a
        // concurrent hot-reload lands between transactions, never
        // mid-inference, and the alert records which generation scored.
        let (model, model_version) = self.model.load();
        if model_version != self.last_model_version {
            self.metrics.model_reloads.inc();
            self.last_model_version = model_version;
        }
        let started = Instant::now();
        let score = model.score_features(&fv);
        self.metrics.scoring_ns.observe_since(started);
        if score >= self.config.alert_threshold {
            conv.alerted = true;
            self.metrics.alerts.inc();
            let alert = Alert {
                client,
                conversation_id: conv.id,
                ts,
                score,
                trigger_host: conv.last_host().to_string(),
                trigger_payload,
                conversation_size: conv.transactions.len(),
                model_version,
            };
            self.alerts.push(alert.clone());
            return Some(alert);
        }
        None
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Transactions processed (after weed-out).
    pub fn transactions_seen(&self) -> usize {
        self.transactions_seen
    }

    /// WCG rebuild + classification invocations so far.
    pub fn classification_count(&self) -> usize {
        self.classifications
    }

    /// The conversation tracker (for forensic summaries).
    pub fn tracker(&self) -> &SessionTracker {
        &self.tracker
    }

    /// The registry this detector's metrics live in (private unless one
    /// was shared via [`OnTheWireDetector::with_telemetry`]).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The detector's metric handles.
    pub fn metrics(&self) -> &DetectorMetrics {
        &self.metrics
    }

    /// Snapshot of the currently deployed classifier.
    pub fn classifier(&self) -> Arc<Classifier> {
        self.model.load().0
    }

    /// The hot-reloadable model slot (shared: swapping through a clone
    /// of this handle reloads the detector).
    pub fn model_slot(&self) -> &ModelSlot<Classifier> {
        &self.model
    }

    /// Version of the currently deployed model.
    pub fn model_version(&self) -> u64 {
        self.model.version()
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Thaws every spilled conversation back to the live tier (and
    /// syncs the rehydration telemetry). Forensic verdict passes call
    /// this so the final per-conversation sweep sees everything.
    pub fn rehydrate_all(&mut self) {
        self.tracker.rehydrate_all();
        self.sync_tracker_metrics();
    }

    /// Serializable image of this detector's mutable state (the model
    /// itself is restored separately through the CLI's validated model
    /// files, not embedded in snapshots).
    pub fn state(&self) -> DetectorState {
        DetectorState {
            tracker: self.tracker.state(),
            alerts: self.alerts.clone(),
            transactions_seen: self.transactions_seen as u64,
            classifications: self.classifications as u64,
        }
    }

    /// Replaces this detector's mutable state with a snapshot image.
    /// The telemetry sync marks are fast-forwarded to the restored
    /// totals, so the monotone counters only record post-restore work —
    /// the pre-snapshot sums travel in the snapshot's own telemetry
    /// image instead of being double-counted here.
    pub fn restore_state(&mut self, state: DetectorState) {
        self.tracker.restore(state.tracker);
        self.alerts = state.alerts;
        self.transactions_seen = state.transactions_seen as usize;
        self.classifications = state.classifications as usize;
        self.synced_retention_evictions = self.tracker.evicted_count();
        self.synced_cap_evictions = self.tracker.cap_evicted_count();
        self.synced_dropped_transactions = self.tracker.dropped_transaction_count();
        self.synced_spilled = self.tracker.spilled_count();
        self.synced_rehydrated = self.tracker.rehydrated_count();
        self.synced_spill_evictions = self.tracker.spill_evicted_count();
        self.last_model_version = self.model.version();
        self.metrics.conversations_live.set(self.tracker.conversation_count() as i64);
        self.metrics.conversations_frozen.set(self.tracker.frozen_count() as i64);
        self.metrics.spill_bytes.set(self.tracker.spill_bytes() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{build_dataset, Classifier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synthtraffic::benign::generate_benign;
    use synthtraffic::episode::generate_infection;
    use synthtraffic::{BenignScenario, EkFamily};

    fn trained_classifier(seed: u64) -> Classifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut items: Vec<(Vec<nettrace::HttpTransaction>, bool)> = Vec::new();
        for i in 0..40 {
            let fam = EkFamily::ALL[i % 10];
            items.push((generate_infection(&mut rng, fam, 1_400_000_000.0).transactions, true));
            let sc = BenignScenario::WEIGHTED[i % 8].0;
            items.push((generate_benign(&mut rng, sc, 1_430_000_000.0).transactions, false));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 99)
    }

    #[test]
    fn detects_infections_in_replayed_stream() {
        let clf = trained_classifier(1);
        let mut rng = StdRng::seed_from_u64(50);
        let mut detected = 0usize;
        let n = 12;
        for i in 0..n {
            let ep = generate_infection(&mut rng, EkFamily::ALL[i % 10], 1_400_000_000.0);
            let mut det = OnTheWireDetector::new(clf.clone(), DetectorConfig::default());
            for tx in &ep.transactions {
                det.observe(tx);
            }
            detected += usize::from(!det.alerts().is_empty());
        }
        assert!(detected * 10 >= n * 6, "detected {detected}/{n}");
    }

    #[test]
    fn mostly_quiet_on_benign_streams() {
        let clf = trained_classifier(2);
        let mut rng = StdRng::seed_from_u64(51);
        let mut alerts = 0usize;
        let n = 16;
        for i in 0..n {
            let ep = generate_benign(
                &mut rng,
                BenignScenario::WEIGHTED[i % 8].0,
                1_430_000_000.0,
            );
            let mut det = OnTheWireDetector::new(clf.clone(), DetectorConfig::default());
            for tx in &ep.transactions {
                det.observe(tx);
            }
            alerts += det.alerts().len();
        }
        assert!(alerts <= n / 4, "{alerts} alerts on {n} benign episodes");
    }

    #[test]
    fn at_most_one_alert_per_conversation() {
        let clf = trained_classifier(3);
        let mut rng = StdRng::seed_from_u64(52);
        let ep = generate_infection(&mut rng, EkFamily::Magnitude, 1_400_000_000.0);
        let mut det = OnTheWireDetector::new(clf, DetectorConfig::default());
        for tx in &ep.transactions {
            det.observe(tx);
        }
        let conv_count = det.tracker().conversation_count();
        assert!(det.alerts().len() <= conv_count);
        // Alerts are unique per conversation id.
        let mut ids: Vec<u64> = det.alerts().iter().map(|a| a.conversation_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), det.alerts().len());
    }

    #[test]
    fn trusted_vendor_traffic_is_weeded_out() {
        let clf = trained_classifier(4);
        let mut rng = StdRng::seed_from_u64(53);
        let ep = generate_benign(&mut rng, BenignScenario::SoftwareUpdate, 1_430_000_000.0);
        let mut det = OnTheWireDetector::new(clf, DetectorConfig::default());
        for tx in &ep.transactions {
            det.observe(tx);
        }
        assert_eq!(det.transactions_seen(), 0, "all vendor traffic excluded");
        assert!(det.alerts().is_empty());
    }

    #[test]
    fn significant_update_policy_cuts_classifier_work() {
        let clf = trained_classifier(7);
        let mut rng = StdRng::seed_from_u64(61);
        let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
        for i in 0..8 {
            stream.extend(
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9 + i as f64 * 400.0)
                    .transactions,
            );
        }
        stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        let run = |policy, alert_threshold| {
            let config = DetectorConfig {
                reclassify: policy,
                alert_threshold,
                ..DetectorConfig::default()
            };
            let mut det = OnTheWireDetector::new(clf.clone(), config);
            for tx in &stream {
                det.observe(tx);
            }
            (det.alerts().len(), det.classification_count())
        };
        // With alerting disabled, watched conversations keep growing and
        // the cadence difference shows directly.
        let (_, calls_every) = run(ReclassifyPolicy::EveryTransaction, 1.1);
        let (_, calls_sig) = run(ReclassifyPolicy::OnSignificantUpdate, 1.1);
        assert!(calls_sig < calls_every, "{calls_sig} vs {calls_every}");
        // At the normal threshold, detection must not regress meaningfully.
        let (alerts_every, _) = run(ReclassifyPolicy::EveryTransaction, 0.5);
        let (alerts_sig, _) = run(ReclassifyPolicy::OnSignificantUpdate, 0.5);
        assert!(
            alerts_sig + 1 >= alerts_every,
            "alerts {alerts_sig} vs {alerts_every}"
        );
    }

    #[test]
    fn incremental_and_scratch_paths_agree_bit_for_bit() {
        let clf = trained_classifier(9);
        let mut rng = StdRng::seed_from_u64(70);
        // A merged multi-episode stream (interleaved conversations, some
        // out-of-order arrivals within the merge) with alerting disabled,
        // so every watched conversation keeps being re-classified.
        let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
        for i in 0..6 {
            stream.extend(
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9 + i as f64 * 90.0)
                    .transactions,
            );
            stream.extend(
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.4e9 + i as f64 * 90.0)
                    .transactions,
            );
        }
        stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        let run = |incremental: bool| {
            let config = DetectorConfig {
                alert_threshold: 1.1,
                incremental,
                ..DetectorConfig::default()
            };
            let mut det = OnTheWireDetector::new(clf.clone(), config);
            let mut scores = Vec::new();
            for tx in &stream {
                det.observe(tx);
            }
            // Final per-conversation feature vectors must agree too.
            for conv in det.tracker().conversations() {
                let wcg = Wcg::from_transactions(&conv.transactions);
                scores.push(crate::features::extract(&wcg));
            }
            (det.classification_count(), scores)
        };
        let (calls_inc, fvs_inc) = run(true);
        let (calls_scratch, fvs_scratch) = run(false);
        assert_eq!(calls_inc, calls_scratch);
        assert!(calls_inc > 0);
        assert_eq!(fvs_inc.len(), fvs_scratch.len());
        for (a, b) in fvs_inc.iter().zip(&fvs_scratch) {
            for (x, y) in a.values().iter().zip(b.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn incremental_alerts_match_scratch_alerts() {
        let clf = trained_classifier(10);
        let mut rng = StdRng::seed_from_u64(71);
        let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
        for i in 0..6 {
            stream.extend(
                generate_infection(&mut rng, EkFamily::ALL[(i * 3) % 10], 1.4e9 + i as f64 * 400.0)
                    .transactions,
            );
        }
        stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        let run = |incremental: bool| {
            let config = DetectorConfig { incremental, ..DetectorConfig::default() };
            let mut det = OnTheWireDetector::new(clf.clone(), config);
            for tx in &stream {
                det.observe(tx);
            }
            det.alerts().to_vec()
        };
        let inc = run(true);
        let scratch = run(false);
        assert_eq!(inc.len(), scratch.len());
        for (a, b) in inc.iter().zip(&scratch) {
            assert_eq!(a.conversation_id, b.conversation_id);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.conversation_size, b.conversation_size);
        }
    }

    #[test]
    fn retention_bounds_detector_memory() {
        let clf = trained_classifier(6);
        let config =
            DetectorConfig { retention: Some(600.0), ..DetectorConfig::default() };
        let mut det = OnTheWireDetector::new(clf, config);
        let mut rng = StdRng::seed_from_u64(60);
        for day_slot in 0..12 {
            let ep = generate_benign(
                &mut rng,
                BenignScenario::AlexaBrowse,
                1.43e9 + day_slot as f64 * 7200.0,
            );
            for tx in &ep.transactions {
                det.observe(tx);
            }
        }
        assert!(
            det.tracker().conversation_count() < 12,
            "{} conversations retained",
            det.tracker().conversation_count()
        );
        assert!(det.tracker().evicted_count() > 0);
    }

    #[test]
    fn caps_bound_detector_state_on_hostile_stream() {
        use crate::wcg::tests::tx;
        use nettrace::http::Method;
        let clf = trained_classifier(8);
        let config = DetectorConfig {
            max_conversations_per_client: 32,
            max_transactions_per_conversation: 16,
            ..DetectorConfig::default()
        };
        let mut det = OnTheWireDetector::new(clf, config);
        // A hostile client spraying unclusterable one-shot transactions.
        for i in 0..2000 {
            let host = format!("h{i}.example");
            let referer = format!("http://unique-{i}.example/");
            let t = tx(
                i as f64 * 0.01, &host, "/x", Method::Get, 200,
                PayloadClass::Html, 100, Some(&referer), None,
            );
            det.observe(&t);
        }
        assert!(det.tracker().conversation_count() <= 32);
        assert!(det.tracker().cap_evicted_count() >= 2000 - 32);
    }

    #[test]
    fn eviction_accounting_matches_telemetry_snapshot_exactly() {
        use crate::wcg::tests::tx;
        use nettrace::http::Method;
        let clf = trained_classifier(11);
        let config = DetectorConfig {
            max_conversations_per_client: 4,
            max_transactions_per_conversation: 3,
            ..DetectorConfig::default()
        };
        let mut det = OnTheWireDetector::new(clf, config);
        // Blow the transactions-per-conversation cap: 10 clustering
        // transactions into one conversation, 3 stored, 7 dropped.
        for i in 0..10 {
            let t = tx(
                i as f64, "one.example", "/x", Method::Get, 200,
                PayloadClass::Html, 100, None, None,
            );
            det.observe(&t);
        }
        // Blow the conversations-per-client cap: 20 unclusterable
        // one-shots on top of the 1 existing conversation; the client
        // holds at most 4, so 21 - 4 = 17 evictions.
        for i in 0..20 {
            let host = format!("h{i}.example");
            let referer = format!("http://unique-{i}.example/");
            let t = tx(
                100.0 + i as f64 * 0.01, &host, "/x", Method::Get, 200,
                PayloadClass::Html, 100, Some(&referer), None,
            );
            det.observe(&t);
        }
        let tracker = det.tracker();
        assert_eq!(tracker.dropped_transaction_count(), 7);
        assert_eq!(tracker.cap_evicted_count(), 17);
        assert_eq!(tracker.evicted_count(), 0, "no retention window configured");
        // The telemetry counters must agree with the tracker's own
        // accounting, exactly.
        let snap = det.telemetry().snapshot();
        assert_eq!(
            snap.counter("session_transactions_dropped_total"),
            tracker.dropped_transaction_count()
        );
        assert_eq!(
            snap.counter("session_cap_evictions_total"),
            tracker.cap_evicted_count() as u64
        );
        assert_eq!(
            snap.counter("session_retention_evictions_total"),
            tracker.evicted_count() as u64
        );
        assert_eq!(
            snap.gauges["session_conversations_live"],
            tracker.conversation_count() as i64
        );
        // No spill tier configured: the spill counters exist but stay 0.
        assert_eq!(snap.counter("session_spilled_conversations_total"), 0);
        assert_eq!(snap.counter("session_rehydrations_total"), 0);
        assert_eq!(snap.counter("session_spill_evictions_total"), 0);
        assert_eq!(snap.gauges["session_conversations_frozen"], 0);
        assert_eq!(snap.gauges["session_spill_bytes"], 0);
        // Lifecycle accounting closes: every conversation ever created
        // is live, frozen, or evicted through exactly one path.
        assert_eq!(
            tracker.created_count(),
            (tracker.conversation_count()
                + tracker.frozen_count()
                + tracker.evicted_count()
                + tracker.cap_evicted_count()
                + tracker.spill_evicted_count()) as u64
        );
    }

    /// The spill tier under an aggressive budget: counters move, the
    /// telemetry matches the tracker exactly, and accounting closes.
    #[test]
    fn spill_accounting_matches_telemetry_snapshot_exactly() {
        use crate::wcg::tests::tx;
        use nettrace::http::Method;
        let clf = trained_classifier(12);
        let config = DetectorConfig {
            spill: Some(SpillConfig {
                max_live_bytes: 1,
                max_spill_bytes: usize::MAX,
                min_idle_secs: 0.5,
            }),
            ..DetectorConfig::default()
        };
        let mut det = OnTheWireDetector::new(clf, config);
        // Unclusterable one-shots a second apart: each sweep demotes the
        // previous conversation; revisiting a host rehydrates it.
        for i in 0..10 {
            let host = format!("h{i}.example");
            let referer = format!("http://unique-{i}.example/");
            let t = tx(
                i as f64, &host, "/x", Method::Get, 200,
                PayloadClass::Html, 100, Some(&referer), None,
            );
            det.observe(&t);
        }
        let revisit = tx(
            11.0, "h0.example", "/y", Method::Get, 200,
            PayloadClass::Html, 100, None, None,
        );
        det.observe(&revisit);
        let tracker = det.tracker();
        assert!(tracker.spilled_count() > 0, "budget forced demotions");
        assert!(tracker.rehydrated_count() > 0, "revisit thawed a conversation");
        assert_eq!(tracker.spill_evicted_count(), 0, "frozen budget never bound");
        let snap = det.telemetry().snapshot();
        assert_eq!(
            snap.counter("session_spilled_conversations_total"),
            tracker.spilled_count()
        );
        assert_eq!(snap.counter("session_rehydrations_total"), tracker.rehydrated_count());
        assert_eq!(snap.counter("session_spill_evictions_total"), 0);
        assert_eq!(
            snap.gauges["session_conversations_frozen"],
            tracker.frozen_count() as i64
        );
        assert_eq!(snap.gauges["session_spill_bytes"], tracker.spill_bytes() as i64);
        assert_eq!(
            tracker.spilled_count(),
            tracker.rehydrated_count() + tracker.frozen_count() as u64
        );
        assert_eq!(
            tracker.created_count(),
            (tracker.conversation_count()
                + tracker.frozen_count()
                + tracker.evicted_count()
                + tracker.cap_evicted_count()
                + tracker.spill_evicted_count()) as u64
        );
    }

    /// Swapping the model slot mid-stream: no transaction is lost, the
    /// reload is observed on the classification path, and alerts name
    /// the generation that scored them.
    #[test]
    fn model_hot_reload_attributes_alerts_to_generations() {
        let clf_a = trained_classifier(13);
        let clf_b = trained_classifier(14);
        let mut rng = StdRng::seed_from_u64(55);
        let mut stream: Vec<nettrace::HttpTransaction> = Vec::new();
        for i in 0..6 {
            stream.extend(
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9 + i as f64 * 400.0)
                    .transactions,
            );
        }
        stream.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        let mut det = OnTheWireDetector::new(clf_a, DetectorConfig::default());
        let slot = det.model_slot().clone();
        let mid = stream.len() / 2;
        for tx in &stream[..mid] {
            det.observe(tx);
        }
        let first_half_alerts = det.alerts().len();
        assert_eq!(slot.swap(clf_b), 2);
        for tx in &stream[mid..] {
            det.observe(tx);
        }
        assert_eq!(det.transactions_seen(), stream.len(), "no transaction dropped");
        assert!(!det.alerts().is_empty(), "stream raised alerts");
        for (i, alert) in det.alerts().iter().enumerate() {
            let expected = if i < first_half_alerts { 1 } else { 2 };
            assert_eq!(alert.model_version, expected, "alert {i}");
        }
        if det.alerts().len() > first_half_alerts && det.classification_count() > 0 {
            assert_eq!(
                det.telemetry().snapshot().counter("detector_model_reloads_total"),
                1,
                "the swap was observed exactly once"
            );
        }
    }

    #[test]
    fn alert_carries_context() {
        let clf = trained_classifier(5);
        let mut rng = StdRng::seed_from_u64(54);
        // Find an infection that alerts and check the alert contents.
        for seed in 0..20 {
            let _ = seed;
            let ep = generate_infection(&mut rng, EkFamily::Angler, 1_400_000_000.0);
            let mut det = OnTheWireDetector::new(clf.clone(), DetectorConfig::default());
            let mut got = None;
            for tx in &ep.transactions {
                if let Some(a) = det.observe(tx) {
                    got = Some(a);
                    break;
                }
            }
            if let Some(alert) = got {
                assert!(alert.score >= 0.5);
                assert!(alert.conversation_size >= 1);
                assert_eq!(alert.client, ep.victim.addr);
                return;
            }
        }
        panic!("no alert raised across 20 Angler episodes");
    }
}
