//! Infection-clue inference (Sec. V-B).
//!
//! A clue fires when a redirection chain of length ≥ *l* is followed by a
//! download of a payload type whose infectiousness likelihood exceeds a
//! threshold. Both constants come from "statistical analysis of the
//! ground truth data" in the paper; the likelihood table below is the
//! per-type infection share of the Table I payload columns.

use nettrace::payload::PayloadClass;
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};

/// Clue thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClueConfig {
    /// Minimum redirect hops before a moderately risky download becomes
    /// suspicious (`l`; the paper's forensic case study uses 3).
    pub redirect_threshold: usize,
    /// Minimum payload infectiousness likelihood for the
    /// redirects-plus-download conjunction.
    pub min_payload_likelihood: f64,
    /// Likelihood at which a download is suspicious on its own, without a
    /// redirect chain (several Table I families average ≤ 1 redirect, and
    /// the ground truth contains 11 infections with no redirects at all —
    /// a chain requirement alone would never inspect them).
    pub high_payload_likelihood: f64,
}

impl Default for ClueConfig {
    fn default() -> Self {
        ClueConfig {
            redirect_threshold: 2,
            min_payload_likelihood: 0.5,
            high_payload_likelihood: 0.8,
        }
    }
}

/// Infectiousness likelihood of a payload type, derived from the
/// ground-truth payload mix: the known exploit-payload types (`*.exe`,
/// `*.jar`, `*.swf`, `*.pdf`, `*.xap`, ransomware extensions, `.dmg`)
/// dominate infection traces, archives occasionally carry compressed
/// payloads, and the common web types are overwhelmingly benign.
pub fn payload_likelihood(class: PayloadClass) -> f64 {
    match class {
        PayloadClass::Exe => 0.95,
        PayloadClass::Crypt => 0.98,
        PayloadClass::Jar => 0.90,
        PayloadClass::Swf => 0.85,
        PayloadClass::Xap => 0.85,
        PayloadClass::Dmg => 0.80,
        PayloadClass::Pdf => 0.60,
        PayloadClass::Archive => 0.40,
        PayloadClass::Js => 0.15,
        PayloadClass::Html
        | PayloadClass::Css
        | PayloadClass::Image
        | PayloadClass::Json
        | PayloadClass::Text
        | PayloadClass::Other
        | PayloadClass::Empty => 0.05,
    }
}

/// Whether one transaction is a successful download worth counting for
/// clue purposes, returning its likelihood.
pub fn download_likelihood(tx: &HttpTransaction) -> Option<f64> {
    if tx.status / 100 == 2 && tx.payload_size > 0 {
        Some(payload_likelihood(tx.payload_class))
    } else {
        None
    }
}

/// Whether the incremental counters of a conversation constitute a clue.
pub fn is_clue(redirects_seen: usize, max_payload_likelihood: f64, cfg: &ClueConfig) -> bool {
    (redirects_seen >= cfg.redirect_threshold
        && max_payload_likelihood >= cfg.min_payload_likelihood)
        || max_payload_likelihood >= cfg.high_payload_likelihood
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcg::tests::tx;
    use nettrace::http::Method;

    #[test]
    fn exploit_types_are_high_likelihood() {
        for class in [
            PayloadClass::Exe,
            PayloadClass::Jar,
            PayloadClass::Swf,
            PayloadClass::Crypt,
            PayloadClass::Xap,
        ] {
            assert!(payload_likelihood(class) >= 0.8, "{class}");
        }
        assert!(payload_likelihood(PayloadClass::Image) < 0.1);
    }

    #[test]
    fn download_requires_success_and_body() {
        let ok = tx(1.0, "h", "/a.exe", Method::Get, 200, PayloadClass::Exe, 100, None, None);
        assert_eq!(download_likelihood(&ok), Some(0.95));
        let redirect = tx(1.0, "h", "/a", Method::Get, 302, PayloadClass::Exe, 100, None, None);
        assert_eq!(download_likelihood(&redirect), None);
        let empty = tx(1.0, "h", "/a.exe", Method::Get, 200, PayloadClass::Exe, 0, None, None);
        assert_eq!(download_likelihood(&empty), None);
    }

    #[test]
    fn clue_conjunction_and_high_likelihood_override() {
        let cfg = ClueConfig::default();
        assert!(is_clue(2, 0.95, &cfg));
        assert!(is_clue(0, 0.95, &cfg), "exe download alone is a clue");
        assert!(is_clue(2, 0.6, &cfg), "chain + moderately risky download");
        assert!(!is_clue(1, 0.6, &cfg), "short chain + moderate payload");
        assert!(!is_clue(5, 0.1, &cfg), "payload not risky");
    }

    #[test]
    fn threshold_is_configurable() {
        let cfg = ClueConfig {
            redirect_threshold: 3,
            min_payload_likelihood: 0.5,
            high_payload_likelihood: 2.0, // disable the override
        };
        assert!(!is_clue(2, 0.95, &cfg));
        assert!(is_clue(3, 0.95, &cfg));
    }
}
