//! Training and querying the ensemble random forest (Sec. V-A).
//!
//! The classifier is an [`mlearn`] random forest with the paper's best
//! hyper-parameters — 20 trees, `log2(F)+1` features per split, and
//! **probability averaging** across trees — wrapped with the WCG feature
//! extraction and the Table III feature-group selection.

use mlearn::dataset::Dataset;
use mlearn::forest::{ForestConfig, RandomForest};
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};

use crate::features::{self, FeatureGroup, FeatureVector, FEATURE_COUNT, NAMES};
use crate::wcg::Wcg;

/// Class label for benign conversations.
pub const LABEL_BENIGN: usize = 0;
/// Class label for infection conversations.
pub const LABEL_INFECTION: usize = 1;

/// Which feature columns the classifier uses (the Table III ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSelection {
    /// All 37 features.
    All,
    /// Graph features only (f7–f25).
    GraphOnly,
    /// Everything except graph features (HLFs + HFs + TFs).
    NonGraph,
}

impl FeatureSelection {
    /// The selected column indices, in order.
    pub fn columns(self) -> Vec<usize> {
        match self {
            FeatureSelection::All => (0..FEATURE_COUNT).collect(),
            FeatureSelection::GraphOnly => FeatureGroup::Graph.columns().collect(),
            FeatureSelection::NonGraph => (0..FEATURE_COUNT)
                .filter(|&c| FeatureGroup::of_column(c) != FeatureGroup::Graph)
                .collect(),
        }
    }

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            FeatureSelection::All => "All",
            FeatureSelection::GraphOnly => "GFs",
            FeatureSelection::NonGraph => "HLFs+HFs+TFs",
        }
    }
}

/// Builds a 37-column binary dataset from labelled conversations
/// (`true` = infection). Each conversation is abstracted into a WCG and
/// featurized.
pub fn build_dataset<'a, I>(conversations: I) -> Dataset
where
    I: IntoIterator<Item = (&'a [HttpTransaction], bool)>,
{
    let mut data = Dataset::new(NAMES.iter().map(|s| s.to_string()).collect(), 2);
    for (txs, infected) in conversations {
        let wcg = Wcg::from_transactions(txs);
        let fv = features::extract(&wcg);
        data.push(fv.values().to_vec(), usize::from(infected));
    }
    data
}

/// Builds the same dataset as [`build_dataset`] but extracts features in
/// parallel through the [`mlearn::parallel`] worker pool — WCG
/// featurization is the dominant cost when featurizing thousands of
/// conversations (graph analytics per conversation), and conversations
/// are independent. The dynamic work distribution also balances the very
/// uneven per-conversation cost (graph analytics scale with WCG size).
///
/// The resulting dataset is bit-identical to the sequential one (row
/// order is preserved).
pub fn build_dataset_parallel(
    conversations: &[(&[HttpTransaction], bool)],
    threads: usize,
) -> Dataset {
    let rows = mlearn::parallel::run_indexed(conversations.len(), threads, |i| {
        let (txs, infected) = conversations[i];
        let wcg = Wcg::from_transactions(txs);
        let fv = features::extract(&wcg);
        (fv.values().to_vec(), usize::from(infected))
    });
    let mut data = Dataset::new(NAMES.iter().map(|s| s.to_string()).collect(), 2);
    for (values, label) in rows {
        data.push(values, label);
    }
    data
}

/// A trained DynaMiner classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classifier {
    forest: RandomForest,
    selection: FeatureSelection,
}

impl Classifier {
    /// Trains on a 37-column dataset (as produced by [`build_dataset`]),
    /// projecting to `selection`'s columns first.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is empty or not 37 columns wide.
    pub fn fit(
        data: &Dataset,
        selection: FeatureSelection,
        config: &ForestConfig,
        seed: u64,
    ) -> Classifier {
        assert_eq!(data.n_features(), FEATURE_COUNT, "expected a 37-feature dataset");
        let projected = data.select_features(&selection.columns());
        Classifier { forest: RandomForest::fit(&projected, config, seed), selection }
    }

    /// [`Classifier::fit`] with an explicit thread budget for forest
    /// training. The trained model is bit-identical at any thread count.
    pub fn fit_threaded(
        data: &Dataset,
        selection: FeatureSelection,
        config: &ForestConfig,
        seed: u64,
        threads: usize,
    ) -> Classifier {
        assert_eq!(data.n_features(), FEATURE_COUNT, "expected a 37-feature dataset");
        let projected = data.select_features(&selection.columns());
        Classifier {
            forest: RandomForest::fit_threaded(&projected, config, seed, threads),
            selection,
        }
    }

    /// [`Classifier::fit_threaded`] with per-tree fit times recorded
    /// into `tree_fit_ns` (see [`RandomForest::fit_threaded_timed`]).
    /// Timing is observational only: the model stays bit-identical.
    pub fn fit_threaded_timed(
        data: &Dataset,
        selection: FeatureSelection,
        config: &ForestConfig,
        seed: u64,
        threads: usize,
        tree_fit_ns: Option<&telemetry::Histogram>,
    ) -> Classifier {
        assert_eq!(data.n_features(), FEATURE_COUNT, "expected a 37-feature dataset");
        let projected = data.select_features(&selection.columns());
        Classifier {
            forest: RandomForest::fit_threaded_timed(&projected, config, seed, threads, tree_fit_ns),
            selection,
        }
    }

    /// Trains with the paper's default configuration on all features.
    pub fn fit_default(data: &Dataset, seed: u64) -> Classifier {
        Classifier::fit(data, FeatureSelection::All, &ForestConfig::default(), seed)
    }

    /// The feature selection this classifier was trained with.
    pub fn selection(&self) -> FeatureSelection {
        self.selection
    }

    /// Infection probability for an extracted feature vector.
    pub fn score_features(&self, fv: &FeatureVector) -> f64 {
        let row: Vec<f64> =
            self.selection.columns().iter().map(|&c| fv.values()[c]).collect();
        self.forest.predict_proba(&row)[LABEL_INFECTION]
    }

    /// Infection probability for a WCG.
    pub fn score_wcg(&self, wcg: &Wcg) -> f64 {
        self.score_features(&features::extract(wcg))
    }

    /// Binary verdict for a WCG at the 0.5 threshold.
    pub fn predict_wcg(&self, wcg: &Wcg) -> bool {
        self.score_wcg(wcg) >= 0.5
    }

    /// Infection probability for a raw conversation.
    pub fn score_transactions(&self, txs: &[HttpTransaction]) -> f64 {
        self.score_wcg(&Wcg::from_transactions(txs))
    }

    /// Infection probabilities for many feature vectors at once, scored
    /// through [`RandomForest::score_batch`] — one flat preallocated
    /// accumulator and zero per-row allocations, with rows split across
    /// `threads` workers. Matches [`Classifier::score_features`] row for
    /// row.
    pub fn score_features_batch(&self, fvs: &[FeatureVector], threads: usize) -> Vec<f64> {
        let columns = self.selection.columns();
        let rows: Vec<Vec<f64>> = fvs
            .iter()
            .map(|fv| columns.iter().map(|&c| fv.values()[c]).collect())
            .collect();
        self.forest.score_batch(&rows, LABEL_INFECTION, threads)
    }

    /// Infection probabilities for many raw conversations: WCG
    /// construction and feature extraction run through the worker pool,
    /// then all rows are batch-scored. Matches
    /// [`Classifier::score_transactions`] conversation for conversation.
    pub fn score_conversations_batch(
        &self,
        conversations: &[&[HttpTransaction]],
        threads: usize,
    ) -> Vec<f64> {
        let fvs: Vec<FeatureVector> =
            mlearn::parallel::run_indexed(conversations.len(), threads, |i| {
                features::extract(&Wcg::from_transactions(conversations[i]))
            });
        self.score_features_batch(&fvs, threads)
    }

    /// Mean-decrease-in-impurity importances of the trained forest,
    /// mapped back to feature names and sorted descending — the model
    /// introspection behind the paper's "manual verification of the trees
    /// generated by the ERF".
    pub fn feature_importances(&self) -> Vec<(String, f64)> {
        let importances = self.forest.feature_importances();
        let mut named: Vec<(String, f64)> = self
            .selection
            .columns()
            .iter()
            .zip(importances)
            .map(|(&c, imp)| (NAMES[c].to_string(), imp))
            .collect();
        named.sort_by(|a, b| b.1.total_cmp(&a.1));
        named
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synthtraffic::benign::generate_benign;
    use synthtraffic::episode::generate_infection;
    use synthtraffic::{BenignScenario, EkFamily};

    fn small_corpus(seed: u64, n: usize) -> Vec<(Vec<nettrace::HttpTransaction>, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for i in 0..n {
            let family = EkFamily::ALL[i % EkFamily::ALL.len()];
            out.push((generate_infection(&mut rng, family, 1_400_000_000.0).transactions, true));
            let scenario = BenignScenario::WEIGHTED[i % 8].0;
            out.push((generate_benign(&mut rng, scenario, 1_430_000_000.0).transactions, false));
        }
        out
    }

    #[test]
    fn selections_have_expected_widths() {
        assert_eq!(FeatureSelection::All.columns().len(), 37);
        assert_eq!(FeatureSelection::GraphOnly.columns().len(), 19);
        assert_eq!(FeatureSelection::NonGraph.columns().len(), 18);
    }

    #[test]
    fn classifier_separates_synthetic_corpora() {
        let train = small_corpus(1, 30);
        let data = build_dataset(train.iter().map(|(t, l)| (t.as_slice(), *l)));
        let clf = Classifier::fit_default(&data, 7);

        let test = small_corpus(2, 15);
        let mut correct = 0usize;
        for (txs, infected) in &test {
            let wcg = Wcg::from_transactions(txs);
            if clf.predict_wcg(&wcg) == *infected {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let train = small_corpus(3, 10);
        let data = build_dataset(train.iter().map(|(t, l)| (t.as_slice(), *l)));
        let clf = Classifier::fit_default(&data, 1);
        for (txs, _) in &train {
            let s = clf.score_transactions(txs);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn graph_only_classifier_works() {
        let train = small_corpus(4, 40);
        let data = build_dataset(train.iter().map(|(t, l)| (t.as_slice(), *l)));
        let clf = Classifier::fit(
            &data,
            FeatureSelection::GraphOnly,
            &ForestConfig::default(),
            3,
        );
        assert_eq!(clf.selection(), FeatureSelection::GraphOnly);
        let test = small_corpus(5, 15);
        let correct = test
            .iter()
            .filter(|(txs, infected)| clf.predict_wcg(&Wcg::from_transactions(txs)) == *infected)
            .count();
        assert!(correct as f64 / test.len() as f64 > 0.75, "{correct}/{}", test.len());
    }

    #[test]
    fn parallel_dataset_matches_sequential() {
        let corpus = small_corpus(9, 12);
        let items: Vec<(&[nettrace::HttpTransaction], bool)> =
            corpus.iter().map(|(t, l)| (t.as_slice(), *l)).collect();
        let sequential = build_dataset(items.iter().copied());
        for threads in [1, 3, 8, 64] {
            let parallel = build_dataset_parallel(&items, threads);
            assert_eq!(parallel.len(), sequential.len());
            for i in 0..sequential.len() {
                assert_eq!(parallel.row(i), sequential.row(i), "row {i}, {threads} threads");
                assert_eq!(parallel.label(i), sequential.label(i));
            }
        }
    }

    #[test]
    fn batch_scoring_matches_per_conversation() {
        let train = small_corpus(7, 15);
        let data = build_dataset(train.iter().map(|(t, l)| (t.as_slice(), *l)));
        let clf = Classifier::fit_default(&data, 4);
        let test = small_corpus(8, 10);
        let convs: Vec<&[nettrace::HttpTransaction]> =
            test.iter().map(|(t, _)| t.as_slice()).collect();
        let expected: Vec<f64> =
            convs.iter().map(|txs| clf.score_transactions(txs)).collect();
        for threads in [1, 2, 8] {
            assert_eq!(
                clf.score_conversations_batch(&convs, threads),
                expected,
                "{threads} threads"
            );
        }
        // Feature-vector batch path agrees too.
        let fvs: Vec<crate::features::FeatureVector> = convs
            .iter()
            .map(|txs| crate::features::extract(&Wcg::from_transactions(txs)))
            .collect();
        assert_eq!(clf.score_features_batch(&fvs, 2), expected);
    }

    #[test]
    fn threaded_fit_matches_sequential_fit() {
        let train = small_corpus(10, 12);
        let data = build_dataset(train.iter().map(|(t, l)| (t.as_slice(), *l)));
        let reference = Classifier::fit_default(&data, 6);
        for threads in [1, 2, 8] {
            let clf = Classifier::fit_threaded(
                &data,
                FeatureSelection::All,
                &ForestConfig::default(),
                6,
                threads,
            );
            for (txs, _) in &train {
                assert_eq!(
                    clf.score_transactions(txs),
                    reference.score_transactions(txs),
                    "{threads} threads"
                );
            }
        }
    }

    #[test]
    fn importances_are_named_and_normalized() {
        let train = small_corpus(6, 20);
        let data = build_dataset(train.iter().map(|(t, l)| (t.as_slice(), *l)));
        let clf = Classifier::fit_default(&data, 2);
        let imp = clf.feature_importances();
        assert_eq!(imp.len(), 37);
        let total: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(imp[0].1 >= imp.last().unwrap().1, "sorted descending");
        assert!(crate::features::NAMES.contains(&imp[0].0.as_str()));
    }

    #[test]
    #[should_panic(expected = "37-feature")]
    fn fit_validates_width() {
        let d = Dataset::new(vec!["x".into()], 2);
        Classifier::fit(&d, FeatureSelection::All, &ForestConfig::default(), 1);
    }
}
