//! Conversation-stage annotation (Sec. III-C, edge level).
//!
//! Each transaction (and hence each of its edges) is assigned one of three
//! stages following the paper's heuristics:
//!
//! * **pre-download** — GET request/response pairs before any known
//!   exploit payload reached the victim, whose response is a 30x or whose
//!   body carries redirect evidence; the last such response ends the
//!   pre-download stage,
//! * **download** — everything from there through the last successful
//!   exploit-payload delivery ("all the remaining request-response pairs
//!   are assigned to download stage"),
//! * **post-download** — POSTs, after the last exploit download, to hosts
//!   from which no exploit payload was downloaded, answered with 200/40x
//!   (or never answered).

use std::collections::BTreeSet;

use nettrace::http::Method;
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};

use super::redirect;

/// The three conversation stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Pre-download redirection dynamics (paper value 0).
    PreDownload,
    /// Payload download dynamics (paper value 1).
    Download,
    /// Post-download / C&C dynamics (paper value 2).
    PostDownload,
}

impl Stage {
    /// The paper's numeric encoding (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            Stage::PreDownload => 0,
            Stage::Download => 1,
            Stage::PostDownload => 2,
        }
    }
}

fn is_redirectish(tx: &HttpTransaction) -> bool {
    tx.is_redirect() || !redirect::targets(tx).is_empty()
}

/// Assigns a stage to each transaction of a time-ordered conversation.
pub fn annotate(order: &[&HttpTransaction]) -> Vec<Stage> {
    let n = order.len();
    // Successful exploit-payload downloads and the hosts serving them.
    let exploit_idx: Vec<usize> = (0..n)
        .filter(|&i| {
            order[i].status / 100 == 2 && order[i].payload_class.is_exploit_type()
        })
        .collect();
    let download_hosts: BTreeSet<&str> =
        exploit_idx.iter().map(|&i| order[i].host.as_str()).collect();
    let first_dl = exploit_idx.first().copied();
    let last_dl = exploit_idx.last().copied();

    // End of pre-download: the last redirect-ish GET before the first
    // exploit download (or before everything when no download exists).
    let pre_horizon = first_dl.unwrap_or(n);
    let pre_end = (0..pre_horizon)
        .rev()
        .find(|&i| order[i].method == Method::Get && is_redirectish(order[i]));

    (0..n)
        .map(|i| {
            if let Some(pe) = pre_end {
                if i <= pe && order[i].method == Method::Get {
                    return Stage::PreDownload;
                }
            }
            if let Some(ld) = last_dl {
                if i > ld && is_post_download(order[i], &download_hosts) {
                    return Stage::PostDownload;
                }
            } else if is_post_download(order[i], &download_hosts) {
                // No download observed at all: POSTs to side hosts are
                // still post-download-shaped dynamics.
                return Stage::PostDownload;
            }
            Stage::Download
        })
        .collect()
}

fn is_post_download(tx: &HttpTransaction, download_hosts: &BTreeSet<&str>) -> bool {
    tx.method == Method::Post
        && !download_hosts.contains(tx.host.as_str())
        && (tx.status == 0 || tx.status / 100 == 2 || tx.status / 100 == 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcg::tests::tx;
    use nettrace::payload::PayloadClass;

    #[test]
    fn canonical_infection_is_three_staged() {
        let txs = [
            tx(1.0, "a.com", "/r", Method::Get, 302, PayloadClass::Empty, 0, None,
               Some("http://b.com/l")),
            tx(1.2, "b.com", "/l", Method::Get, 302, PayloadClass::Empty, 0, None,
               Some("http://c.com/g")),
            tx(1.4, "c.com", "/g", Method::Get, 200, PayloadClass::Html, 100, None, None),
            tx(1.6, "c.com", "/x.exe", Method::Get, 200, PayloadClass::Exe, 9000, None, None),
            tx(9.0, "1.2.3.4", "/gate", Method::Post, 200, PayloadClass::Text, 4, None, None),
        ];
        let order: Vec<&_> = txs.iter().collect();
        let stages = annotate(&order);
        assert_eq!(
            stages,
            vec![
                Stage::PreDownload,
                Stage::PreDownload,
                Stage::Download,
                Stage::Download,
                Stage::PostDownload
            ]
        );
    }

    #[test]
    fn post_requires_non_download_host() {
        let txs = [
            tx(1.0, "c.com", "/x.exe", Method::Get, 200, PayloadClass::Exe, 9000, None, None),
            tx(2.0, "c.com", "/beacon", Method::Post, 200, PayloadClass::Text, 4, None, None),
            tx(3.0, "other.com", "/beacon", Method::Post, 200, PayloadClass::Text, 4, None, None),
        ];
        let order: Vec<&_> = txs.iter().collect();
        let stages = annotate(&order);
        assert_eq!(stages[1], Stage::Download, "POST to download host stays download");
        assert_eq!(stages[2], Stage::PostDownload);
    }

    #[test]
    fn post_with_server_error_is_not_post_download() {
        let txs = [
            tx(1.0, "c.com", "/x.exe", Method::Get, 200, PayloadClass::Exe, 9000, None, None),
            tx(2.0, "cc.com", "/g", Method::Post, 500, PayloadClass::Empty, 0, None, None),
        ];
        let order: Vec<&_> = txs.iter().collect();
        assert_eq!(annotate(&order)[1], Stage::Download);
    }

    #[test]
    fn benign_browse_is_all_download_stage() {
        let txs = [
            tx(1.0, "site.com", "/", Method::Get, 200, PayloadClass::Html, 100, None, None),
            tx(2.0, "site.com", "/a.js", Method::Get, 200, PayloadClass::Js, 50, None, None),
            tx(3.0, "cdn.com", "/i.png", Method::Get, 200, PayloadClass::Image, 500, None, None),
        ];
        let order: Vec<&_> = txs.iter().collect();
        assert!(annotate(&order).iter().all(|&s| s == Stage::Download));
    }

    #[test]
    fn redirects_after_download_do_not_extend_pre_stage() {
        // Benign ad-click: download first, then a redirect — the redirect
        // must not be classified pre-download.
        let txs = [
            tx(1.0, "m.com", "/f.pdf", Method::Get, 200, PayloadClass::Pdf, 900, None, None),
            tx(2.0, "ad.com", "/click", Method::Get, 302, PayloadClass::Empty, 0, None,
               Some("http://lander.com/")),
            tx(2.5, "lander.com", "/", Method::Get, 200, PayloadClass::Html, 80, None, None),
        ];
        let order: Vec<&_> = txs.iter().collect();
        let stages = annotate(&order);
        assert_eq!(stages[1], Stage::Download);
        assert_eq!(stages[2], Stage::Download);
    }

    #[test]
    fn unanswered_posts_count_as_post_download() {
        let txs = [
            tx(1.0, "c.com", "/x.jar", Method::Get, 200, PayloadClass::Jar, 900, None, None),
            tx(5.0, "9.9.9.9", "/g", Method::Post, 0, PayloadClass::Empty, 0, None, None),
        ];
        let order: Vec<&_> = txs.iter().collect();
        assert_eq!(annotate(&order)[1], Stage::PostDownload);
    }

    #[test]
    fn empty_conversation() {
        assert!(annotate(&[]).is_empty());
    }

    #[test]
    fn stage_indices_match_paper_encoding() {
        assert_eq!(Stage::PreDownload.index(), 0);
        assert_eq!(Stage::Download.index(), 1);
        assert_eq!(Stage::PostDownload.index(), 2);
    }
}
