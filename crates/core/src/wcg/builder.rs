//! Incremental WCG construction.
//!
//! The on-the-wire detector re-classifies a conversation on (nearly) every
//! transaction. Rebuilding the WCG from scratch each time makes the live
//! path O(n²) in conversation length; [`WcgBuilder`] instead folds one
//! transaction at a time into an existing [`Wcg`] with O(1) amortized work
//! per append, and [`Wcg::from_transactions`] is itself implemented as a
//! fold over the builder — so there is exactly one construction code path
//! and incremental output is the from-scratch output by definition.
//!
//! Two aspects of WCG semantics are retroactive and need care:
//!
//! * **Stage annotation** (see [`super::stages::annotate`]) assigns stages
//!   from global knowledge: the pre-download horizon is the last
//!   redirect-ish GET before the *first* exploit download, and
//!   post-download status depends on the *last* exploit download and the
//!   full set of exploit-serving hosts. Both are monotone as transactions
//!   append in time order, so the builder maintains them as a small state
//!   machine and patches the stages of earlier transactions' edges when a
//!   new transaction moves a horizon (each transaction's edge ids are
//!   recorded as a contiguous range, so a stage flip is a cheap in-place
//!   sweep).
//! * **Origin inference** declares the first transaction's referrer host an
//!   origin node only while no transaction contacts that host. A push that
//!   contacts the active origin host — or arrives out of timestamp order —
//!   cannot be folded in place; [`WcgBuilder::push`] then returns
//!   [`PushOutcome::NeedsRebuild`] and the caller replays the conversation
//!   through [`WcgBuilder::rebuild`]. Both triggers are rare (origin hosts
//!   are by construction off-path; captures are near-sorted), keeping the
//!   amortized cost linear.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use nettrace::http::Method;
use nettrace::HttpTransaction;
use wcgraph::{DiGraph, EdgeId, NodeId};

use super::{
    host_of_url, redirect, registrable_domain, tld, EdgeAttr, EdgeKind, MethodCounts, NodeAttr,
    NodeKind, RedirectStats, Stage, Wcg,
};

/// Result of [`WcgBuilder::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum PushOutcome {
    /// The transaction was folded into the graph in place.
    Applied,
    /// In-place maintenance is impossible (the transaction arrived out of
    /// timestamp order, or it contacts the active origin host and thereby
    /// invalidates the origin node). The builder state is unchanged; call
    /// [`WcgBuilder::rebuild`] with the full transaction list.
    NeedsRebuild,
}

/// Per-transaction bookkeeping needed for retroactive stage patches.
#[derive(Debug, Clone)]
struct TxMeta {
    stage: Stage,
    is_get: bool,
    /// Edge ids `[start, end)` contributed by this transaction (for the
    /// first transaction this includes the origin edge, so stage patches
    /// cover it automatically).
    edge_start: usize,
    edge_end: usize,
}

/// Origin-node lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OriginState {
    /// No transaction pushed yet.
    Unset,
    /// An origin node exists under this (lowercase) host name; contacting
    /// it invalidates the inference.
    Active(String),
    /// No origin node — the first transaction had no usable referrer, or
    /// the referrer host is contacted in this conversation. Permanent:
    /// the contacted set only grows.
    None,
}

/// Incrementally maintained [`Wcg`].
///
/// ```
/// use dynaminer::wcg::{PushOutcome, Wcg, WcgBuilder};
/// use rand::{rngs::StdRng, SeedableRng};
/// use synthtraffic::{episode::generate_infection, EkFamily};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let ep = generate_infection(&mut rng, EkFamily::Rig, 1.45e9);
/// let mut builder = WcgBuilder::new();
/// for tx in &ep.transactions {
///     if builder.push(tx) == PushOutcome::NeedsRebuild {
///         builder.rebuild(&ep.transactions);
///         break;
///     }
/// }
/// let fresh = Wcg::from_transactions(&ep.transactions);
/// assert_eq!(builder.wcg().graph.edge_count(), fresh.graph.edge_count());
/// ```
#[derive(Debug, Clone)]
pub struct WcgBuilder {
    wcg: Wcg,
    /// Interned host name → node id (includes the victim and origin).
    nodes: BTreeMap<String, NodeId>,
    /// Host → length of the longest redirect chain that led to it.
    chain_len: BTreeMap<String, usize>,
    last_redirect_ts: Option<f64>,
    prev_ts: Option<f64>,
    /// Largest timestamp pushed so far (by `total_cmp`, mirroring the sort
    /// in [`Wcg::from_transactions`]).
    max_ts: f64,
    txs: Vec<TxMeta>,
    origin: OriginState,
    /// Origin decision precomputed by [`WcgBuilder::rebuild`] with full
    /// knowledge of the contacted set; consumed by the first apply.
    forced_origin: Option<Option<String>>,
    // Stage state machine (mirrors the global quantities of
    // `stages::annotate`).
    pre_end: Option<usize>,
    first_dl: Option<usize>,
    last_dl: Option<usize>,
    /// Raw (case-preserved) hosts that served an exploit payload, matching
    /// `annotate`'s case-sensitive host comparison.
    download_hosts: BTreeSet<String>,
    // Topology versioning for feature memoization.
    topo_version: u64,
    /// Distinct directed simple pairs (self-loops excluded) already in the
    /// graph; a new pair or node bumps `topo_version`.
    seen_pairs: BTreeSet<(NodeId, NodeId)>,
    /// Reusable buffer for the lowercased host of the transaction being
    /// applied, so the steady-state fold does not allocate one per
    /// transaction.
    host_scratch: String,
}

impl Default for WcgBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WcgBuilder {
    /// An empty builder whose [`WcgBuilder::wcg`] equals
    /// `Wcg::from_transactions(&[])`.
    pub fn new() -> Self {
        WcgBuilder {
            wcg: Wcg {
                graph: DiGraph::new(),
                victim: None,
                origin: None,
                dnt: false,
                x_flash: false,
                method_counts: MethodCounts::default(),
                status_class_counts: [0; 6],
                referrer_set: 0,
                referrer_unset: 0,
                uri_length_total: 0,
                uri_count: 0,
                first_ts: 0.0,
                last_ts: 0.0,
                inter_tx_gaps: Vec::new(),
                redirects: RedirectStats::default(),
                tx_count: 0,
                payload_bytes: 0,
                stage_counts: [0; 3],
            },
            nodes: BTreeMap::new(),
            chain_len: BTreeMap::new(),
            last_redirect_ts: None,
            prev_ts: None,
            max_ts: 0.0,
            txs: Vec::new(),
            origin: OriginState::Unset,
            forced_origin: None,
            pre_end: None,
            first_dl: None,
            last_dl: None,
            download_hosts: BTreeSet::new(),
            topo_version: 0,
            seen_pairs: BTreeSet::new(),
            host_scratch: String::new(),
        }
    }

    /// The maintained graph. Always equal to
    /// `Wcg::from_transactions(pushed transactions)`.
    pub fn wcg(&self) -> &Wcg {
        &self.wcg
    }

    /// Consumes the builder, returning the graph.
    pub fn into_wcg(self) -> Wcg {
        self.wcg
    }

    /// Number of transactions folded in.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }

    /// Monotone counter that advances whenever the *simple directed
    /// topology* of the graph changes (a node appears, or a first edge
    /// between an ordered node pair appears). Stage flips, parallel edges,
    /// and attribute updates do not advance it, so feature extraction can
    /// memoize topology-only metrics against this version.
    pub fn topo_version(&self) -> u64 {
        self.topo_version
    }

    /// Appends one transaction, computing redirect targets internally.
    /// See [`WcgBuilder::push_with_targets`].
    pub fn push(&mut self, tx: &HttpTransaction) -> PushOutcome {
        self.push_with_targets(tx, &redirect::targets(tx))
    }

    /// Appends one transaction with its precomputed redirect targets
    /// (`redirect::targets(tx)`), so callers that already mined the
    /// response body do not pay for it twice.
    ///
    /// Returns [`PushOutcome::NeedsRebuild`] — leaving the builder
    /// untouched — when the transaction cannot be folded in place.
    pub fn push_with_targets(&mut self, tx: &HttpTransaction, targets: &[String]) -> PushOutcome {
        if !self.txs.is_empty() && tx.ts.total_cmp(&self.max_ts) == Ordering::Less {
            return PushOutcome::NeedsRebuild;
        }
        if let OriginState::Active(name) = &self.origin {
            if tx.host.eq_ignore_ascii_case(name) {
                return PushOutcome::NeedsRebuild;
            }
        }
        self.apply(tx, targets);
        PushOutcome::Applied
    }

    /// Discards the current state and replays `transactions` (stably sorted
    /// by timestamp, exactly like [`Wcg::from_transactions`]). Unlike the
    /// push path, the replay decides the origin node with full knowledge of
    /// the contacted set, so it never needs a second pass.
    pub fn rebuild(&mut self, transactions: &[HttpTransaction]) {
        let prior_version = self.topo_version;
        let mut order: Vec<&HttpTransaction> = transactions.iter().collect();
        order.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        *self = WcgBuilder::new();
        if let Some(first) = order.first() {
            let contacted: BTreeSet<String> =
                order.iter().map(|t| t.host.to_ascii_lowercase()).collect();
            self.forced_origin = Some(
                first
                    .referer()
                    .and_then(host_of_url)
                    .filter(|h| !contacted.contains(h.as_ref()))
                    .map(|h| h.into_owned()),
            );
        }
        for tx in order {
            self.apply(tx, &redirect::targets(tx));
        }
        // Keep the version strictly monotone across the rebuild so feature
        // caches keyed on an older builder state can never collide.
        self.topo_version += prior_version + 1;
    }

    fn node_for(&mut self, host: &str) -> NodeId {
        if let Some(&id) = self.nodes.get(host) {
            return id;
        }
        let id = self.wcg.graph.add_node(NodeAttr::new(host, NodeKind::Remote));
        self.topo_version += 1;
        self.nodes.insert(host.to_string(), id);
        id
    }

    fn add_edge(&mut self, src: NodeId, dst: NodeId, attr: EdgeAttr) {
        if src != dst && self.seen_pairs.insert((src, dst)) {
            self.topo_version += 1;
        }
        self.wcg.graph.add_edge(src, dst, attr);
    }

    /// Re-stages transaction `i`: patches its edges and the stage counts.
    fn restage(&mut self, i: usize, new_stage: Stage) {
        let meta = &mut self.txs[i];
        if meta.stage == new_stage {
            return;
        }
        self.wcg.stage_counts[meta.stage.index()] -= 1;
        self.wcg.stage_counts[new_stage.index()] += 1;
        for e in meta.edge_start..meta.edge_end {
            self.wcg.graph.edge_mut(EdgeId(e)).stage = new_stage;
        }
        meta.stage = new_stage;
    }

    fn apply(&mut self, tx: &HttpTransaction, targets: &[String]) {
        let index = self.txs.len();
        // The lowercased host is built in a buffer reused across
        // transactions, moved out of `self` for the duration of the apply
        // so the borrow does not pin the builder.
        let mut tx_host = std::mem::take(&mut self.host_scratch);
        tx_host.clear();
        tx_host.push_str(&tx.host);
        tx_host.make_ascii_lowercase();

        if index == 0 {
            self.wcg.first_ts = tx.ts;
            self.wcg.last_ts = tx.ts;
            // Victim node.
            let victim_name = format!("victim:{}", tx.client.addr);
            let victim = self.wcg.graph.add_node(NodeAttr {
                ip: Some(tx.client.addr),
                ..NodeAttr::new(&victim_name, NodeKind::Victim)
            });
            self.topo_version += 1;
            self.nodes.insert(victim_name, victim);
            self.wcg.victim = Some(victim);
            // Origin node: either decided by rebuild() with the full
            // contacted set, or inferred live against the only host known
            // so far (later contacts invalidate via NeedsRebuild).
            let origin_host = match self.forced_origin.take() {
                Some(decided) => decided,
                None => tx
                    .referer()
                    .and_then(host_of_url)
                    .filter(|h| h.as_ref() != tx_host)
                    .map(|h| h.into_owned()),
            };
            match origin_host {
                Some(h) => {
                    let id = self.wcg.graph.add_node(NodeAttr::new(&h, NodeKind::Origin));
                    self.topo_version += 1;
                    self.nodes.insert(h.clone(), id);
                    self.wcg.origin = Some(id);
                    self.origin = OriginState::Active(h);
                }
                None => self.origin = OriginState::None,
            }
        }

        // --- Stage state machine (mirrors `stages::annotate`) ---
        let is_get = tx.method == Method::Get;
        let is_exploit = tx.status / 100 == 2 && tx.payload_class.is_exploit_type();
        let is_redirectish = tx.is_redirect() || !targets.is_empty();
        if self.first_dl.is_none() && !is_exploit && is_get && is_redirectish {
            // The pre-download horizon extends through this transaction:
            // every earlier GET joins the pre stage. (GETs at or before the
            // previous horizon are already PreDownload.)
            let from = self.pre_end.map_or(0, |pe| pe + 1);
            for i in from..index {
                if self.txs[i].is_get {
                    self.restage(i, Stage::PreDownload);
                }
            }
            self.pre_end = Some(index);
        }
        if is_exploit {
            // A new latest download: nothing before it can be
            // post-download any more. (Transactions at or before the
            // previous last download were already swept.)
            let from = self.last_dl.map_or(0, |ld| ld + 1);
            for i in from..index {
                if self.txs[i].stage == Stage::PostDownload {
                    self.restage(i, Stage::Download);
                }
            }
            if self.first_dl.is_none() {
                self.first_dl = Some(index);
            }
            self.last_dl = Some(index);
            if !self.download_hosts.contains(&tx.host) {
                self.download_hosts.insert(tx.host.clone());
            }
        }
        // This transaction's own stage under the updated global state.
        let stage = if is_get && self.pre_end.is_some_and(|pe| index <= pe) {
            Stage::PreDownload
        } else if tx.method == Method::Post
            && !self.download_hosts.contains(&tx.host)
            && (tx.status == 0 || tx.status / 100 == 2 || tx.status / 100 == 4)
            && self.last_dl.is_none_or(|ld| index > ld)
        {
            Stage::PostDownload
        } else {
            Stage::Download
        };
        self.wcg.stage_counts[stage.index()] += 1;

        // --- Graph updates ---
        let victim = self.wcg.victim.expect("victim node exists after first apply");
        let host_node = self.node_for(&tx_host);
        {
            let attr = self.wcg.graph.node_mut(host_node);
            attr.ip = Some(tx.server.addr);
            if !attr.uris.contains(&tx.uri) {
                attr.uris.insert(tx.uri.clone());
            }
            if tx.status != 0 {
                *attr.payload_summary.entry(tx.payload_class).or_insert(0) += 1;
            }
        }
        let edge_start = self.wcg.graph.edge_count();
        // Request edge.
        self.add_edge(victim, host_node, EdgeAttr {
            kind: EdgeKind::Request,
            stage,
            ts: tx.ts,
            method: Some(tx.method.clone()),
            uri_len: tx.uri.len(),
            status: 0,
            payload_class: None,
            payload_size: 0,
        });
        // Response edge.
        if tx.status != 0 {
            self.add_edge(host_node, victim, EdgeAttr {
                kind: EdgeKind::Response,
                stage,
                ts: tx.resp_ts,
                method: None,
                uri_len: 0,
                status: tx.status,
                payload_class: Some(tx.payload_class),
                payload_size: tx.payload_size,
            });
            self.wcg.payload_bytes += tx.payload_size;
        }
        // Redirect edges.
        let incoming_chain = self.chain_len.get(tx_host.as_str()).copied().unwrap_or(0);
        for target_url in targets {
            let Some(target_host) = host_of_url(target_url) else { continue };
            if target_host.as_ref() == tx_host {
                continue; // same-host refresh, not a hop
            }
            let target_node = self.node_for(&target_host);
            self.add_edge(host_node, target_node, EdgeAttr {
                kind: EdgeKind::Redirect,
                stage,
                ts: tx.resp_ts,
                method: None,
                uri_len: 0,
                status: tx.status,
                payload_class: None,
                payload_size: 0,
            });
            self.wcg.redirects.total += 1;
            let new_chain = incoming_chain + 1;
            match self.chain_len.get_mut(target_host.as_ref()) {
                Some(entry) => *entry = (*entry).max(new_chain),
                None => {
                    self.chain_len.insert(target_host.as_ref().to_string(), new_chain);
                }
            }
            self.wcg.redirects.max_chain = self.wcg.redirects.max_chain.max(new_chain);
            if registrable_domain(&tx_host) != registrable_domain(&target_host) {
                self.wcg.redirects.cross_domain += 1;
            }
            for h in [tx_host.as_str(), target_host.as_ref()] {
                if let Some(t) = tld(h) {
                    if !self.wcg.redirects.tlds.contains(t) {
                        self.wcg.redirects.tlds.insert(t.to_string());
                    }
                }
            }
            if let Some(prev) = self.last_redirect_ts {
                self.wcg.redirects.redirect_gaps.push((tx.resp_ts - prev).max(0.0));
            }
            self.last_redirect_ts = Some(tx.resp_ts);
        }
        // Origin edge: origin → first contacted host, inside the first
        // transaction's edge range so stage patches reach it.
        if index == 0 {
            if let Some(origin_id) = self.wcg.origin {
                self.add_edge(origin_id, host_node, EdgeAttr {
                    kind: EdgeKind::Redirect,
                    stage,
                    ts: tx.ts,
                    method: None,
                    uri_len: 0,
                    status: 0,
                    payload_class: None,
                    payload_size: 0,
                });
            }
        }
        let edge_end = self.wcg.graph.edge_count();

        // --- Aggregates ---
        match tx.method {
            Method::Get => self.wcg.method_counts.get += 1,
            Method::Post => self.wcg.method_counts.post += 1,
            _ => self.wcg.method_counts.other += 1,
        }
        let class = (tx.status / 100).min(5) as usize;
        self.wcg.status_class_counts[class] += 1;
        if tx.referer().is_some() {
            self.wcg.referrer_set += 1;
        } else {
            self.wcg.referrer_unset += 1;
        }
        self.wcg.uri_length_total += tx.uri.len();
        self.wcg.uri_count += 1;
        self.wcg.dnt |= tx.dnt_enabled();
        self.wcg.x_flash |= tx.x_flash_version().is_some();
        self.wcg.last_ts = self.wcg.last_ts.max(tx.resp_ts).max(tx.ts);
        if let Some(p) = self.prev_ts {
            self.wcg.inter_tx_gaps.push((tx.ts - p).max(0.0));
        }
        self.prev_ts = Some(tx.ts);
        self.wcg.tx_count += 1;

        self.txs.push(TxMeta { stage, is_get, edge_start, edge_end });
        if self.txs.len() == 1 || tx.ts.total_cmp(&self.max_ts) == Ordering::Greater {
            self.max_ts = tx.ts;
        }
        self.host_scratch = tx_host;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcg::tests::tx;
    use nettrace::payload::PayloadClass;

    fn assert_same(builder: &WcgBuilder, txs: &[HttpTransaction]) {
        let fresh = Wcg::from_transactions(txs);
        let a = serde_json::to_string(builder.wcg()).unwrap();
        let b = serde_json::to_string(&fresh).unwrap();
        assert_eq!(a, b, "incremental state diverged from from-scratch build");
    }

    #[test]
    fn incremental_prefixes_match_from_scratch() {
        let txs = [
            tx(1.0, "a.com", "/r", Method::Get, 302, PayloadClass::Empty, 0,
               Some("http://search.example/q"), Some("http://b.com/l")),
            tx(1.2, "b.com", "/l", Method::Get, 302, PayloadClass::Empty, 0, None,
               Some("http://c.com/g")),
            tx(1.4, "c.com", "/g", Method::Get, 200, PayloadClass::Html, 100, None, None),
            tx(1.6, "c.com", "/x.exe", Method::Get, 200, PayloadClass::Exe, 9000, None, None),
            tx(9.0, "1.2.3.4", "/gate", Method::Post, 200, PayloadClass::Text, 4, None, None),
            tx(9.5, "1.2.3.4", "/gate2", Method::Post, 0, PayloadClass::Empty, 0, None, None),
        ];
        let mut builder = WcgBuilder::new();
        for (i, t) in txs.iter().enumerate() {
            assert_eq!(builder.push(t), PushOutcome::Applied);
            assert_same(&builder, &txs[..=i]);
        }
    }

    #[test]
    fn late_exploit_demotes_post_download_stages() {
        // A post-shaped POST followed by a later exploit download must be
        // retroactively re-staged to Download.
        let txs = [
            tx(1.0, "c.com", "/x.jar", Method::Get, 200, PayloadClass::Jar, 900, None, None),
            tx(5.0, "9.9.9.9", "/g", Method::Post, 0, PayloadClass::Empty, 0, None, None),
            tx(7.0, "d.com", "/y.exe", Method::Get, 200, PayloadClass::Exe, 800, None, None),
        ];
        let mut builder = WcgBuilder::new();
        for (i, t) in txs.iter().enumerate() {
            assert_eq!(builder.push(t), PushOutcome::Applied);
            assert_same(&builder, &txs[..=i]);
        }
        assert_eq!(builder.wcg().stage_counts, [0, 3, 0]);
    }

    #[test]
    fn contacting_the_origin_host_requires_rebuild() {
        let txs = vec![
            tx(1.0, "landing.com", "/x", Method::Get, 200, PayloadClass::Html, 10,
               Some("http://search.example/q"), None),
            tx(2.0, "search.example", "/q", Method::Get, 200, PayloadClass::Html, 10, None, None),
        ];
        let mut builder = WcgBuilder::new();
        assert_eq!(builder.push(&txs[0]), PushOutcome::Applied);
        assert!(builder.wcg().origin.is_some());
        assert_eq!(builder.push(&txs[1]), PushOutcome::NeedsRebuild);
        builder.rebuild(&txs);
        assert!(builder.wcg().origin.is_none());
        assert_same(&builder, &txs);
        // After the rebuild decided "no origin", pushes resume in place.
        let extra = tx(3.0, "search.example", "/q2", Method::Get, 200, PayloadClass::Html, 5,
                       None, None);
        assert_eq!(builder.push(&extra), PushOutcome::Applied);
        let all = vec![txs[0].clone(), txs[1].clone(), extra];
        assert_same(&builder, &all);
    }

    #[test]
    fn out_of_order_timestamps_require_rebuild() {
        let t1 = tx(5.0, "a.com", "/", Method::Get, 200, PayloadClass::Html, 10, None, None);
        let t2 = tx(1.0, "b.com", "/", Method::Get, 200, PayloadClass::Html, 10, None, None);
        let mut builder = WcgBuilder::new();
        assert_eq!(builder.push(&t1), PushOutcome::Applied);
        assert_eq!(builder.push(&t2), PushOutcome::NeedsRebuild);
        let all = vec![t1, t2];
        builder.rebuild(&all);
        assert_same(&builder, &all);
        // Equal timestamps keep the arrival order (stable sort) and stay
        // in-place.
        let t3 = tx(5.0, "c.com", "/", Method::Get, 200, PayloadClass::Html, 10, None, None);
        assert_eq!(builder.push(&t3), PushOutcome::Applied);
        let all = vec![all[0].clone(), all[1].clone(), t3];
        assert_same(&builder, &all);
    }

    #[test]
    fn topo_version_tracks_topology_not_attributes() {
        let mut builder = WcgBuilder::new();
        let t1 = tx(1.0, "a.com", "/", Method::Get, 200, PayloadClass::Html, 10, None, None);
        assert_eq!(builder.push(&t1), PushOutcome::Applied);
        let v1 = builder.topo_version();
        // Same host, same edge pairs: a parallel request/response changes
        // counts but not the simple topology.
        let t2 = tx(2.0, "a.com", "/b", Method::Get, 200, PayloadClass::Html, 10, None, None);
        assert_eq!(builder.push(&t2), PushOutcome::Applied);
        assert_eq!(builder.topo_version(), v1);
        // A new host changes topology.
        let t3 = tx(3.0, "b.com", "/", Method::Get, 200, PayloadClass::Html, 10, None, None);
        assert_eq!(builder.push(&t3), PushOutcome::Applied);
        assert!(builder.topo_version() > v1);
        // Rebuilds advance the version past every previously seen value.
        let all = vec![t1, t2, t3];
        let before = builder.topo_version();
        builder.rebuild(&all);
        assert!(builder.topo_version() > before);
    }

    #[test]
    fn empty_builder_matches_empty_from_scratch() {
        let builder = WcgBuilder::new();
        assert_same(&builder, &[]);
        assert_eq!(builder.tx_count(), 0);
    }
}
