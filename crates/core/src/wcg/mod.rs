//! The Web Conversation Graph (WCG) abstraction of Sec. III.
//!
//! A WCG is a directed multigraph whose nodes are hosts (victim, remote
//! hosts, and an *origin node* naming the enticement source) and whose
//! edges are request / response / redirect relations annotated with
//! method, URI length, status code, payload type and size, timestamp, and
//! infection **stage** (pre-download / download / post-download).

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use nettrace::http::Method;
use nettrace::payload::PayloadClass;
use nettrace::HttpTransaction;
use serde::{Deserialize, Serialize};
use wcgraph::{DiGraph, NodeId};

pub mod builder;
pub mod redirect;
pub mod stages;

pub use builder::{PushOutcome, WcgBuilder};
pub use stages::Stage;

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The client to which payloads are downloaded.
    Victim,
    /// Any remote host participating in the conversation.
    Remote,
    /// The enticement source (referrer of the first transaction).
    Origin,
}

/// Node annotations (Sec. III-C, node level).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeAttr {
    /// Hostname (or IP string) of the host.
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
    /// IP address when known.
    pub ip: Option<Ipv4Addr>,
    /// Distinct URIs requested from this host.
    pub uris: BTreeSet<String>,
    /// Count of payloads per type served by this host.
    pub payload_summary: BTreeMap<PayloadClass, usize>,
}

impl NodeAttr {
    fn new(name: &str, kind: NodeKind) -> Self {
        NodeAttr {
            name: name.to_string(),
            kind,
            ip: None,
            uris: BTreeSet::new(),
            payload_summary: BTreeMap::new(),
        }
    }
}

/// The relation an edge expresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Victim → host request.
    Request,
    /// Host → victim response.
    Response,
    /// Host → host redirection.
    Redirect,
}

/// Edge annotations (Sec. III-C, edge level).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeAttr {
    /// Relation kind.
    pub kind: EdgeKind,
    /// Conversation stage this edge belongs to.
    pub stage: Stage,
    /// Event timestamp (request time for requests, completion for
    /// responses, response time for redirects).
    pub ts: f64,
    /// HTTP method (request edges).
    pub method: Option<Method>,
    /// URI length (request edges).
    pub uri_len: usize,
    /// HTTP status code (response edges; 0 elsewhere).
    pub status: u16,
    /// Payload type (response edges).
    pub payload_class: Option<PayloadClass>,
    /// Payload size in bytes (response edges).
    pub payload_size: usize,
}

/// Redirection aggregates (graph level).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RedirectStats {
    /// Total redirect hops observed (sum over all chains; Sec. III-D's
    /// modified inference takes the sum of all redirections in a WCG).
    pub total: usize,
    /// Longest chain of consecutive redirections (unique hops).
    pub max_chain: usize,
    /// Redirections whose source and target registrable domains differ.
    pub cross_domain: usize,
    /// Distinct top-level domains among redirect participants.
    pub tlds: BTreeSet<String>,
    /// Gaps between consecutive redirect events, for the
    /// average-delay-between-redirects property.
    pub redirect_gaps: Vec<f64>,
}

/// A fully built and stage-annotated web conversation graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wcg {
    /// The underlying annotated multigraph.
    pub graph: DiGraph<NodeAttr, EdgeAttr>,
    /// The victim node, when any transaction was observed.
    pub victim: Option<NodeId>,
    /// The origin node (known enticement source), if identifiable.
    pub origin: Option<NodeId>,
    /// Whether the DNT header was enabled on any request.
    pub dnt: bool,
    /// Whether any request carried an `X-Flash-Version` header.
    pub x_flash: bool,
    /// Total GET / POST / other request methods.
    pub method_counts: MethodCounts,
    /// Response counts per status class (index 1–5; index 0 counts
    /// requests with no observed response).
    pub status_class_counts: [usize; 6],
    /// Transactions with a referrer set / unset.
    pub referrer_set: usize,
    /// Transactions without a referrer.
    pub referrer_unset: usize,
    /// Sum of request-URI lengths.
    pub uri_length_total: usize,
    /// Number of request URIs (with multiplicity).
    pub uri_count: usize,
    /// First request timestamp.
    pub first_ts: f64,
    /// Last response-completion timestamp.
    pub last_ts: f64,
    /// Gaps between consecutive transactions.
    pub inter_tx_gaps: Vec<f64>,
    /// Redirection aggregates.
    pub redirects: RedirectStats,
    /// Total transaction count.
    pub tx_count: usize,
    /// Total payload bytes delivered to the victim.
    pub payload_bytes: usize,
    /// Per-stage transaction counts `[pre, download, post]`.
    pub stage_counts: [usize; 3],
}

/// GET / POST / other request-method totals.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MethodCounts {
    /// GET requests.
    pub get: usize,
    /// POST requests.
    pub post: usize,
    /// Any other method.
    pub other: usize,
}

impl Wcg {
    /// Builds a WCG from a conversation's transactions (any order; they
    /// are sorted by request timestamp internally), including redirect
    /// mining, origin-node inference, and stage annotation.
    ///
    /// # Example
    ///
    /// ```
    /// use dynaminer::wcg::Wcg;
    /// use rand::{rngs::StdRng, SeedableRng};
    /// use synthtraffic::{episode::generate_infection, EkFamily};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let ep = generate_infection(&mut rng, EkFamily::Rig, 1.45e9);
    /// let wcg = Wcg::from_transactions(&ep.transactions);
    /// assert!(wcg.graph.node_count() >= 2);
    /// assert_eq!(wcg.tx_count, ep.transactions.len());
    /// ```
    pub fn from_transactions(transactions: &[HttpTransaction]) -> Wcg {
        let mut builder = WcgBuilder::new();
        builder.rebuild(transactions);
        builder.into_wcg()
    }

    /// Conversation duration in seconds.
    pub fn duration(&self) -> f64 {
        (self.last_ts - self.first_ts).max(0.0)
    }

    /// Number of remote hosts (nodes excluding victim and origin).
    pub fn remote_host_count(&self) -> usize {
        self.graph
            .node_ids()
            .filter(|&n| self.graph.node(n).kind == NodeKind::Remote)
            .count()
    }

    /// Whether the conversation contains at least one post-download edge.
    pub fn has_post_download(&self) -> bool {
        self.stage_counts[2] > 0
    }

    /// Renders the WCG in Graphviz DOT format (Fig. 6-style output).
    pub fn to_dot(&self, name: &str) -> String {
        wcgraph::dot::to_dot(
            &self.graph,
            name,
            |n| format!("{} ({:?})", n.name, n.kind),
            |e| match e.kind {
                EdgeKind::Request => format!(
                    "req {} len={} s{}",
                    e.method.as_ref().map_or("?", |m| m.as_str()),
                    e.uri_len,
                    e.stage.index()
                ),
                EdgeKind::Response => format!(
                    "res {} {} {}B s{}",
                    e.status,
                    e.payload_class.map_or("-", |c| c.label()),
                    e.payload_size,
                    e.stage.index()
                ),
                EdgeKind::Redirect => format!("redirect s{}", e.stage.index()),
            },
        )
    }
}

/// Last two DNS labels of `host`, borrowed from the input (no allocation —
/// this runs once per redirect edge on the live path).
fn registrable_domain(host: &str) -> &str {
    match host.rmatch_indices('.').nth(1) {
        Some((i, _)) => &host[i + 1..],
        None => host,
    }
}

/// Top-level domain of `host`, borrowed from the input. `None` for IPv4
/// literals. Callers pass already-lowercased host names, so no case
/// normalization happens here.
fn tld(host: &str) -> Option<&str> {
    if host.parse::<Ipv4Addr>().is_ok() {
        return None;
    }
    host.rsplit('.').next()
}

/// Host component of `url`, lowercased. Borrows from the input when the
/// host is already lowercase (the overwhelmingly common case for mined
/// redirect targets).
fn host_of_url(url: &str) -> Option<Cow<'_, str>> {
    let rest = url.split_once("://").map_or(url, |(_, r)| r);
    let host = rest.split(['/', '?', '#']).next()?;
    let host = host.split(':').next()?;
    if host.is_empty() {
        None
    } else if host.bytes().any(|b| b.is_ascii_uppercase()) {
        Some(Cow::Owned(host.to_ascii_lowercase()))
    } else {
        Some(Cow::Borrowed(host))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use nettrace::http::{HeaderMap, Method};
    use nettrace::reassembly::Endpoint;

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tx(
        ts: f64,
        host: &str,
        uri: &str,
        method: Method,
        status: u16,
        class: PayloadClass,
        size: usize,
        referer: Option<&str>,
        location: Option<&str>,
    ) -> HttpTransaction {
        let mut req_headers = HeaderMap::new();
        req_headers.append("Host", host);
        if let Some(r) = referer {
            req_headers.append("Referer", r);
        }
        let mut resp_headers = HeaderMap::new();
        if let Some(l) = location {
            resp_headers.append("Location", l);
        }
        HttpTransaction {
            seq: 0,
            ts,
            resp_ts: ts + 0.1,
            client: Endpoint::new(Ipv4Addr::new(10, 0, 0, 5), 50000),
            server: Endpoint::new(Ipv4Addr::new(203, 0, 113, 10), 80),
            host: host.to_string(),
            method,
            uri: uri.to_string(),
            req_headers,
            status,
            resp_headers,
            payload_class: class,
            payload_size: size,
            body_preview: Vec::new(),
            payload_digest: 0,
        }
    }

    fn angler_like() -> Vec<HttpTransaction> {
        vec![
            tx(1.0, "www.bing.com", "/search?q=x", Method::Get, 200, PayloadClass::Html, 2000, None, None),
            tx(2.0, "siteA.com", "/page", Method::Get, 302, PayloadClass::Empty, 0,
               Some("http://www.bing.com/search?q=x"), Some("http://siteB.net/landing")),
            tx(2.3, "siteB.net", "/landing", Method::Get, 302, PayloadClass::Empty, 0,
               Some("http://siteA.com/page"), Some("http://exploit.ru/gate.php?k=v")),
            tx(2.6, "exploit.ru", "/gate.php?k=v", Method::Get, 200, PayloadClass::Html, 40_000,
               Some("http://siteB.net/landing"), None),
            tx(3.0, "exploit.ru", "/flash.swf", Method::Get, 200, PayloadClass::Swf, 80_000,
               Some("http://exploit.ru/gate.php?k=v"), None),
            tx(10.0, "198.51.100.9", "/gate.php", Method::Post, 200, PayloadClass::Text, 30, None, None),
            tx(20.0, "198.51.100.10", "/gate.php", Method::Post, 404, PayloadClass::Empty, 0, None, None),
        ]
    }

    #[test]
    fn builds_nodes_for_victim_origin_and_hosts() {
        let wcg = Wcg::from_transactions(&angler_like());
        // bing is contacted directly, so no separate origin node; victim +
        // 5 remote hosts (bing, siteA, siteB, exploit.ru, 2 C&C IPs) = 7.
        assert_eq!(wcg.graph.node_count(), 7);
        assert!(wcg.victim.is_some());
        assert!(wcg.origin.is_none(), "bing is contacted, not a pure origin");
        assert_eq!(wcg.remote_host_count(), 6);
    }

    #[test]
    fn origin_node_created_when_referrer_not_contacted() {
        let txs = vec![tx(
            1.0, "landing.com", "/x", Method::Get, 200, PayloadClass::Html, 10,
            Some("http://www.google.com/search?q=a"), None,
        )];
        let wcg = Wcg::from_transactions(&txs);
        let origin = wcg.origin.expect("origin node");
        assert_eq!(wcg.graph.node(origin).name, "www.google.com");
        assert_eq!(wcg.graph.node(origin).kind, NodeKind::Origin);
        // Origin contributes a redirect edge to the first host.
        let redirects = wcg
            .graph
            .edges()
            .filter(|(_, _, _, e)| e.kind == EdgeKind::Redirect)
            .count();
        assert_eq!(redirects, 1);
    }

    #[test]
    fn redirect_chain_is_tracked() {
        let wcg = Wcg::from_transactions(&angler_like());
        assert_eq!(wcg.redirects.total, 2);
        assert_eq!(wcg.redirects.max_chain, 2);
        assert_eq!(wcg.redirects.cross_domain, 2);
        assert!(wcg.redirects.tlds.contains("com"));
        assert!(wcg.redirects.tlds.contains("net"));
        assert!(wcg.redirects.tlds.contains("ru"));
    }

    #[test]
    fn aggregates_count_methods_statuses_referrers() {
        let wcg = Wcg::from_transactions(&angler_like());
        assert_eq!(wcg.method_counts.get, 5);
        assert_eq!(wcg.method_counts.post, 2);
        assert_eq!(wcg.status_class_counts[2], 4); // 200s
        assert_eq!(wcg.status_class_counts[3], 2); // 302s
        assert_eq!(wcg.status_class_counts[4], 1); // 404
        assert_eq!(wcg.referrer_set, 4);
        assert_eq!(wcg.referrer_unset, 3);
        assert_eq!(wcg.tx_count, 7);
        assert!(wcg.duration() > 18.0);
    }

    #[test]
    fn stages_split_pre_download_post() {
        let wcg = Wcg::from_transactions(&angler_like());
        assert!(wcg.stage_counts[0] >= 2, "pre: {:?}", wcg.stage_counts);
        assert!(wcg.stage_counts[1] >= 1, "download: {:?}", wcg.stage_counts);
        assert_eq!(wcg.stage_counts[2], 2, "post: {:?}", wcg.stage_counts);
        assert!(wcg.has_post_download());
    }

    #[test]
    fn payload_summary_per_node() {
        let wcg = Wcg::from_transactions(&angler_like());
        let exploit = wcg
            .graph
            .node_ids()
            .find(|&n| wcg.graph.node(n).name == "exploit.ru")
            .unwrap();
        let summary = &wcg.graph.node(exploit).payload_summary;
        assert_eq!(summary.get(&PayloadClass::Swf), Some(&1));
        assert_eq!(summary.get(&PayloadClass::Html), Some(&1));
    }

    #[test]
    fn empty_conversation_yields_empty_graph() {
        let wcg = Wcg::from_transactions(&[]);
        assert_eq!(wcg.graph.node_count(), 0);
        assert_eq!(wcg.tx_count, 0);
        assert!(wcg.victim.is_none());
    }

    #[test]
    fn dot_export_mentions_hosts_and_stages() {
        let wcg = Wcg::from_transactions(&angler_like());
        let dot = wcg.to_dot("angler");
        assert!(dot.contains("exploit.ru"));
        assert!(dot.contains("req GET"));
        assert!(dot.contains("res 200"));
    }

    #[test]
    fn helper_functions() {
        assert_eq!(registrable_domain("a.b.example.com"), "example.com");
        assert_eq!(registrable_domain("example.com"), "example.com");
        assert_eq!(registrable_domain("com"), "com");
        assert_eq!(tld("x.example.ru"), Some("ru"));
        assert_eq!(tld("198.51.100.9"), None);
        assert_eq!(host_of_url("http://h.com/p?q=1").as_deref(), Some("h.com"));
        assert_eq!(host_of_url("https://h.com:8080/p").as_deref(), Some("h.com"));
        assert_eq!(host_of_url("h.com/p").as_deref(), Some("h.com"));
        assert_eq!(host_of_url("http://H.CoM/p").as_deref(), Some("h.com"));
        assert_eq!(host_of_url("http:///"), None);
    }

    #[test]
    fn victim_is_the_first_transactions_client() {
        // Conversations are clustered per client upstream; when a mixed
        // stream slips through, the WCG anchors on the first client and
        // keeps all transactions (documented behavior).
        let mut txs = angler_like();
        txs[3].client = nettrace::reassembly::Endpoint::new(Ipv4Addr::new(10, 9, 9, 9), 1234);
        let wcg = Wcg::from_transactions(&txs);
        let victim = wcg.victim.unwrap();
        assert_eq!(wcg.graph.node(victim).ip, Some(Ipv4Addr::new(10, 0, 0, 5)));
        assert_eq!(wcg.tx_count, txs.len());
    }

    #[test]
    fn wcg_serde_roundtrip_preserves_structure() {
        let wcg = Wcg::from_transactions(&angler_like());
        let json = serde_json::to_string(&wcg).unwrap();
        let restored: Wcg = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.graph.node_count(), wcg.graph.node_count());
        assert_eq!(restored.graph.edge_count(), wcg.graph.edge_count());
        assert_eq!(restored.stage_counts, wcg.stage_counts);
        assert_eq!(restored.redirects.max_chain, wcg.redirects.max_chain);
    }

    #[test]
    fn inter_tx_gaps_are_recorded() {
        let wcg = Wcg::from_transactions(&angler_like());
        assert_eq!(wcg.inter_tx_gaps.len(), 6);
        assert!(wcg.inter_tx_gaps.iter().all(|&g| g >= 0.0));
    }
}
