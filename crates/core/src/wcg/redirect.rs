//! Redirect-target mining from responses.
//!
//! Redirection evidence comes in three forms (Sec. II "Challenges in
//! connecting the dots"):
//!
//! 1. `Location` headers on 3xx responses,
//! 2. `<meta http-equiv="refresh" content="0;url=…">` tags in HTML,
//! 3. JavaScript redirects, frequently obfuscated — we decode the common
//!    `atob("…")`-wrapped `window.location` idiom and percent-encoded
//!    literals, the reproduction's stand-in for the paper's "reverse
//!    engineering of obfuscated JavaScript and HTML code".

use nettrace::HttpTransaction;

/// Extracts every redirect target URL this transaction's response carries.
pub fn targets(tx: &HttpTransaction) -> Vec<String> {
    let mut out = Vec::new();
    if tx.is_redirect() {
        if let Some(l) = tx.location() {
            out.push(l.to_string());
        }
    }
    // Raw-byte prechecks before paying for UTF-8 conversion. ASCII bytes
    // survive `from_utf8_lossy` unchanged and in order (invalid sequences
    // become the non-ASCII U+FFFD), so a pure-ASCII pattern absent from
    // the raw preview is absent from the converted body too. Most bodies
    // — all binary payloads and nearly all benign HTML — stop here.
    let raw = &tx.body_preview;
    let might_meta = find_anchored(raw, b"http-equiv=\"refresh\"", 4, true).is_some();
    let might_js = find_anchored(raw, b"atob(\"", 4, false).is_some()
        || find_anchored(raw, b"window.location", 6, false).is_some();
    if might_meta || might_js {
        let body = String::from_utf8_lossy(raw);
        if might_meta {
            if let Some(url) = meta_refresh_target(&body) {
                out.push(url);
            }
        }
        if might_js {
            out.extend(js_targets(&body));
        }
    }
    out
}

/// Substring search over raw bytes, skipping via a SIMD single-byte scan
/// ([`nettrace::scan::memchr`]) for the needle byte at `anchor` — chosen
/// by the caller as a byte without case variants (`-`, `(`, `.`) so one
/// scan serves the case-insensitive mode too. This runs against every
/// response body on the WCG construction path; a windowed compare at
/// every offset is ~20× slower.
fn find_anchored(h: &[u8], n: &[u8], anchor: usize, ci: bool) -> Option<usize> {
    debug_assert!(!n[anchor].is_ascii_alphabetic(), "anchor byte must be caseless");
    if h.len() < n.len() {
        return None;
    }
    let last = h.len() - n.len();
    let mut at = anchor;
    loop {
        let pos = nettrace::scan::memchr(n[anchor], h.get(at..)?)? + at;
        let start = pos - anchor; // pos >= at >= anchor
        if start > last {
            return None;
        }
        let w = &h[start..start + n.len()];
        if if ci { w.eq_ignore_ascii_case(n) } else { w == n } {
            return Some(start);
        }
        at = pos + 1;
    }
}

/// ASCII-case-insensitive substring search. Returns a byte offset that is
/// always a char boundary (the needle's first byte is ASCII on a match).
/// Avoids lowercasing the whole haystack.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() {
        return Some(0);
    }
    match n.iter().position(|b| !b.is_ascii_alphabetic()) {
        Some(a) => find_anchored(h, n, a, true),
        // All-alphabetic needles have no caseless anchor byte; fall back
        // to the generic SIMD case-folding scan.
        None => {
            let lower = n.to_ascii_lowercase();
            nettrace::scan::find_ignore_ascii_case(h, &lower)
        }
    }
}

/// Parses a meta-refresh redirect target out of an HTML body.
pub fn meta_refresh_target(body: &str) -> Option<String> {
    let meta_at = find_ci(body, "http-equiv=\"refresh\"")?;
    let content_at = find_ci(&body[meta_at..], "content=\"")? + meta_at + "content=\"".len();
    let content_end = body[content_at..].find('"')? + content_at;
    let content = &body[content_at..content_end];
    let url_at = find_ci(content, "url=")?;
    let url = content[url_at + 4..].trim();
    if url.is_empty() {
        None
    } else {
        Some(url.to_string())
    }
}

/// Extracts JavaScript redirect targets: plain `window.location = "…"`
/// assignments and base64-obfuscated `atob("…")` arguments that decode to
/// URLs.
pub fn js_targets(body: &str) -> Vec<String> {
    use nettrace::scan;
    let mut out = Vec::new();
    // Match offsets are char boundaries: every needle is ASCII, and a
    // match's first byte equals the needle's, so slicing the str there is
    // sound.
    // Obfuscated: any atob("<base64>") whose decoded form looks like a URL.
    let mut rest = body;
    while let Some(at) = scan::find(rest.as_bytes(), b"atob(\"") {
        let after = &rest[at + 6..];
        if let Some(end) = scan::memchr(b'"', after.as_bytes()) {
            if let Some(decoded) = nettrace::base64::decode(&after[..end]) {
                if let Ok(text) = String::from_utf8(decoded) {
                    if text.starts_with("http://") || text.starts_with("https://") {
                        out.push(text);
                    }
                }
            }
            rest = &after[end..];
        } else {
            break;
        }
    }
    // Plain assignment: window.location = "http://…".
    let mut rest = body;
    while let Some(at) = scan::find(rest.as_bytes(), b"window.location") {
        let after = &rest[at..];
        if let Some(q) = scan::memchr(b'"', after.as_bytes()) {
            let after_q = &after[q + 1..];
            if let Some(end) = scan::memchr(b'"', after_q.as_bytes()) {
                let candidate = &after_q[..end];
                if candidate.starts_with("http://") || candidate.starts_with("https://") {
                    out.push(candidate.to_string());
                }
                rest = &after_q[end..];
                continue;
            }
        }
        rest = &after[15..];
    }
    // A plain assignment to a just-decoded atob variable produces the URL
    // once via the atob branch; dedupe.
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::http::{HeaderMap, Method};
    use nettrace::payload::PayloadClass;
    use nettrace::reassembly::Endpoint;
    use std::net::Ipv4Addr;

    fn tx_with(status: u16, location: Option<&str>, body: &[u8]) -> HttpTransaction {
        let mut resp_headers = HeaderMap::new();
        if let Some(l) = location {
            resp_headers.append("Location", l);
        }
        HttpTransaction {
            seq: 0,
            ts: 0.0,
            resp_ts: 0.1,
            client: Endpoint::new(Ipv4Addr::LOCALHOST, 1),
            server: Endpoint::new(Ipv4Addr::LOCALHOST, 80),
            host: "h.com".into(),
            method: Method::Get,
            uri: "/".into(),
            req_headers: HeaderMap::new(),
            status,
            resp_headers,
            payload_class: PayloadClass::Html,
            payload_size: body.len(),
            body_preview: body.to_vec(),
            payload_digest: 0,
        }
    }

    #[test]
    fn location_header_on_3xx() {
        let tx = tx_with(302, Some("http://next.example/x"), b"");
        assert_eq!(targets(&tx), vec!["http://next.example/x"]);
    }

    #[test]
    fn location_ignored_on_200() {
        let tx = tx_with(200, Some("http://next.example/x"), b"");
        assert!(targets(&tx).is_empty());
    }

    #[test]
    fn meta_refresh_is_parsed() {
        let body = br#"<html><head><meta http-equiv="refresh" content="0;url=http://hop.example/next"></head></html>"#;
        let tx = tx_with(200, None, body);
        assert_eq!(targets(&tx), vec!["http://hop.example/next"]);
    }

    #[test]
    fn obfuscated_atob_redirect_is_decoded() {
        let url = "http://exploit.example/gate?x=1";
        let b64 = nettrace::base64::encode(url.as_bytes());
        let body = format!("<script>var u=atob(\"{b64}\");window.location=u;</script>");
        let tx = tx_with(200, None, body.as_bytes());
        assert_eq!(targets(&tx), vec![url.to_string()]);
    }

    #[test]
    fn plain_window_location_assignment() {
        let body = br#"<script>window.location = "http://plain.example/l";</script>"#;
        let tx = tx_with(200, None, body);
        assert_eq!(targets(&tx), vec!["http://plain.example/l"]);
    }

    #[test]
    fn non_url_atob_is_ignored() {
        let b64 = nettrace::base64::encode(b"just some data");
        let body = format!("<script>var d=atob(\"{b64}\");</script>");
        let tx = tx_with(200, None, body.as_bytes());
        assert!(targets(&tx).is_empty());
    }

    #[test]
    fn malformed_markup_is_ignored() {
        for body in [
            &b"<meta http-equiv=\"refresh\" content=\"0\">"[..],
            b"<script>atob(\"%%%bad%%%\")</script>",
            b"<script>window.location = notaliteral;</script>",
            b"",
        ] {
            let tx = tx_with(200, None, body);
            assert!(targets(&tx).is_empty(), "body {:?}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn multiple_targets_deduplicated() {
        let url = "http://dup.example/x";
        let b64 = nettrace::base64::encode(url.as_bytes());
        let body = format!(
            "<script>window.location = \"{url}\";var u=atob(\"{b64}\");</script>"
        );
        let tx = tx_with(200, None, body.as_bytes());
        assert_eq!(targets(&tx), vec![url.to_string()]);
    }
}
