//! The 37 payload-agnostic features of Table II.
//!
//! Features are grouped as in the paper: high-level (f1–f6), graph
//! (f7–f25), header (f26–f35), and temporal (f36–f37). Where the paper's
//! one-line description is ambiguous, the rustdoc on the corresponding
//! constant in [`NAMES`]'s order documents the definition chosen:
//!
//! * **f3 WCG-Size** — total payload bytes delivered in the WCG (the
//!   downloader-graph "size" of the cited prior work), which keeps it
//!   distinct from f8 (edge count).
//! * **f9 Degree** — the maximum total degree over nodes, Δ(G).
//! * **f24 Avg-K-Nearest-Neighbors** — average number of nodes within
//!   distance k = 2 of each node.

use serde::{Deserialize, Serialize};
use wcgraph::algo;
use wcgraph::GraphView;

use crate::wcg::Wcg;

/// Number of features (f1–f37).
pub const FEATURE_COUNT: usize = 37;

/// Feature names, index 0 = f1 … index 36 = f37, matching Table II.
pub const NAMES: [&str; FEATURE_COUNT] = [
    "origin",                      // f1
    "x-flash-version",             // f2
    "wcg-size",                    // f3
    "conversation-length",         // f4
    "avg-uris-per-host",           // f5
    "average-uri-length",          // f6
    "order",                       // f7
    "size",                        // f8
    "degree",                      // f9
    "density",                     // f10
    "volume",                      // f11
    "diameter",                    // f12
    "avg-in-degree",               // f13
    "avg-out-degree",              // f14
    "reciprocity",                 // f15
    "avg-degree-centrality",       // f16
    "avg-closeness-centrality",    // f17
    "avg-betweenness-centrality",  // f18
    "avg-load-centrality",         // f19
    "avg-node-centrality",         // f20
    "avg-clustering-coefficient",  // f21
    "avg-neighbor-degree",         // f22
    "avg-degree-connectivity",     // f23
    "avg-k-nearest-neighbors",     // f24
    "avg-pagerank",                // f25
    "gets",                        // f26
    "posts",                       // f27
    "other-methods",               // f28
    "http-10xs",                   // f29
    "http-20xs",                   // f30
    "http-30xs",                   // f31
    "http-40xs",                   // f32
    "http-50xs",                   // f33
    "referrer-ctrs",               // f34
    "no-referrer-ctrs",            // f35
    "duration",                    // f36
    "avg-inter-transact-time",     // f37
];

/// A feature group from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// High-level features f1–f6 (HLFs).
    HighLevel,
    /// Graph features f7–f25 (GFs).
    Graph,
    /// Header features f26–f35 (HFs).
    Header,
    /// Temporal features f36–f37 (TFs).
    Temporal,
}

impl FeatureGroup {
    /// Column range of this group within a feature vector.
    pub fn columns(self) -> std::ops::Range<usize> {
        match self {
            FeatureGroup::HighLevel => 0..6,
            FeatureGroup::Graph => 6..25,
            FeatureGroup::Header => 25..35,
            FeatureGroup::Temporal => 35..37,
        }
    }

    /// The group a feature column belongs to.
    pub fn of_column(column: usize) -> FeatureGroup {
        match column {
            0..=5 => FeatureGroup::HighLevel,
            6..=24 => FeatureGroup::Graph,
            25..=34 => FeatureGroup::Header,
            _ => FeatureGroup::Temporal,
        }
    }
}

/// A 37-dimensional feature vector extracted from one WCG.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector(pub [f64; FEATURE_COUNT]);

impl Serialize for FeatureVector {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.as_slice().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for FeatureVector {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let values = Vec::<f64>::deserialize(deserializer)?;
        let arr: [f64; FEATURE_COUNT] = values
            .try_into()
            .map_err(|v: Vec<f64>| {
                serde::de::Error::invalid_length(v.len(), &"37 feature values")
            })?;
        Ok(FeatureVector(arr))
    }
}

impl FeatureVector {
    /// The underlying values in f1…f37 order.
    pub fn values(&self) -> &[f64; FEATURE_COUNT] {
        &self.0
    }

    /// Value of the named feature.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not one of [`NAMES`].
    pub fn get(&self, name: &str) -> f64 {
        let idx = NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown feature {name:?}"));
        self.0[idx]
    }
}

/// Columns of the feature vector that depend only on the graph's simple
/// topology (which nodes exist and which ordered pairs are connected),
/// not on edge multiplicities, attributes, or traffic aggregates. These
/// are exactly the columns [`FeatureExtractor::extract_memoized`] reuses
/// from a [`TopoCache`] while the topology version is unchanged:
/// f12 diameter, f15 reciprocity, f17 closeness, f18 betweenness,
/// f19 load, f20 node connectivity, f21 clustering, f22 neighbor degree,
/// f24 k-nearest (k = 2), f25 pagerank.
pub const TOPO_COLUMNS: [usize; 10] = [11, 14, 16, 17, 18, 19, 20, 21, 23, 24];

/// Memoized values of the [`TOPO_COLUMNS`] features, keyed by the
/// [`WcgBuilder::topo_version`](crate::wcg::WcgBuilder::topo_version)
/// they were computed at.
#[derive(Debug, Clone, Default)]
pub struct TopoCache {
    version: Option<u64>,
    values: [f64; TOPO_COLUMNS.len()],
}

impl TopoCache {
    /// An empty cache; the first extraction always computes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The topology version the cached values correspond to, if any.
    pub fn version(&self) -> Option<u64> {
        self.version
    }
}

/// Reusable feature-extraction workspace.
///
/// Owns a [`GraphView`] whose CSR adjacency buffers are rebuilt in place
/// per extraction, plus an [`algo::AlgoScratch`] threaded through every
/// topology traversal, so steady-state extraction performs no heap
/// allocation at all: adjacency, BFS, Brandes, PageRank, and max-flow
/// buffers grow to the largest conversation seen and are reused from
/// then on. Results are bit-identical to [`extract`].
#[derive(Debug, Default)]
pub struct FeatureExtractor {
    view: GraphView,
    scratch: algo::AlgoScratch,
}

impl FeatureExtractor {
    /// A fresh extractor with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts all 37 features, reusing this extractor's scratch space.
    pub fn extract(&mut self, wcg: &Wcg) -> FeatureVector {
        let mut f = [0.0f64; FEATURE_COUNT];
        base_features(wcg, &mut f);
        self.view.load(&wcg.graph);
        let mut topo = [0.0f64; TOPO_COLUMNS.len()];
        topo_features(&self.view, &mut self.scratch, &mut topo);
        for (&col, &v) in TOPO_COLUMNS.iter().zip(topo.iter()) {
            f[col] = v;
        }
        FeatureVector(f)
    }

    /// Extracts all 37 features, reusing the [`TOPO_COLUMNS`] values from
    /// `cache` when it was filled at the same `topo_version` (and
    /// refilling it otherwise).
    ///
    /// `topo_version` must come from the
    /// [`WcgBuilder`](crate::wcg::WcgBuilder) that built `wcg`; the
    /// builder bumps it whenever a node or a new simple directed edge
    /// pair appears, which are exactly the events the topology-only
    /// features can observe. All other columns are recomputed every call.
    pub fn extract_memoized(
        &mut self,
        wcg: &Wcg,
        topo_version: u64,
        cache: &mut TopoCache,
    ) -> FeatureVector {
        let mut f = [0.0f64; FEATURE_COUNT];
        base_features(wcg, &mut f);
        if cache.version != Some(topo_version) {
            self.view.load(&wcg.graph);
            topo_features(&self.view, &mut self.scratch, &mut cache.values);
            cache.version = Some(topo_version);
        }
        for (&col, &v) in TOPO_COLUMNS.iter().zip(cache.values.iter()) {
            f[col] = v;
        }
        FeatureVector(f)
    }
}

/// Fills every feature column except [`TOPO_COLUMNS`].
fn base_features(wcg: &Wcg, f: &mut [f64; FEATURE_COUNT]) {
    let g = &wcg.graph;
    let n = g.node_count();
    let e = g.edge_count();

    // --- High-level features f1–f6 --------------------------------------
    f[0] = f64::from(wcg.origin.is_some() || wcg.referrer_set > 0); // f1 origin known
    f[1] = f64::from(wcg.x_flash); // f2
    f[2] = wcg.payload_bytes as f64; // f3 WCG-Size (bytes)
    f[3] = wcg.remote_host_count() as f64; // f4 conversation length
    // f5 numerator counts remote-host nodes only, matching the
    // remote-host denominator. Victim and origin nodes never carry URIs
    // (only contacted servers accumulate them), so the filter is a
    // semantic guard rather than a value change.
    let total_uris: usize = g
        .node_ids()
        .filter(|&v| g.node(v).kind == crate::wcg::NodeKind::Remote)
        .map(|v| g.node(v).uris.len())
        .sum();
    let host_count = wcg.remote_host_count().max(1);
    f[4] = total_uris as f64 / host_count as f64; // f5
    f[5] = if wcg.uri_count > 0 {
        wcg.uri_length_total as f64 / wcg.uri_count as f64
    } else {
        0.0
    }; // f6

    // --- Graph features f7–f25 (multiplicity/degree-sensitive part) ------
    f[6] = n as f64; // f7 order
    f[7] = e as f64; // f8 size
    f[8] = g.node_ids().map(|v| g.degree(v)).max().unwrap_or(0) as f64; // f9 degree Δ(G)
    f[9] = if n > 1 { e as f64 / (n * (n - 1)) as f64 } else { 0.0 }; // f10 density
    f[10] = (2 * e) as f64; // f11 volume
    f[12] = if n > 0 { e as f64 / n as f64 } else { 0.0 }; // f13 avg in-degree
    f[13] = f[12]; // f14 avg out-degree (equal on any digraph; the paper
                   // ranks these adjacently with identical gain)
    f[15] = algo::centrality::avg_degree_centrality(g); // f16
    f[22] = algo::connectivity::avg_degree_connectivity(g); // f23

    // --- Header features f26–f35 -----------------------------------------
    f[25] = wcg.method_counts.get as f64;
    f[26] = wcg.method_counts.post as f64;
    f[27] = wcg.method_counts.other as f64;
    f[28] = wcg.status_class_counts[1] as f64;
    f[29] = wcg.status_class_counts[2] as f64;
    f[30] = wcg.status_class_counts[3] as f64;
    f[31] = wcg.status_class_counts[4] as f64;
    f[32] = wcg.status_class_counts[5] as f64;
    f[33] = wcg.referrer_set as f64;
    f[34] = wcg.referrer_unset as f64;

    // --- Temporal features f36–f37 ---------------------------------------
    // f36 is the conversation duration itself (Table II); the mean
    // inter-transaction gap is already f37. (An earlier revision divided
    // by uri_count, silently shrinking f36 on busy conversations.)
    f[35] = wcg.duration();
    f[36] = if wcg.inter_tx_gaps.is_empty() {
        0.0
    } else {
        wcg.inter_tx_gaps.iter().sum::<f64>() / wcg.inter_tx_gaps.len() as f64
    };
}

/// Computes the [`TOPO_COLUMNS`] features from a loaded view, in column
/// order. Betweenness (f18) and load (f19) come out of one fused Brandes
/// pass. Every traversal runs over `scratch`'s buffers, so this function
/// allocates nothing once those have grown to the graph's order.
fn topo_features(
    view: &GraphView,
    scratch: &mut algo::AlgoScratch,
    out: &mut [f64; TOPO_COLUMNS.len()],
) {
    out[0] = algo::paths::diameter_view_scratch(view, scratch) as f64; // f12
    out[1] = algo::reciprocity::reciprocity_view(view); // f15
    out[2] = algo::centrality::closeness_centrality_mean_scratch(view, scratch); // f17
    let (between, load) = algo::centrality::betweenness_and_load_means_scratch(view, scratch);
    out[3] = between; // f18
    out[4] = load; // f19
    out[5] = algo::connectivity::average_node_connectivity_view_scratch(view, scratch); // f20
    out[6] = algo::clustering::clustering_coefficient_mean_view(view); // f21
    out[7] = algo::clustering::neighbor_degree_mean_view(view); // f22
    out[8] = algo::paths::avg_nodes_within_distance_view_scratch(view, 2, scratch); // f24
    out[9] = algo::pagerank::pagerank_mean_scratch(
        view,
        algo::pagerank::DEFAULT_DAMPING,
        algo::pagerank::DEFAULT_TOL,
        algo::pagerank::DEFAULT_MAX_ITER,
        scratch,
    ); // f25
}

/// Extracts all 37 features from a WCG.
///
/// One-shot convenience over [`FeatureExtractor`]; repeated callers (the
/// live detector, training loops) should hold an extractor to reuse its
/// adjacency buffers.
///
/// # Example
///
/// ```
/// use dynaminer::{features, wcg::Wcg};
///
/// let wcg = Wcg::from_transactions(&[]);
/// let fv = features::extract(&wcg);
/// assert_eq!(fv.values().len(), features::FEATURE_COUNT);
/// assert_eq!(fv.get("order"), 0.0);
/// ```
pub fn extract(wcg: &Wcg) -> FeatureVector {
    FeatureExtractor::new().extract(wcg)
}

/// Number of extension features (f38–f45).
pub const EXTENDED_EXTRA: usize = 8;
/// Total feature count with extensions.
pub const EXTENDED_COUNT: usize = FEATURE_COUNT + EXTENDED_EXTRA;

/// Names of the extension features f38–f45 — graph-level WCG annotations
/// the paper computes (Sec. III-C, graph level) but does not include in
/// its 37-feature classifier. We expose them as an extension and measure
/// their contribution in `bench --bin extension_features`.
pub const EXTENDED_NAMES: [&str; EXTENDED_EXTRA] = [
    "pre-stage-fraction",      // f38: share of transactions in pre-download
    "post-stage-fraction",     // f39: share of transactions in post-download
    "redirect-total",          // f40: total redirect hops
    "max-redirect-chain",      // f41: longest redirect chain
    "cross-domain-redirects",  // f42: redirections crossing registrable domains
    "tld-diversity",           // f43: distinct TLDs among redirect participants
    "avg-redirect-delay",      // f44: mean delay between consecutive redirects
    "dnt-enabled",             // f45: DNT header observed
];

/// All 45 feature names (base 37 + extensions) in column order.
pub fn extended_names() -> Vec<String> {
    NAMES.iter().chain(EXTENDED_NAMES.iter()).map(|s| s.to_string()).collect()
}

/// Extracts the 37 base features plus the 8 extension features.
pub fn extract_extended(wcg: &Wcg) -> Vec<f64> {
    let base = extract(wcg);
    let mut out = base.values().to_vec();
    let txs = wcg.tx_count.max(1) as f64;
    out.push(wcg.stage_counts[0] as f64 / txs);
    out.push(wcg.stage_counts[2] as f64 / txs);
    out.push(wcg.redirects.total as f64);
    out.push(wcg.redirects.max_chain as f64);
    out.push(wcg.redirects.cross_domain as f64);
    out.push(wcg.redirects.tlds.len() as f64);
    out.push(if wcg.redirects.redirect_gaps.is_empty() {
        0.0
    } else {
        wcg.redirects.redirect_gaps.iter().sum::<f64>()
            / wcg.redirects.redirect_gaps.len() as f64
    });
    out.push(f64::from(wcg.dnt));
    debug_assert_eq!(out.len(), EXTENDED_COUNT);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettrace::http::Method;
    use nettrace::payload::PayloadClass;

    use crate::wcg::tests::tx;

    fn infection_wcg() -> Wcg {
        let txs = vec![
            tx(1.0, "a.com", "/r", Method::Get, 302, PayloadClass::Empty, 0,
               Some("http://www.google.com/search?q=z"), Some("http://b.com/l")),
            tx(1.2, "b.com", "/l", Method::Get, 302, PayloadClass::Empty, 0, None,
               Some("http://c.com/gate.php?verylongquerystring=abcdef")),
            tx(1.4, "c.com", "/gate.php?verylongquerystring=abcdef", Method::Get, 200,
               PayloadClass::Html, 40_000, None, None),
            tx(1.8, "c.com", "/p.exe", Method::Get, 200, PayloadClass::Exe, 200_000, None, None),
            tx(9.0, "8.8.4.4", "/g", Method::Post, 200, PayloadClass::Text, 20, None, None),
        ];
        Wcg::from_transactions(&txs)
    }

    #[test]
    fn names_are_unique_and_count_37() {
        let mut names = NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 37);
    }

    #[test]
    fn groups_partition_all_columns() {
        let mut covered = [false; FEATURE_COUNT];
        for group in [
            FeatureGroup::HighLevel,
            FeatureGroup::Graph,
            FeatureGroup::Header,
            FeatureGroup::Temporal,
        ] {
            for c in group.columns() {
                assert!(!covered[c], "column {c} covered twice");
                covered[c] = true;
                assert_eq!(FeatureGroup::of_column(c), group);
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn extraction_produces_finite_values() {
        let fv = extract(&infection_wcg());
        for (i, v) in fv.values().iter().enumerate() {
            assert!(v.is_finite(), "feature {} = {v}", NAMES[i]);
        }
    }

    #[test]
    fn high_level_features() {
        let fv = extract(&infection_wcg());
        assert_eq!(fv.get("origin"), 1.0);
        assert_eq!(fv.get("x-flash-version"), 0.0);
        assert_eq!(fv.get("wcg-size"), 240_020.0);
        assert_eq!(fv.get("conversation-length"), 4.0); // a, b, c, 8.8.4.4
        assert!(fv.get("average-uri-length") > 5.0);
    }

    #[test]
    fn header_features_count_methods_and_statuses() {
        let fv = extract(&infection_wcg());
        assert_eq!(fv.get("gets"), 4.0);
        assert_eq!(fv.get("posts"), 1.0);
        assert_eq!(fv.get("http-20xs"), 3.0);
        assert_eq!(fv.get("http-30xs"), 2.0);
        assert_eq!(fv.get("referrer-ctrs"), 1.0);
        assert_eq!(fv.get("no-referrer-ctrs"), 4.0);
    }

    #[test]
    fn graph_features_consistency() {
        let wcg = infection_wcg();
        let fv = extract(&wcg);
        assert_eq!(fv.get("order"), wcg.graph.node_count() as f64);
        assert_eq!(fv.get("size"), wcg.graph.edge_count() as f64);
        assert_eq!(fv.get("volume"), 2.0 * fv.get("size"));
        assert!(fv.get("degree") >= fv.get("avg-in-degree"));
        assert!(fv.get("avg-pagerank") > 0.0);
        assert!(fv.get("diameter") >= 1.0);
    }

    #[test]
    fn temporal_features() {
        let wcg = infection_wcg();
        let fv = extract(&wcg);
        // f36 is the WCG lifetime itself: last response (9.0 + 0.1) minus
        // first request (1.0). Pinned exactly — the bug this guards
        // against divided it by uri_count.
        assert_eq!(fv.get("duration"), (9.0 + 0.1) - 1.0);
        assert_eq!(fv.get("duration"), wcg.duration());
        // Inter-transaction mean: gaps (0.2, 0.2, 0.4, 7.2)/4 = 2.0.
        assert!((fv.get("avg-inter-transact-time") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn avg_uris_per_host_counts_remote_nodes_only() {
        let wcg = infection_wcg();
        let fv = extract(&wcg);
        // 5 distinct URIs over 4 remote hosts (c.com serves two). The
        // victim node and any origin node carry no URIs, so the remote-only
        // numerator equals the all-nodes sum — asserted here so a future
        // change to node annotations can't silently drift f5.
        assert_eq!(fv.get("avg-uris-per-host"), 5.0 / 4.0);
        let all_nodes: usize =
            wcg.graph.node_ids().map(|v| wcg.graph.node(v).uris.len()).sum();
        let remote_only: usize = wcg
            .graph
            .node_ids()
            .filter(|&v| wcg.graph.node(v).kind == crate::wcg::NodeKind::Remote)
            .map(|v| wcg.graph.node(v).uris.len())
            .sum();
        assert_eq!(all_nodes, remote_only, "victim/origin nodes must not carry URIs");
    }

    /// Golden vector: every one of the 37 features pinned exactly on the
    /// fixture WCG. Any extractor edit that shifts the model input space
    /// now fails loudly instead of silently retraining a different model.
    #[test]
    fn golden_vector_all_37_features_exact() {
        let fv = extract(&infection_wcg());
        let golden = [
            ("origin", 1.0),
            ("x-flash-version", 0.0),
            ("wcg-size", 240_020.0),
            ("conversation-length", 4.0),
            ("avg-uris-per-host", 1.25),
            ("average-uri-length", 9.6),
            ("order", 6.0),
            ("size", 13.0),
            ("degree", 10.0),
            ("density", 13.0 / 30.0),
            ("volume", 26.0),
            ("diameter", 3.0),
            ("avg-in-degree", 13.0 / 6.0),
            ("avg-out-degree", 13.0 / 6.0),
            ("reciprocity", 8.0 / 11.0),
            ("avg-degree-centrality", 0.8666666666666667),
            ("avg-closeness-centrality", 0.6286676286676287),
            ("avg-betweenness-centrality", 1.0 / 6.0),
            ("avg-load-centrality", 1.0 / 6.0),
            ("avg-node-centrality", 1.4666666666666666),
            ("avg-clustering-coefficient", 0.38888888888888884),
            ("avg-neighbor-degree", 3.069444444444444),
            ("avg-degree-connectivity", 13.0 / 3.0),
            ("avg-k-nearest-neighbors", 13.0 / 3.0),
            ("avg-pagerank", 1.0 / 6.0),
            ("gets", 4.0),
            ("posts", 1.0),
            ("other-methods", 0.0),
            ("http-10xs", 0.0),
            ("http-20xs", 3.0),
            ("http-30xs", 2.0),
            ("http-40xs", 0.0),
            ("http-50xs", 0.0),
            ("referrer-ctrs", 1.0),
            ("no-referrer-ctrs", 4.0),
            ("duration", (9.0 + 0.1) - 1.0),
            ("avg-inter-transact-time", (0.2 + 0.2 + 0.4 + 7.2) / 4.0),
        ];
        assert_eq!(golden.len(), FEATURE_COUNT);
        for (i, (name, expected)) in golden.iter().enumerate() {
            assert_eq!(NAMES[i], *name, "golden vector out of order at {i}");
            assert_eq!(fv.get(name), *expected, "f{} {name}", i + 1);
        }
    }

    #[test]
    fn memoized_extraction_is_bit_identical_to_fresh() {
        let wcg = infection_wcg();
        let fresh = extract(&wcg);
        let mut ex = FeatureExtractor::new();
        let mut cache = TopoCache::new();
        assert_eq!(cache.version(), None);
        let first = ex.extract_memoized(&wcg, 7, &mut cache);
        assert_eq!(cache.version(), Some(7));
        // Second call at the same version takes the cached-topology path.
        let second = ex.extract_memoized(&wcg, 7, &mut cache);
        for (i, name) in NAMES.iter().enumerate() {
            assert_eq!(fresh.values()[i].to_bits(), first.values()[i].to_bits(), "{name}");
            assert_eq!(fresh.values()[i].to_bits(), second.values()[i].to_bits(), "{name}");
        }
    }

    #[test]
    fn stale_cache_is_refilled_on_version_change() {
        let mut ex = FeatureExtractor::new();
        let mut cache = TopoCache::new();
        // Seed the cache with an empty graph's (all-zero) topology...
        let empty = Wcg::from_transactions(&[]);
        let _ = ex.extract_memoized(&empty, 0, &mut cache);
        // ...then a different version must recompute, not replay stale values.
        let wcg = infection_wcg();
        let fv = ex.extract_memoized(&wcg, 1, &mut cache);
        assert_eq!(cache.version(), Some(1));
        assert_eq!(fv, extract(&wcg));
        assert!(fv.get("diameter") >= 1.0);
    }

    #[test]
    fn topo_columns_lie_in_the_graph_group() {
        for &c in TOPO_COLUMNS.iter() {
            assert_eq!(FeatureGroup::of_column(c), FeatureGroup::Graph);
        }
        let mut sorted = TOPO_COLUMNS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), TOPO_COLUMNS.len(), "columns must be unique");
    }

    #[test]
    fn empty_wcg_extracts_zeros() {
        let fv = extract(&Wcg::from_transactions(&[]));
        for (i, v) in fv.values().iter().enumerate() {
            assert!(v.is_finite(), "{}", NAMES[i]);
        }
        assert_eq!(fv.get("order"), 0.0);
        assert_eq!(fv.get("origin"), 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown feature")]
    fn unknown_feature_name_panics() {
        extract(&infection_wcg()).get("not-a-feature");
    }

    #[test]
    fn extended_extraction_appends_eight_features() {
        let wcg = infection_wcg();
        let base = extract(&wcg);
        let ext = extract_extended(&wcg);
        assert_eq!(ext.len(), EXTENDED_COUNT);
        assert_eq!(&ext[..FEATURE_COUNT], base.values());
        assert_eq!(extended_names().len(), EXTENDED_COUNT);
        // Stage fractions are fractions and sum with the download share
        // to 1 over the transaction count.
        let pre = ext[FEATURE_COUNT];
        let post = ext[FEATURE_COUNT + 1];
        assert!((0.0..=1.0).contains(&pre));
        assert!((0.0..=1.0).contains(&post));
        assert!(pre + post <= 1.0 + 1e-12);
        // The fixture has a two-hop redirect chain across domains.
        assert_eq!(ext[FEATURE_COUNT + 2], 2.0, "redirect-total");
        assert_eq!(ext[FEATURE_COUNT + 3], 2.0, "max-redirect-chain");
        assert_eq!(ext[FEATURE_COUNT + 4], 2.0, "cross-domain-redirects");
        assert_eq!(ext[FEATURE_COUNT + 5], 1.0, "tld-diversity (all hops are .com)");
        assert_eq!(ext[FEATURE_COUNT + 7], 0.0, "dnt");
    }

    #[test]
    fn extended_names_are_unique() {
        let mut names = extended_names();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), EXTENDED_COUNT);
    }

    #[test]
    fn extended_extraction_finite_on_empty_wcg() {
        let ext = extract_extended(&Wcg::from_transactions(&[]));
        assert!(ext.iter().all(|v| v.is_finite()));
    }
}
