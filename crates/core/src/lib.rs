//! DynaMiner: payload-agnostic web-conversation-graph analytics for
//! on-the-wire malware detection.
//!
//! This crate reproduces the system of *DynaMiner: Leveraging Offline
//! Infection Analytics for On-the-Wire Malware Detection* (Eshete &
//! Venkatakrishnan, DSN 2017). The pipeline:
//!
//! 1. [`wcg`] abstracts a stream of HTTP transactions into a **Web
//!    Conversation Graph**: hosts as nodes; request, response, and
//!    redirect relations as annotated edges; plus an origin node for the
//!    enticement source. Redirect relations are mined from `Location`
//!    headers, meta-refresh tags, and base64-obfuscated JavaScript, and
//!    every edge is assigned a pre-download / download / post-download
//!    **stage** using the paper's Sec. III-C heuristics.
//! 2. [`features`] computes the **37 payload-agnostic features** of
//!    Table II (6 high-level, 19 graph, 10 header, 2 temporal).
//! 3. [`classifier`] trains the ensemble random forest (probability
//!    averaging, `N_t = 20`, `N_f = log2(37)+1`) and supports the paper's
//!    feature-group ablation (Table III).
//! 4. [`detector`] performs on-the-wire detection: session clustering,
//!    infection-clue inference (redirect chain ≥ *l* followed by a risky
//!    download), retrospective WCG construction, trusted-vendor weed-out,
//!    and continuous re-classification as conversations grow.
//! 5. [`forensic`] replays recorded captures through the same machinery.
//!
//! # Quickstart
//!
//! ```
//! use dynaminer::wcg::Wcg;
//! use nettrace::http::Method;
//!
//! // Build a WCG from (already parsed) HTTP transactions.
//! let transactions: Vec<nettrace::HttpTransaction> = vec![];
//! let wcg = Wcg::from_transactions(&transactions);
//! assert_eq!(wcg.graph.node_count(), 0);
//! ```

pub mod classifier;
pub mod detector;
pub mod features;
pub mod forensic;
pub mod metrics;
pub mod trusted;
pub mod wcg;

pub use classifier::{Classifier, FeatureSelection};
pub use detector::{Alert, DetectorConfig, OnTheWireDetector};
pub use features::FeatureVector;
pub use wcg::Wcg;
