//! Forensic (offline) detection on recorded traffic (Sec. VI-C).
//!
//! A recorded capture is replayed through the same machinery the live
//! detector uses: transactions are clustered into conversations, each
//! conversation's WCG is classified, and a report lists per-conversation
//! verdicts plus every payload download (so the downloads can be compared
//! against an external scanner, as the paper does with VirusTotal).

use nettrace::payload::PayloadClass;
use nettrace::{HttpTransaction, TransactionExtractor};
use serde::{Deserialize, Serialize};

use crate::classifier::Classifier;
use crate::detector::{DetectorConfig, OnTheWireDetector};

/// A payload download observed during replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DownloadRecord {
    /// Serving host.
    pub host: String,
    /// Payload type.
    pub class: PayloadClass,
    /// Declared size in bytes.
    pub size: usize,
    /// Content digest (for external scanning).
    pub digest: u64,
    /// Download timestamp.
    pub ts: f64,
}

/// Verdict for one conversation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConversationVerdict {
    /// Conversation id.
    pub id: u64,
    /// Number of transactions.
    pub transactions: usize,
    /// Final classifier score (infection probability).
    pub score: f64,
    /// Whether the detector alerted on this conversation.
    pub alerted: bool,
    /// Unique hosts contacted.
    pub hosts: usize,
}

/// The outcome of a forensic replay.
#[derive(Debug, Clone)]
pub struct ForensicReport {
    /// Total transactions replayed (after trusted-vendor weed-out).
    pub transactions: usize,
    /// Per-conversation verdicts.
    pub conversations: Vec<ConversationVerdict>,
    /// Every payload download observed (exploit-ish types only).
    pub downloads: Vec<DownloadRecord>,
    /// Number of alerts raised.
    pub alerts: usize,
    /// Ingest-health counters from lenient capture decoding; `None` when
    /// the report came from pre-extracted transactions or a strict parse.
    pub ingest: Option<nettrace::IngestReport>,
    /// Pipeline telemetry captured during the replay; `None` unless the
    /// replay ran through a telemetry-enabled entry point
    /// ([`analyze_transactions_telemetry`], [`analyze_pcap_lenient_telemetry`]).
    pub stats: Option<telemetry::Snapshot>,
}

impl ForensicReport {
    /// Conversations the detector alerted on.
    pub fn infected_conversations(&self) -> impl Iterator<Item = &ConversationVerdict> {
        self.conversations.iter().filter(|c| c.alerted)
    }
}

// Serialization is hand-written (not derived) so a strict-mode report —
// `ingest: None` — serializes without the field and stays byte-identical
// to reports from before lenient ingestion existed.
impl Serialize for ForensicReport {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::Error as _;
        let field = |v: Result<serde::Value, serde::ValueError>| v.map_err(S::Error::custom);
        let mut fields = vec![
            ("transactions".to_string(), field(serde::to_value(&self.transactions))?),
            ("conversations".to_string(), field(serde::to_value(&self.conversations))?),
            ("downloads".to_string(), field(serde::to_value(&self.downloads))?),
            ("alerts".to_string(), field(serde::to_value(&self.alerts))?),
        ];
        if let Some(ingest) = &self.ingest {
            fields.push(("ingest".to_string(), field(serde::to_value(ingest))?));
        }
        if let Some(stats) = &self.stats {
            fields.push(("stats".to_string(), field(serde::to_value(stats))?));
        }
        serializer.serialize_value(serde::Value::Object(fields))
    }
}

impl<'de> Deserialize<'de> for ForensicReport {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let serde::Value::Object(mut fields) = deserializer.deserialize_value()? else {
            return Err(D::Error::custom("ForensicReport: expected object"));
        };
        fn req<T: serde::de::DeserializeOwned, E: serde::de::Error>(
            fields: &mut Vec<(String, serde::Value)>,
            name: &'static str,
        ) -> Result<T, E> {
            let v = serde::__private::take_field(fields, name)
                .ok_or_else(|| E::missing_field(name))?;
            serde::from_value(v).map_err(E::custom)
        }
        let transactions = req(&mut fields, "transactions")?;
        let conversations = req(&mut fields, "conversations")?;
        let downloads = req(&mut fields, "downloads")?;
        let alerts = req(&mut fields, "alerts")?;
        let ingest = match serde::__private::take_field(&mut fields, "ingest") {
            None | Some(serde::Value::Null) => None,
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
        };
        let stats = match serde::__private::take_field(&mut fields, "stats") {
            None | Some(serde::Value::Null) => None,
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
        };
        Ok(ForensicReport { transactions, conversations, downloads, alerts, ingest, stats })
    }
}

/// Replays a transaction stream through the detector and summarizes it.
pub fn analyze_transactions(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    config: DetectorConfig,
) -> ForensicReport {
    analyze_with(transactions, classifier, config, None)
}

/// Like [`analyze_transactions`], but with detector metrics registered
/// in `registry` and the resulting snapshot attached as
/// [`ForensicReport::stats`].
pub fn analyze_transactions_telemetry(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    config: DetectorConfig,
    registry: &telemetry::Registry,
) -> ForensicReport {
    analyze_with(transactions, classifier, config, Some(registry))
}

fn analyze_with(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    config: DetectorConfig,
    registry: Option<&telemetry::Registry>,
) -> ForensicReport {
    let mut detector = match registry {
        Some(registry) => OnTheWireDetector::with_telemetry(classifier, config, registry),
        None => OnTheWireDetector::new(classifier, config),
    };
    let mut downloads = Vec::new();
    let mut order: Vec<&HttpTransaction> = transactions.iter().collect();
    // (ts, seq) is a total order over a numbered stream; ts alone leaves
    // tied-timestamp order incidental.
    order.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.seq.cmp(&b.seq)));
    for tx in order {
        if tx.status / 100 == 2 && tx.payload_size > 0 && tx.payload_class.is_exploit_type() {
            downloads.push(DownloadRecord {
                host: tx.host.clone(),
                class: tx.payload_class,
                size: tx.payload_size,
                digest: tx.payload_digest,
                ts: tx.ts,
            });
        }
        detector.observe(tx);
    }
    // Final verdict pass: conversations are independent, so WCG
    // featurization and forest traversal run batched across the scoring
    // thread pool instead of one full pipeline per conversation. Spilled
    // conversations are thawed first so the sweep sees every one.
    detector.rehydrate_all();
    let threads = mlearn::parallel::resolve_threads(detector.config().scoring_threads);
    let classifier = detector.classifier();
    let convs: Vec<&crate::detector::Conversation> =
        detector.tracker().conversations().collect();
    let tx_slices: Vec<&[HttpTransaction]> =
        convs.iter().map(|c| c.transactions.as_slice()).collect();
    let batch_started = std::time::Instant::now();
    let scores = classifier.score_conversations_batch(&tx_slices, threads);
    detector.metrics().scoring_ns.observe_since(batch_started);
    let conversations = convs
        .iter()
        .zip(scores)
        .map(|(c, score)| ConversationVerdict {
            id: c.id,
            transactions: c.transactions.len(),
            score,
            alerted: c.alerted,
            hosts: c.hosts().count(),
        })
        .collect();
    ForensicReport {
        transactions: detector.transactions_seen(),
        conversations,
        downloads,
        alerts: detector.alerts().len(),
        ingest: None,
        stats: registry.map(telemetry::Registry::snapshot),
    }
}

/// Replays a capture byte stream (classic pcap or pcapng, detected by
/// magic).
///
/// # Errors
///
/// Returns a [`nettrace::Error`] when the capture cannot be parsed.
pub fn analyze_pcap(
    pcap_bytes: &[u8],
    classifier: Classifier,
    config: DetectorConfig,
) -> nettrace::Result<ForensicReport> {
    let packets = nettrace::capture::read_packets(pcap_bytes)?;
    let transactions = TransactionExtractor::extract(&packets)?;
    Ok(analyze_transactions(&transactions, classifier, config))
}

/// Replays a capture byte stream in graceful-degradation mode: damaged
/// records, malformed streams, and broken encodings are skipped (and
/// accounted in the report's [`ingest`](ForensicReport::ingest) counters)
/// instead of failing the replay. Never errors, whatever the input.
pub fn analyze_pcap_lenient(
    pcap_bytes: &[u8],
    classifier: Classifier,
    config: DetectorConfig,
) -> ForensicReport {
    let mut ingest = nettrace::IngestReport::new();
    let transactions = nettrace::SpanPipeline::extract_capture_lenient(pcap_bytes, &mut ingest);
    let mut report = analyze_transactions(&transactions, classifier, config);
    report.ingest = Some(ingest);
    report
}

/// Lenient replay with full pipeline telemetry: ingest counters are
/// folded into `registry` alongside the detector metrics, and the final
/// snapshot rides on [`ForensicReport::stats`] next to the per-capture
/// [`ForensicReport::ingest`] report.
pub fn analyze_pcap_lenient_telemetry(
    pcap_bytes: &[u8],
    classifier: Classifier,
    config: DetectorConfig,
    registry: &telemetry::Registry,
) -> ForensicReport {
    let mut ingest = nettrace::IngestReport::new();
    let transactions = nettrace::SpanPipeline::extract_capture_lenient(pcap_bytes, &mut ingest);
    nettrace::metrics::IngestMetrics::new(registry).record(&ingest);
    let mut report = analyze_transactions_telemetry(&transactions, classifier, config, registry);
    report.ingest = Some(ingest);
    // Re-snapshot so the ingest counters recorded above are included.
    report.stats = Some(registry.snapshot());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::build_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synthtraffic::benign::generate_benign;
    use synthtraffic::episode::generate_infection;
    use synthtraffic::pcapgen::episode_pcap;
    use synthtraffic::{BenignScenario, EkFamily};

    fn classifier(seed: u64) -> Classifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..30 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 5)
    }

    #[test]
    fn forensic_replay_flags_infection_pcap() {
        let clf = classifier(1);
        let mut rng = StdRng::seed_from_u64(31);
        let mut alerted = 0usize;
        let n = 6;
        for i in 0..n {
            let ep = generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9);
            let pcap = episode_pcap(&ep).unwrap();
            let report =
                analyze_pcap(&pcap, clf.clone(), DetectorConfig::default()).unwrap();
            assert!(report.transactions > 0);
            alerted += usize::from(report.alerts > 0);
        }
        assert!(alerted >= n / 2, "alerted on {alerted}/{n} infection pcaps");
    }

    #[test]
    fn downloads_are_recorded_with_digests() {
        let clf = classifier(2);
        let mut rng = StdRng::seed_from_u64(32);
        let ep = generate_infection(&mut rng, EkFamily::Nuclear, 1.4e9);
        let report = analyze_transactions(&ep.transactions, clf, DetectorConfig::default());
        assert!(!report.downloads.is_empty());
        for d in &report.downloads {
            assert!(d.class.is_exploit_type());
            assert!(d.size > 0);
        }
    }

    #[test]
    fn benign_replay_produces_low_scores() {
        let clf = classifier(3);
        let mut rng = StdRng::seed_from_u64(33);
        let mut alerts = 0;
        for i in 0..8 {
            let ep = generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9);
            let report =
                analyze_transactions(&ep.transactions, clf.clone(), DetectorConfig::default());
            alerts += report.alerts;
        }
        assert!(alerts <= 2, "{alerts} alerts over benign replays");
    }

    #[test]
    fn lenient_replay_matches_strict_on_clean_capture() {
        let clf = classifier(5);
        let mut rng = StdRng::seed_from_u64(35);
        let ep = generate_infection(&mut rng, EkFamily::Rig, 1.4e9);
        let pcap = episode_pcap(&ep).unwrap();
        let strict = analyze_pcap(&pcap, clf.clone(), DetectorConfig::default()).unwrap();
        let lenient = analyze_pcap_lenient(&pcap, clf, DetectorConfig::default());
        assert_eq!(lenient.transactions, strict.transactions);
        assert_eq!(lenient.alerts, strict.alerts);
        assert_eq!(lenient.conversations.len(), strict.conversations.len());
        let ingest = lenient.ingest.expect("lenient replay records ingest health");
        assert!(!ingest.has_loss(), "{ingest}");
        assert_eq!(ingest.transactions_recovered as usize, strict.transactions);
    }

    #[test]
    fn lenient_replay_survives_truncated_capture() {
        let clf = classifier(6);
        let mut rng = StdRng::seed_from_u64(36);
        let ep = generate_infection(&mut rng, EkFamily::Angler, 1.4e9);
        let pcap = episode_pcap(&ep).unwrap();
        // Chop into the final record's body: a mid-record capture cut.
        let cut = &pcap[..pcap.len() - 3];
        let report = analyze_pcap_lenient(cut, clf, DetectorConfig::default());
        let ingest = report.ingest.unwrap();
        assert!(ingest.capture_truncated);
        assert_eq!(ingest.records_dropped, 1);
        assert!(ingest.packets_read > 0, "prefix packets salvaged");
        assert!(report.transactions > 0, "surviving conversations still analyzed");
    }

    #[test]
    fn strict_report_serializes_without_ingest_field() {
        let clf = classifier(7);
        let mut rng = StdRng::seed_from_u64(37);
        let ep = generate_benign(&mut rng, BenignScenario::Search, 1.43e9);
        let report = analyze_transactions(&ep.transactions, clf, DetectorConfig::default());
        let serde::Value::Object(fields) = serde::to_value(&report).unwrap() else {
            panic!("report must serialize to an object");
        };
        assert!(fields.iter().all(|(n, _)| n != "ingest"));
        // And round-trips, with or without the field.
        let back: ForensicReport = serde::from_value(serde::Value::Object(fields)).unwrap();
        assert!(back.ingest.is_none());
        assert_eq!(back.transactions, report.transactions);

        let mut lenient = report.clone();
        lenient.ingest = Some(nettrace::IngestReport::new());
        let v = serde::to_value(&lenient).unwrap();
        let back: ForensicReport = serde::from_value(v).unwrap();
        assert!(back.ingest.is_some());
    }

    #[test]
    fn telemetry_replay_attaches_consistent_stats() {
        let clf = classifier(8);
        let mut rng = StdRng::seed_from_u64(38);
        let ep = generate_infection(&mut rng, EkFamily::Neutrino, 1.4e9);
        let pcap = episode_pcap(&ep).unwrap();
        let registry = telemetry::Registry::new();
        let report =
            analyze_pcap_lenient_telemetry(&pcap, clf, DetectorConfig::default(), &registry);
        let stats = report.stats.as_ref().expect("telemetry replay attaches stats");
        let ingest = report.ingest.as_ref().unwrap();
        // The snapshot mirrors both the ingest report and the detector.
        assert_eq!(stats.counter("ingest_captures_total"), 1);
        assert_eq!(
            stats.counter("ingest_transactions_recovered_total"),
            ingest.transactions_recovered
        );
        assert_eq!(
            stats.counter("detector_transactions_total") as usize,
            report.transactions
        );
        assert_eq!(stats.counter("detector_alerts_total") as usize, report.alerts);
        // Each WCG rebuild produced one timed feature extraction + scoring.
        let rebuilds = stats.counter("detector_wcg_rebuilds_total");
        assert!(rebuilds > 0, "an infection episode must classify at least once");
        assert_eq!(stats.histogram_count("classifier_feature_extraction_ns"), rebuilds);
        // +1: the final batched verdict pass is one scoring observation.
        assert_eq!(stats.histogram_count("classifier_scoring_ns"), rebuilds + 1);
        // And the stats field serializes with the report.
        let v = serde::to_value(&report).unwrap();
        let back: ForensicReport = serde::from_value(v).unwrap();
        assert_eq!(back.stats.as_ref(), Some(stats));
    }

    #[test]
    fn report_conversation_accounting_is_consistent() {
        let clf = classifier(4);
        let mut rng = StdRng::seed_from_u64(34);
        let ep = generate_infection(&mut rng, EkFamily::Fiesta, 1.4e9);
        let report = analyze_transactions(&ep.transactions, clf, DetectorConfig::default());
        let total: usize = report.conversations.iter().map(|c| c.transactions).sum();
        assert_eq!(total, report.transactions);
        assert_eq!(report.alerts, report.infected_conversations().count());
    }
}
