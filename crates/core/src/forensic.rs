//! Forensic (offline) detection on recorded traffic (Sec. VI-C).
//!
//! A recorded capture is replayed through the same machinery the live
//! detector uses: transactions are clustered into conversations, each
//! conversation's WCG is classified, and a report lists per-conversation
//! verdicts plus every payload download (so the downloads can be compared
//! against an external scanner, as the paper does with VirusTotal).

use nettrace::payload::PayloadClass;
use nettrace::{HttpTransaction, TransactionExtractor};
use serde::{Deserialize, Serialize};

use crate::classifier::Classifier;
use crate::detector::{DetectorConfig, OnTheWireDetector};

/// A payload download observed during replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DownloadRecord {
    /// Serving host.
    pub host: String,
    /// Payload type.
    pub class: PayloadClass,
    /// Declared size in bytes.
    pub size: usize,
    /// Content digest (for external scanning).
    pub digest: u64,
    /// Download timestamp.
    pub ts: f64,
}

/// Verdict for one conversation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConversationVerdict {
    /// Conversation id.
    pub id: u64,
    /// Number of transactions.
    pub transactions: usize,
    /// Final classifier score (infection probability).
    pub score: f64,
    /// Whether the detector alerted on this conversation.
    pub alerted: bool,
    /// Unique hosts contacted.
    pub hosts: usize,
}

/// The outcome of a forensic replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForensicReport {
    /// Total transactions replayed (after trusted-vendor weed-out).
    pub transactions: usize,
    /// Per-conversation verdicts.
    pub conversations: Vec<ConversationVerdict>,
    /// Every payload download observed (exploit-ish types only).
    pub downloads: Vec<DownloadRecord>,
    /// Number of alerts raised.
    pub alerts: usize,
}

impl ForensicReport {
    /// Conversations the detector alerted on.
    pub fn infected_conversations(&self) -> impl Iterator<Item = &ConversationVerdict> {
        self.conversations.iter().filter(|c| c.alerted)
    }
}

/// Replays a transaction stream through the detector and summarizes it.
pub fn analyze_transactions(
    transactions: &[HttpTransaction],
    classifier: Classifier,
    config: DetectorConfig,
) -> ForensicReport {
    let mut detector = OnTheWireDetector::new(classifier, config);
    let mut downloads = Vec::new();
    let mut order: Vec<&HttpTransaction> = transactions.iter().collect();
    order.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    for tx in order {
        if tx.status / 100 == 2 && tx.payload_size > 0 && tx.payload_class.is_exploit_type() {
            downloads.push(DownloadRecord {
                host: tx.host.clone(),
                class: tx.payload_class,
                size: tx.payload_size,
                digest: tx.payload_digest,
                ts: tx.ts,
            });
        }
        detector.observe(tx);
    }
    let classifier = detector.classifier().clone();
    let conversations = detector
        .tracker()
        .conversations()
        .map(|c| ConversationVerdict {
            id: c.id,
            transactions: c.transactions.len(),
            score: classifier.score_transactions(&c.transactions),
            alerted: c.alerted,
            hosts: c.hosts().count(),
        })
        .collect();
    ForensicReport {
        transactions: detector.transactions_seen(),
        conversations,
        downloads,
        alerts: detector.alerts().len(),
    }
}

/// Replays a capture byte stream (classic pcap or pcapng, detected by
/// magic).
///
/// # Errors
///
/// Returns a [`nettrace::Error`] when the capture cannot be parsed.
pub fn analyze_pcap(
    pcap_bytes: &[u8],
    classifier: Classifier,
    config: DetectorConfig,
) -> nettrace::Result<ForensicReport> {
    let packets = nettrace::capture::read_packets(pcap_bytes)?;
    let transactions = TransactionExtractor::extract(&packets)?;
    Ok(analyze_transactions(&transactions, classifier, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::build_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use synthtraffic::benign::generate_benign;
    use synthtraffic::episode::generate_infection;
    use synthtraffic::pcapgen::episode_pcap;
    use synthtraffic::{BenignScenario, EkFamily};

    fn classifier(seed: u64) -> Classifier {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut items: Vec<(Vec<HttpTransaction>, bool)> = Vec::new();
        for i in 0..30 {
            items.push((
                generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9).transactions,
                true,
            ));
            items.push((
                generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9).transactions,
                false,
            ));
        }
        let data = build_dataset(items.iter().map(|(t, l)| (t.as_slice(), *l)));
        Classifier::fit_default(&data, 5)
    }

    #[test]
    fn forensic_replay_flags_infection_pcap() {
        let clf = classifier(1);
        let mut rng = StdRng::seed_from_u64(31);
        let mut alerted = 0usize;
        let n = 6;
        for i in 0..n {
            let ep = generate_infection(&mut rng, EkFamily::ALL[i % 10], 1.4e9);
            let pcap = episode_pcap(&ep).unwrap();
            let report =
                analyze_pcap(&pcap, clf.clone(), DetectorConfig::default()).unwrap();
            assert!(report.transactions > 0);
            alerted += usize::from(report.alerts > 0);
        }
        assert!(alerted >= n / 2, "alerted on {alerted}/{n} infection pcaps");
    }

    #[test]
    fn downloads_are_recorded_with_digests() {
        let clf = classifier(2);
        let mut rng = StdRng::seed_from_u64(32);
        let ep = generate_infection(&mut rng, EkFamily::Nuclear, 1.4e9);
        let report = analyze_transactions(&ep.transactions, clf, DetectorConfig::default());
        assert!(!report.downloads.is_empty());
        for d in &report.downloads {
            assert!(d.class.is_exploit_type());
            assert!(d.size > 0);
        }
    }

    #[test]
    fn benign_replay_produces_low_scores() {
        let clf = classifier(3);
        let mut rng = StdRng::seed_from_u64(33);
        let mut alerts = 0;
        for i in 0..8 {
            let ep = generate_benign(&mut rng, BenignScenario::WEIGHTED[i % 8].0, 1.43e9);
            let report =
                analyze_transactions(&ep.transactions, clf.clone(), DetectorConfig::default());
            alerts += report.alerts;
        }
        assert!(alerts <= 2, "{alerts} alerts over benign replays");
    }

    #[test]
    fn report_conversation_accounting_is_consistent() {
        let clf = classifier(4);
        let mut rng = StdRng::seed_from_u64(34);
        let ep = generate_infection(&mut rng, EkFamily::Fiesta, 1.4e9);
        let report = analyze_transactions(&ep.transactions, clf, DetectorConfig::default());
        let total: usize = report.conversations.iter().map(|c| c.transactions).sum();
        assert_eq!(total, report.transactions);
        assert_eq!(report.alerts, report.infected_conversations().count());
    }
}
