//! Detector and classifier telemetry.
//!
//! [`DetectorMetrics`] mirrors the paper's on-the-wire stage sequence
//! (weed-out → clue → retrospective WCG rebuild → classify → alert) as
//! counters, plus the two hot-path latency histograms. Every
//! [`crate::detector::OnTheWireDetector`] owns a bundle; pass a shared
//! [`Registry`] via `with_telemetry` to aggregate several detectors
//! (or the detector plus ingest) into one exposition.

use telemetry::{Counter, Gauge, Histogram, Registry};

/// Counter/gauge/histogram handles for the live-detection path.
#[derive(Clone, Debug)]
pub struct DetectorMetrics {
    /// Transactions observed after trusted-vendor weed-out.
    pub transactions: Counter,
    /// Transactions weeded out by the trusted-vendor allowlist.
    pub trusted_weeded: Counter,
    /// Conversations that tipped into the watched state (clue fired).
    pub clues: Counter,
    /// Retrospective WCG rebuilds (== classifier invocations).
    pub wcg_rebuilds: Counter,
    /// Re-classification rounds on already-watched conversations.
    pub reclassifications: Counter,
    /// Watched-conversation updates skipped by
    /// [`crate::detector::ReclassifyPolicy::OnSignificantUpdate`].
    pub reclassify_skipped: Counter,
    /// Alerts raised.
    pub alerts: Counter,
    /// Conversations evicted by the retention window.
    pub retention_evictions: Counter,
    /// Conversations evicted by the per-client conversation cap.
    pub cap_evictions: Counter,
    /// Transactions dropped by the per-conversation transaction cap.
    pub dropped_transactions: Counter,
    /// Conversations demoted to the frozen spill tier.
    pub spilled_conversations: Counter,
    /// Frozen conversations rehydrated back to the live tier.
    pub rehydrations: Counter,
    /// Frozen conversations hard-evicted by the spill budget.
    pub spill_evictions: Counter,
    /// Model hot-reloads observed on the classification path.
    pub model_reloads: Counter,
    /// Live conversations across all clients.
    pub conversations_live: Gauge,
    /// Frozen conversations across all clients.
    pub conversations_frozen: Gauge,
    /// Estimated bytes held by the frozen spill tier.
    pub spill_bytes: Gauge,
    /// WCG rebuild + 37-feature extraction latency, nanoseconds.
    pub feature_extraction_ns: Histogram,
    /// Forest scoring latency per classification, nanoseconds.
    pub scoring_ns: Histogram,
}

impl DetectorMetrics {
    /// Registers (or re-attaches to) the detector metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        DetectorMetrics {
            transactions: registry.counter(
                "detector_transactions_total",
                "Transactions observed after trusted-vendor weed-out",
            ),
            trusted_weeded: registry.counter(
                "detector_trusted_weeded_total",
                "Transactions weeded out as trusted-vendor traffic",
            ),
            clues: registry
                .counter("detector_clues_total", "Conversations tipped into the watched state"),
            wcg_rebuilds: registry.counter(
                "detector_wcg_rebuilds_total",
                "Retrospective WCG rebuilds (classifier invocations)",
            ),
            reclassifications: registry.counter(
                "detector_reclassifications_total",
                "Re-classification rounds on already-watched conversations",
            ),
            reclassify_skipped: registry.counter(
                "detector_reclassify_skipped_total",
                "Watched-conversation updates skipped as insignificant",
            ),
            alerts: registry.counter("detector_alerts_total", "Infection alerts raised"),
            retention_evictions: registry.counter(
                "session_retention_evictions_total",
                "Conversations evicted by the retention window",
            ),
            cap_evictions: registry.counter(
                "session_cap_evictions_total",
                "Conversations evicted by the per-client cap",
            ),
            dropped_transactions: registry.counter(
                "session_transactions_dropped_total",
                "Transactions dropped by the per-conversation cap",
            ),
            spilled_conversations: registry.counter(
                "session_spilled_conversations_total",
                "Conversations demoted to the frozen spill tier",
            ),
            rehydrations: registry.counter(
                "session_rehydrations_total",
                "Frozen conversations rehydrated back to the live tier",
            ),
            spill_evictions: registry.counter(
                "session_spill_evictions_total",
                "Frozen conversations hard-evicted by the spill budget",
            ),
            model_reloads: registry.counter(
                "detector_model_reloads_total",
                "Model hot-reloads observed on the classification path",
            ),
            conversations_live: registry
                .gauge("session_conversations_live", "Live conversations across all clients"),
            conversations_frozen: registry
                .gauge("session_conversations_frozen", "Frozen conversations across all clients"),
            spill_bytes: registry
                .gauge("session_spill_bytes", "Estimated bytes held by the frozen spill tier"),
            feature_extraction_ns: registry.latency_histogram(
                "classifier_feature_extraction_ns",
                "WCG rebuild + 37-feature extraction latency per classification",
            ),
            scoring_ns: registry.latency_histogram(
                "classifier_scoring_ns",
                "Random-forest scoring latency per classification or batch",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_idempotently_in_a_shared_registry() {
        let registry = Registry::new();
        let a = DetectorMetrics::new(&registry);
        let b = DetectorMetrics::new(&registry);
        a.clues.inc();
        b.clues.inc();
        assert_eq!(registry.snapshot().counter("detector_clues_total"), 2);
    }
}
