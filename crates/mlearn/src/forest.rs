//! Ensemble random forest combining CART trees by probability averaging.
//!
//! Training parallelizes across trees with deterministic results: every
//! tree derives its own RNG from `(seed, tree_index)` via
//! [`parallel::derive_seed`], so bootstrap resamples and split choices
//! are a pure function of the seed — bit-identical at any worker-thread
//! count. Scoring offers a batched mode that walks each tree once for a
//! whole block of rows, accumulating into one preallocated buffer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::parallel::{self, derive_seed};
use crate::tree::{argmax, DecisionTree, TreeConfig};

/// How many candidate features each split examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// `log2(n_features) + 1` — the paper's best setting (`N_f`).
    Log2PlusOne,
    /// `sqrt(n_features)` rounded down (at least 1).
    Sqrt,
    /// All features at every split.
    All,
    /// A fixed count (clamped to the feature count).
    Fixed(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `n_features` columns.
    pub fn resolve(self, n_features: usize) -> usize {
        let k = match self {
            MaxFeatures::Log2PlusOne => (n_features as f64).log2().floor() as usize + 1,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().floor() as usize,
            MaxFeatures::All => n_features,
            MaxFeatures::Fixed(k) => k,
        };
        k.clamp(1, n_features)
    }
}

/// How the ensemble combines its trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Combination {
    /// Average per-tree class probabilities (the paper's choice: reduces
    /// variance relative to voting).
    ProbabilityAveraging,
    /// Classic majority vote over per-tree argmax predictions.
    MajorityVote,
}

/// Forest hyper-parameters. The defaults are the paper's best setting:
/// 20 trees, `log2(F)+1` features per split, probability averaging.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (`N_t` in the paper; best value 20).
    pub n_trees: usize,
    /// Per-split feature-subset size (`N_f`).
    pub max_features: MaxFeatures,
    /// Whether each tree trains on a bootstrap resample.
    pub bootstrap: bool,
    /// Tree-growing limits.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Combination rule.
    pub combination: Combination,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 20,
            max_features: MaxFeatures::Log2PlusOne,
            bootstrap: true,
            max_depth: 32,
            min_samples_split: 2,
            combination: Combination::ProbabilityAveraging,
        }
    }
}

/// A trained ensemble random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    combination: Combination,
}

impl RandomForest {
    /// Trains a forest on `data` with deterministic randomness from
    /// `seed`, parallelizing across trees on all available cores. The
    /// result depends only on `(data, config, seed)` — see
    /// [`RandomForest::fit_threaded`].
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `config.n_trees` is zero.
    pub fn fit(data: &Dataset, config: &ForestConfig, seed: u64) -> Self {
        Self::fit_threaded(data, config, seed, parallel::default_threads())
    }

    /// Trains like [`RandomForest::fit`] on up to `threads` worker
    /// threads. Each tree seeds its own RNG from `(seed, tree_index)`, so
    /// the trained model is **bit-identical for any `threads` value** —
    /// parallelism is a pure throughput knob, never a reproducibility
    /// hazard.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `config.n_trees` is zero.
    pub fn fit_threaded(
        data: &Dataset,
        config: &ForestConfig,
        seed: u64,
        threads: usize,
    ) -> Self {
        Self::fit_threaded_timed(data, config, seed, threads, None)
    }

    /// Trains like [`RandomForest::fit_threaded`], recording each
    /// tree's wall-clock fit time into `tree_fit_ns` when given. The
    /// per-tree durations are folded in *index order* after the pool
    /// joins (via a [`telemetry::LocalHistogram`] shard), so the
    /// histogram's bucket counts are as deterministic as the timings
    /// themselves and the model stays bit-identical for any `threads`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `config.n_trees` is zero.
    pub fn fit_threaded_timed(
        data: &Dataset,
        config: &ForestConfig,
        seed: u64,
        threads: usize,
        tree_fit_ns: Option<&telemetry::Histogram>,
    ) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            max_features: Some(config.max_features.resolve(data.n_features())),
        };
        // Below this tree count, thread spawn/join overhead eats the win;
        // run inline. The model is bit-identical either way (per-tree
        // seeds depend only on the index).
        const PARALLEL_MIN_TREES: usize = 8;
        let threads = if config.n_trees < PARALLEL_MIN_TREES { 1 } else { threads };
        let timed = parallel::run_indexed(config.n_trees, threads, |t| {
            let started = std::time::Instant::now();
            let tree = grow_tree(data, config, &tree_config, seed, t).0;
            let elapsed = started.elapsed().as_nanos();
            (tree, u64::try_from(elapsed).unwrap_or(u64::MAX))
        });
        let mut trees = Vec::with_capacity(timed.len());
        if let Some(hist) = tree_fit_ns {
            let mut shard = telemetry::LocalHistogram::shard_of(hist);
            for (tree, ns) in timed {
                shard.observe(ns);
                trees.push(tree);
            }
            hist.record_local(&shard);
        } else {
            trees.extend(timed.into_iter().map(|(tree, _)| tree));
        }
        RandomForest { trees, n_classes: data.n_classes(), combination: config.combination }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Ensemble class-probability estimate: the mean of per-tree
    /// probabilities (averaging mode) or the vote distribution (voting
    /// mode).
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        self.accumulate_row(row, &mut acc);
        let total = self.trees.len() as f64;
        for a in &mut acc {
            *a /= total;
        }
        acc
    }

    /// Adds each tree's (unnormalized) contribution for `row` into `acc`.
    fn accumulate_row(&self, row: &[f64], acc: &mut [f64]) {
        match self.combination {
            Combination::ProbabilityAveraging => {
                for tree in &self.trees {
                    for (a, p) in acc.iter_mut().zip(tree.leaf_probs(row)) {
                        *a += p;
                    }
                }
            }
            Combination::MajorityVote => {
                for tree in &self.trees {
                    acc[argmax(tree.leaf_probs(row))] += 1.0;
                }
            }
        }
    }

    /// Scores a whole block of rows in one pass, accumulating into a
    /// single preallocated `rows × classes` buffer so the hot loop does
    /// **zero per-row allocations** — unlike
    /// [`RandomForest::predict_proba`], which must allocate its result
    /// `Vec` on every call. That allocation churn is what makes
    /// on-the-wire re-classification of many conversations cheaper
    /// through this path than row-by-row calls.
    ///
    /// Returns one probability vector per row, in row order.
    pub fn predict_proba_batch<R: AsRef<[f64]>>(&self, rows: &[R]) -> Vec<Vec<f64>> {
        let k = self.n_classes;
        let mut acc = vec![0.0f64; rows.len() * k];
        self.accumulate_batch(rows, &mut acc);
        let total = self.trees.len() as f64;
        acc.chunks(k).map(|slot| slot.iter().map(|v| v / total).collect()).collect()
    }

    /// Row-major accumulation into a flat `rows.len() × n_classes`
    /// buffer (unnormalized): each row's class slot is filled by one
    /// allocation-free [`RandomForest::accumulate_row`] pass.
    ///
    /// Row-major order is deliberate. Tree-major traversal (outer loop
    /// over trees, inner over rows, with and without cache tiling) was
    /// benchmarked and *lost* to row-major here: with unbounded-depth
    /// trees the forest's pointer-chased working set is as large as the
    /// row block itself, so every tile pass re-streams the forest and
    /// there is no node reuse to win back. All of the batched speedup
    /// comes from eliminating the per-row result allocation instead.
    fn accumulate_batch<R: AsRef<[f64]>>(&self, rows: &[R], acc: &mut [f64]) {
        // 256 rows × 37 features × 8 bytes ≈ 74 KiB — comfortably L2-resident
        // alongside the forest itself.
        let k = self.n_classes;
        debug_assert_eq!(acc.len(), rows.len() * k);
        for (slot, row) in acc.chunks_mut(k).zip(rows) {
            self.accumulate_row(row.as_ref(), slot);
        }
    }

    /// Batched scoring fanned out over up to `threads` worker threads:
    /// rows are split into contiguous chunks, each chunk scored with
    /// [`RandomForest::predict_proba_batch`]. Row results are independent,
    /// so the output is identical at any thread count.
    pub fn predict_proba_batch_threaded<R: AsRef<[f64]> + Sync>(
        &self,
        rows: &[R],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let threads = threads.max(1).min(rows.len().max(1));
        if threads <= 1 {
            return self.predict_proba_batch(rows);
        }
        let chunk = rows.len().div_ceil(threads);
        let chunks: Vec<&[R]> = rows.chunks(chunk).collect();
        parallel::run_indexed(chunks.len(), threads, |c| self.predict_proba_batch(chunks[c]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// `class` scores for a block of rows (the batched analogue of
    /// [`RandomForest::score`]) across up to `threads` workers.
    ///
    /// This is the leanest scoring path: one flat accumulator per chunk
    /// and one output `Vec` — zero per-row allocations — so it beats
    /// calling [`RandomForest::score`] row by row even single-threaded.
    pub fn score_batch<R: AsRef<[f64]> + Sync>(
        &self,
        rows: &[R],
        class: usize,
        threads: usize,
    ) -> Vec<f64> {
        assert!(class < self.n_classes, "class out of range");
        let k = self.n_classes;
        let total = self.trees.len() as f64;
        let score_chunk = |chunk: &[R]| -> Vec<f64> {
            let mut acc = vec![0.0f64; chunk.len() * k];
            self.accumulate_batch(chunk, &mut acc);
            acc.chunks(k).map(|slot| slot[class] / total).collect()
        };
        let threads = threads.max(1).min(rows.len().max(1));
        if threads <= 1 {
            return score_chunk(rows);
        }
        let chunk = rows.len().div_ceil(threads);
        let chunks: Vec<&[R]> = rows.chunks(chunk).collect();
        parallel::run_indexed(chunks.len(), threads, |c| score_chunk(chunks[c]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Predicted class: argmax of [`RandomForest::predict_proba`].
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba(row))
    }

    /// Probability assigned to `class` — the score used for ROC curves.
    pub fn score(&self, row: &[f64], class: usize) -> f64 {
        self.predict_proba(row)[class]
    }

    /// Mean-decrease-in-impurity feature importances, averaged over trees
    /// and normalized to sum to 1 (all zeros when no split ever occurred).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc: Vec<f64> = Vec::new();
        for tree in &self.trees {
            let imp = tree.feature_importances();
            if acc.is_empty() {
                acc = imp;
            } else {
                for (a, v) in acc.iter_mut().zip(imp) {
                    *a += v;
                }
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }
}

/// A forest plus its out-of-bag (OOB) error estimate.
#[derive(Debug, Clone)]
pub struct OobFit {
    /// The trained forest.
    pub forest: RandomForest,
    /// Out-of-bag misclassification rate: each training sample is scored
    /// only by trees whose bootstrap did not contain it. `None` when no
    /// sample was out of bag (tiny data or bootstrap disabled).
    pub oob_error: Option<f64>,
}

impl RandomForest {
    /// Trains like [`RandomForest::fit`] but also computes the
    /// out-of-bag error — a free validation estimate that needs no
    /// held-out split (Breiman's OOB methodology). Uses all available
    /// cores; see [`RandomForest::fit_with_oob_threaded`].
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `config.n_trees` is zero.
    pub fn fit_with_oob(data: &Dataset, config: &ForestConfig, seed: u64) -> OobFit {
        Self::fit_with_oob_threaded(data, config, seed, parallel::default_threads())
    }

    /// Trains like [`RandomForest::fit_threaded`] (same per-tree seed
    /// derivation, so the forest is identical to a plain fit at the same
    /// seed) and accumulates the OOB estimate from each tree's bootstrap
    /// complement. Tree growth runs in parallel; OOB accumulation merges
    /// per-tree results in tree order, so the error estimate is also
    /// thread-count invariant.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `config.n_trees` is zero.
    pub fn fit_with_oob_threaded(
        data: &Dataset,
        config: &ForestConfig,
        seed: u64,
        threads: usize,
    ) -> OobFit {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let tree_config = crate::tree::TreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            max_features: Some(config.max_features.resolve(data.n_features())),
        };
        let n = data.len();
        let grown = parallel::run_indexed(config.n_trees, threads, |t| {
            grow_tree(data, config, &tree_config, seed, t)
        });
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut oob_probs = vec![vec![0.0f64; data.n_classes()]; n];
        let mut oob_counts = vec![0usize; n];
        for (tree, indices) in grown {
            let mut in_bag = vec![false; n];
            for &i in &indices {
                in_bag[i] = true;
            }
            for i in (0..n).filter(|&i| !in_bag[i]) {
                for (acc, &p) in oob_probs[i].iter_mut().zip(tree.leaf_probs(data.row(i))) {
                    *acc += p;
                }
                oob_counts[i] += 1;
            }
            trees.push(tree);
        }
        let mut errors = 0usize;
        let mut counted = 0usize;
        for i in 0..n {
            if oob_counts[i] == 0 {
                continue;
            }
            counted += 1;
            if argmax(&oob_probs[i]) != data.label(i) {
                errors += 1;
            }
        }
        let oob_error =
            (counted > 0).then(|| errors as f64 / counted as f64);
        OobFit {
            forest: RandomForest {
                trees,
                n_classes: data.n_classes(),
                combination: config.combination,
            },
            oob_error,
        }
    }
}

/// Grows tree `index` of a forest: seeds a fresh RNG from
/// `(seed, index)`, draws the bootstrap resample, and fits the tree.
/// Returns the tree together with its training indices (the OOB path
/// needs them to find each tree's bootstrap complement).
fn grow_tree(
    data: &Dataset,
    config: &ForestConfig,
    tree_config: &TreeConfig,
    seed: u64,
    index: usize,
) -> (DecisionTree, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, index as u64));
    let n = data.len();
    let indices: Vec<usize> = if config.bootstrap {
        (0..n).map(|_| rng.gen_range(0..n)).collect()
    } else {
        (0..n).collect()
    };
    let tree = DecisionTree::fit(data, &indices, tree_config, &mut rng);
    (tree, indices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_data(seed: u64) -> Dataset {
        // Two Gaussian-ish blobs with overlap, plus a useless feature.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x".into(), "y".into(), "junk".into()], 2);
        for _ in 0..100 {
            let cls = rng.gen_range(0..2usize);
            let center = if cls == 0 { 0.0 } else { 3.0 };
            let x: f64 = center + rng.gen_range(-1.5..1.5);
            let y: f64 = center + rng.gen_range(-1.5..1.5);
            d.push(vec![x, y, rng.gen_range(0.0..1.0)], cls);
        }
        d
    }

    #[test]
    fn forest_beats_chance_on_noisy_blobs() {
        let train = noisy_data(1);
        let test = noisy_data(2);
        let forest = RandomForest::fit(&train, &ForestConfig::default(), 42);
        let correct =
            (0..test.len()).filter(|&i| forest.predict(test.row(i)) == test.label(i)).count();
        assert!(correct as f64 / test.len() as f64 > 0.85, "accuracy {correct}/100");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = noisy_data(1);
        let f1 = RandomForest::fit(&data, &ForestConfig::default(), 7);
        let f2 = RandomForest::fit(&data, &ForestConfig::default(), 7);
        for i in 0..data.len() {
            assert_eq!(f1.predict_proba(data.row(i)), f2.predict_proba(data.row(i)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let data = noisy_data(1);
        let f1 = RandomForest::fit(&data, &ForestConfig::default(), 7);
        let f2 = RandomForest::fit(&data, &ForestConfig::default(), 8);
        let any_diff = (0..data.len())
            .any(|i| f1.predict_proba(data.row(i)) != f2.predict_proba(data.row(i)));
        assert!(any_diff);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = noisy_data(3);
        for combination in [Combination::ProbabilityAveraging, Combination::MajorityVote] {
            let config = ForestConfig { combination, ..ForestConfig::default() };
            let forest = RandomForest::fit(&data, &config, 5);
            let p = forest.predict_proba(&[1.0, 1.0, 0.5]);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn averaging_gives_smoother_scores_than_voting() {
        // Inseparable duplicates force impure leaves, so averaging yields a
        // much finer score lattice than the n_trees+1 levels voting can
        // produce — the variance-reduction argument the paper makes.
        let mut data = Dataset::new(vec!["x".into()], 2);
        for (x, pos_tenths) in [(0.0, 2), (1.0, 4), (2.0, 6), (3.0, 8)] {
            for i in 0..10 {
                data.push(vec![x], usize::from(i < pos_tenths));
            }
        }
        let base = ForestConfig::default();
        let avg = RandomForest::fit(
            &data,
            &ForestConfig { combination: Combination::ProbabilityAveraging, ..base.clone() },
            9,
        );
        let vote = RandomForest::fit(
            &data,
            &ForestConfig { combination: Combination::MajorityVote, ..base },
            9,
        );
        // Averaged probabilities should track the true conditional
        // probability of each x; majority voting polarizes toward 0/1.
        let truth = [(0.0, 0.2), (1.0, 0.4), (2.0, 0.6), (3.0, 0.8)];
        let calibration_error = |f: &RandomForest| {
            truth
                .iter()
                .map(|&(x, p)| (f.score(&[x], 1) - p).abs())
                .sum::<f64>()
        };
        let (ae, ve) = (calibration_error(&avg), calibration_error(&vote));
        assert!(ae < ve, "averaging error {ae} should beat voting error {ve}");
        assert!(ae < 0.4, "averaging calibration error {ae}");
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::Log2PlusOne.resolve(37), 6); // log2(37)≈5.2 → 5+1
        assert_eq!(MaxFeatures::Sqrt.resolve(37), 6);
        assert_eq!(MaxFeatures::All.resolve(37), 37);
        assert_eq!(MaxFeatures::Fixed(100).resolve(37), 37);
        assert_eq!(MaxFeatures::Fixed(0).resolve(37), 1);
        assert_eq!(MaxFeatures::Log2PlusOne.resolve(1), 1);
    }

    #[test]
    fn n_trees_respected() {
        let data = noisy_data(1);
        let config = ForestConfig { n_trees: 5, ..ForestConfig::default() };
        assert_eq!(RandomForest::fit(&data, &config, 1).n_trees(), 5);
    }

    #[test]
    fn feature_importances_find_the_signal() {
        let data = noisy_data(6);
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 3);
        let imp = forest.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // x and y carry the signal; junk should get the least credit.
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "{imp:?}");
    }

    #[test]
    fn oob_error_estimates_generalization() {
        let train = noisy_data(7);
        let fit = RandomForest::fit_with_oob(&train, &ForestConfig::default(), 5);
        let oob = fit.oob_error.expect("bootstrap leaves samples out");
        // Compare against true held-out error: they should be in the same
        // region (both well under chance, within 15 points of each other).
        let test = noisy_data(8);
        let held_out_err = (0..test.len())
            .filter(|&i| fit.forest.predict(test.row(i)) != test.label(i))
            .count() as f64
            / test.len() as f64;
        assert!(oob < 0.35, "oob {oob}");
        assert!((oob - held_out_err).abs() < 0.15, "oob {oob} vs held-out {held_out_err}");
    }

    #[test]
    fn oob_without_bootstrap_is_none() {
        let data = noisy_data(9);
        let config = ForestConfig { bootstrap: false, ..ForestConfig::default() };
        assert!(RandomForest::fit_with_oob(&data, &config, 1).oob_error.is_none());
    }

    #[test]
    fn serialized_forest_predicts_identically() {
        let data = noisy_data(10);
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 4);
        let json = serde_json::to_string(&forest).unwrap();
        let restored: RandomForest = serde_json::from_str(&json).unwrap();
        for i in 0..data.len() {
            assert_eq!(forest.predict_proba(data.row(i)), restored.predict_proba(data.row(i)));
        }
    }

    #[test]
    fn multiclass_forest_separates_three_blobs() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut d = Dataset::new(vec!["x".into(), "y".into()], 3);
        for _ in 0..150 {
            let cls = rng.gen_range(0..3usize);
            let cx = [0.0, 5.0, 0.0][cls];
            let cy = [0.0, 0.0, 5.0][cls];
            d.push(
                vec![cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)],
                cls,
            );
        }
        let forest = RandomForest::fit(&d, &ForestConfig::default(), 8);
        let correct = (0..d.len()).filter(|&i| forest.predict(d.row(i)) == d.label(i)).count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "{correct}/150");
        let p = forest.predict_proba(&[5.0, 0.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset::new(vec!["x".into()], 2);
        RandomForest::fit(&d, &ForestConfig::default(), 1);
    }

    #[test]
    fn fit_is_bit_identical_at_any_thread_count() {
        // The acceptance test for the deterministic parallel layer: the
        // trained model must not depend on how many workers grew it.
        let data = noisy_data(11);
        let config = ForestConfig::default();
        let reference = RandomForest::fit_threaded(&data, &config, 42, 1);
        for threads in [2, 3, 8, crate::parallel::default_threads().max(2)] {
            let forest = RandomForest::fit_threaded(&data, &config, 42, threads);
            for i in 0..data.len() {
                assert_eq!(
                    reference.predict_proba(data.row(i)),
                    forest.predict_proba(data.row(i)),
                    "row {i} diverged at {threads} threads"
                );
            }
        }
        // The default entry point is the same model.
        let default_fit = RandomForest::fit(&data, &config, 42);
        assert_eq!(
            reference.predict_proba(data.row(0)),
            default_fit.predict_proba(data.row(0))
        );
    }

    #[test]
    fn fit_with_oob_grows_the_same_forest_as_fit() {
        let data = noisy_data(12);
        let config = ForestConfig::default();
        let plain = RandomForest::fit(&data, &config, 9);
        for threads in [1, 4] {
            let with_oob = RandomForest::fit_with_oob_threaded(&data, &config, 9, threads);
            for i in 0..data.len() {
                assert_eq!(
                    plain.predict_proba(data.row(i)),
                    with_oob.forest.predict_proba(data.row(i)),
                    "row {i} diverged (threads {threads})"
                );
            }
        }
    }

    #[test]
    fn batched_predict_matches_per_row() {
        let data = noisy_data(13);
        for combination in [Combination::ProbabilityAveraging, Combination::MajorityVote] {
            let config = ForestConfig { combination, ..ForestConfig::default() };
            let forest = RandomForest::fit(&data, &config, 21);
            let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i).to_vec()).collect();
            let batched = forest.predict_proba_batch(&rows);
            assert_eq!(batched.len(), rows.len());
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(batched[i], forest.predict_proba(row), "row {i}");
            }
            for threads in [1, 2, 5] {
                let threaded = forest.predict_proba_batch_threaded(&rows, threads);
                assert_eq!(threaded, batched, "threads {threads}");
            }
            for threads in [1, 3] {
                let scores = forest.score_batch(&rows, 1, threads);
                for (i, p) in batched.iter().enumerate() {
                    assert_eq!(scores[i], p[1], "score row {i} ({threads} threads)");
                }
            }
        }
    }

    #[test]
    fn batched_predict_on_empty_input() {
        let data = noisy_data(14);
        let forest = RandomForest::fit(&data, &ForestConfig::default(), 2);
        let rows: Vec<Vec<f64>> = Vec::new();
        assert!(forest.predict_proba_batch(&rows).is_empty());
        assert!(forest.predict_proba_batch_threaded(&rows, 4).is_empty());
    }

    #[test]
    fn timed_fit_records_one_observation_per_tree_and_same_model() {
        let data = noisy_data(25);
        let config = ForestConfig::default();
        let plain = RandomForest::fit_threaded(&data, &config, 9, 2);
        let registry = telemetry::Registry::new();
        let hist = registry.latency_histogram("mlearn_tree_fit_ns", "per-tree fit time");
        let timed = RandomForest::fit_threaded_timed(&data, &config, 9, 2, Some(&hist));
        assert_eq!(hist.count(), config.n_trees as u64);
        assert!(hist.sum() > 0, "trees take measurable time");
        // Timing is observational only: the model is bit-identical.
        let rows: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i).to_vec()).collect();
        assert_eq!(timed.predict_proba_batch(&rows), plain.predict_proba_batch(&rows));
    }
}
