//! Gain-ratio feature ranking with per-fold averaging (Table IV
//! methodology: "gain ratio metric with 10-fold cross validation").

use serde::{Deserialize, Serialize};

use crate::crossval::stratified_kfold;
use crate::dataset::Dataset;

/// Ranking summary for one feature across folds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureRank {
    /// Feature (column) name.
    pub name: String,
    /// Column index in the dataset.
    pub column: usize,
    /// Mean gain ratio over folds.
    pub mean_gain: f64,
    /// Standard deviation of the gain ratio over folds.
    pub std_gain: f64,
    /// Mean rank over folds (1 = most informative).
    pub mean_rank: f64,
    /// Standard deviation of the rank over folds.
    pub std_rank: f64,
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            -p * p.log2()
        })
        .sum()
}

/// Gain ratio of one continuous feature on the rows at `indices`: the
/// information gain of the best binary threshold split divided by the split
/// information (C4.5's correction for multi-valued attributes; for a binary
/// split it normalizes by the partition entropy). Returns 0 when the
/// feature cannot split the data.
pub fn gain_ratio(data: &Dataset, indices: &[usize], feature: usize) -> f64 {
    let n = indices.len();
    if n < 2 {
        return 0.0;
    }
    let mut order: Vec<usize> = indices.to_vec();
    order.sort_by(|&a, &b| data.row(a)[feature].total_cmp(&data.row(b)[feature]));
    let mut right = vec![0usize; data.n_classes()];
    for &i in &order {
        right[data.label(i)] += 1;
    }
    let parent_entropy = entropy(&right);
    if parent_entropy == 0.0 {
        return 0.0;
    }
    let mut left = vec![0usize; data.n_classes()];
    let mut best = 0.0f64;
    for split_at in 1..n {
        let moved = order[split_at - 1];
        left[data.label(moved)] += 1;
        right[data.label(moved)] -= 1;
        if data.row(order[split_at - 1])[feature] == data.row(order[split_at])[feature] {
            continue;
        }
        let wl = split_at as f64 / n as f64;
        let info_gain =
            parent_entropy - wl * entropy(&left) - (1.0 - wl) * entropy(&right);
        let split_info = entropy(&[split_at, n - split_at]);
        if split_info > 0.0 {
            best = best.max(info_gain / split_info);
        }
    }
    best
}

/// Ranks every feature by gain ratio, averaging gain and rank over `k`
/// stratified folds (each fold's *training* portion is scored). The result
/// is sorted by ascending mean rank — the paper's Table IV ordering.
///
/// # Panics
///
/// Panics when `k` is invalid for the dataset size.
pub fn rank_features(data: &Dataset, k: usize, seed: u64) -> Vec<FeatureRank> {
    let folds = stratified_kfold(data.labels(), k, seed);
    let n_features = data.n_features();
    let mut gains: Vec<Vec<f64>> = vec![Vec::with_capacity(k); n_features];
    let mut ranks: Vec<Vec<f64>> = vec![Vec::with_capacity(k); n_features];
    for fold in &folds {
        let fold_gains: Vec<f64> =
            (0..n_features).map(|f| gain_ratio(data, &fold.train, f)).collect();
        // Rank 1 = highest gain. Ties share order-of-appearance ranks,
        // which keeps ranks integral as in the paper's table.
        let mut order: Vec<usize> = (0..n_features).collect();
        order.sort_by(|&a, &b| fold_gains[b].total_cmp(&fold_gains[a]));
        for (pos, &f) in order.iter().enumerate() {
            gains[f].push(fold_gains[f]);
            ranks[f].push((pos + 1) as f64);
        }
    }
    let mut out: Vec<FeatureRank> = (0..n_features)
        .map(|f| {
            let (mg, sg) = mean_std(&gains[f]);
            let (mr, sr) = mean_std(&ranks[f]);
            FeatureRank {
                name: data.feature_names()[f].clone(),
                column: f,
                mean_gain: mg,
                std_gain: sg,
                mean_rank: mr,
                std_rank: sr,
            }
        })
        .collect();
    out.sort_by(|a, b| a.mean_rank.total_cmp(&b.mean_rank));
    out
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var =
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn informative_dataset() -> Dataset {
        // "signal" separates classes perfectly; "weak" partially; "noise"
        // not at all.
        let mut rng = StdRng::seed_from_u64(11);
        let mut d =
            Dataset::new(vec!["signal".into(), "weak".into(), "noise".into()], 2);
        for i in 0..200 {
            let cls = i % 2;
            let signal = cls as f64 * 10.0 + rng.gen_range(0.0..1.0);
            let weak = cls as f64 * 1.0 + rng.gen_range(0.0..2.0);
            let noise = rng.gen_range(0.0..1.0);
            d.push(vec![signal, weak, noise], cls);
        }
        d
    }

    #[test]
    fn perfect_feature_has_gain_ratio_one() {
        let d = informative_dataset();
        let all: Vec<usize> = (0..d.len()).collect();
        let g = gain_ratio(&d, &all, 0);
        assert!((g - 1.0).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn noise_feature_has_low_gain_ratio() {
        let d = informative_dataset();
        let all: Vec<usize> = (0..d.len()).collect();
        let noise = gain_ratio(&d, &all, 2);
        let signal = gain_ratio(&d, &all, 0);
        let weak = gain_ratio(&d, &all, 1);
        assert!(noise < 0.25, "noise gain {noise}");
        assert!(noise < weak && weak < signal, "{noise} {weak} {signal}");
    }

    #[test]
    fn constant_feature_has_zero_gain() {
        let mut d = Dataset::new(vec!["c".into()], 2);
        for i in 0..10 {
            d.push(vec![5.0], i % 2);
        }
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(gain_ratio(&d, &all, 0), 0.0);
    }

    #[test]
    fn pure_labels_have_zero_gain() {
        let mut d = Dataset::new(vec!["x".into()], 2);
        for i in 0..10 {
            d.push(vec![i as f64], 0);
        }
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(gain_ratio(&d, &all, 0), 0.0);
    }

    #[test]
    fn ranking_orders_by_informativeness() {
        let d = informative_dataset();
        let ranking = rank_features(&d, 5, 3);
        assert_eq!(ranking[0].name, "signal");
        assert_eq!(ranking[1].name, "weak");
        assert_eq!(ranking[2].name, "noise");
        assert!((ranking[0].mean_rank - 1.0).abs() < 1e-12);
        assert_eq!(ranking[0].std_rank, 0.0);
        assert!(ranking[0].mean_gain > ranking[1].mean_gain);
        assert!(ranking[1].mean_gain > ranking[2].mean_gain);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
